//! Query pretty-printer (print/re-parse round-trips are property-tested).

use crate::ast::*;
use mix_common::Value;
use mix_xml::Step;
use std::fmt::Write;

/// Render a query as parseable text.
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    write_query(q, &mut out, 0);
    out
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_query(q: &Query, out: &mut String, depth: usize) {
    pad(out, depth);
    out.push_str("FOR ");
    for (i, b) in q.for_clause.iter().enumerate() {
        if i > 0 {
            out.push('\n');
            pad(out, depth);
            out.push_str("    ");
        }
        let _ = write!(out, "{} IN ", b.var.display_var());
        match &b.base {
            PathBase::Document(d) => {
                let _ = write!(out, "document(\"{d}\")");
            }
            PathBase::QueryRoot => out.push_str("document(root)"),
            PathBase::Var(v) => out.push_str(&v.display_var()),
        }
        write_steps(&b.steps, out);
    }
    out.push('\n');
    if !q.where_clause.is_empty() {
        pad(out, depth);
        out.push_str("WHERE ");
        for (i, c) in q.where_clause.iter().enumerate() {
            if i > 0 {
                out.push_str(" AND ");
            }
            write_operand(&c.lhs, out);
            let _ = write!(out, " {} ", c.op);
            write_operand(&c.rhs, out);
        }
        out.push('\n');
    }
    pad(out, depth);
    out.push_str("RETURN ");
    match &q.ret {
        ReturnExpr::Var(v) => {
            out.push_str(&v.display_var());
            out.push('\n');
        }
        ReturnExpr::Elem(e) => {
            out.push('\n');
            write_element(e, out, depth + 1);
        }
    }
}

fn write_steps(steps: &[Step], out: &mut String) {
    for s in steps {
        match s {
            Step::Label(l) => {
                let _ = write!(out, "/{l}");
            }
            Step::Wild => out.push_str("/*"),
            Step::Data => out.push_str("/data()"),
        }
    }
}

fn write_operand(o: &Operand, out: &mut String) {
    match o {
        Operand::Path { var, steps } => {
            out.push_str(&var.display_var());
            write_steps(steps, out);
        }
        Operand::Const(Value::Str(s)) => {
            let _ = write!(out, "\"{s}\"");
        }
        Operand::Const(v) => {
            let _ = write!(out, "{v}");
        }
    }
}

fn write_element(e: &Element, out: &mut String, depth: usize) {
    pad(out, depth);
    let _ = writeln!(out, "<{}>", e.label);
    for item in &e.children {
        match item {
            Item::Var(v) => {
                pad(out, depth + 1);
                out.push_str(&v.display_var());
                out.push('\n');
            }
            Item::Elem(inner) => write_element(inner, out, depth + 1),
            Item::SubQuery(q) => write_query(q, out, depth + 1),
        }
    }
    pad(out, depth);
    let _ = write!(out, "</{}>", e.label);
    if !e.group_by.is_empty() {
        out.push_str(" {");
        for (i, v) in e.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.display_var());
        }
        out.push('}');
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    const QUERIES: &[&str] = &[
        "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}",
        "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"B\" RETURN $P",
        "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 500 RETURN $O",
        "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
         WHERE $S/order/value > 20000 RETURN $R",
    ];

    #[test]
    fn print_reparse_fixpoint() {
        for text in QUERIES {
            let q = parse_query(text).unwrap();
            let printed = print_query(&q);
            let q2 =
                parse_query(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
            assert_eq!(q, q2, "round trip changed the query:\n{printed}");
            // And printing is a fixpoint.
            assert_eq!(printed, print_query(&q2));
        }
    }

    #[test]
    fn printed_q1_is_readable() {
        let q = parse_query(QUERIES[0]).unwrap();
        let p = print_query(&q);
        assert!(p.contains("FOR $C IN document(\"root1\")/customer"));
        assert!(p.contains("WHERE $C/id/data() = $O/cid/data()"));
        assert!(p.contains("</CustRec> {$C}"));
    }
}
