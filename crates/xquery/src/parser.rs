//! Recursive-descent parser for the Fig. 4 grammar.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use mix_common::{CmpOp, MixError, Name, Result, Value};
use mix_xml::Step;

/// Parse a complete query.
pub fn parse_query(text: &str) -> Result<Query> {
    let toks = lex(text)?;
    let mut p = P { toks: &toks, i: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct P<'a> {
    toks: &'a [Spanned],
    i: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> usize {
        self.toks[self.i.min(self.toks.len() - 1)].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i.min(self.toks.len() - 1)].tok.clone();
        if self.i < self.toks.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.is_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected {kw}"),
            ))
        }
    }

    fn eat(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn var(&mut self) -> Result<Name> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                Ok(Name::new(v))
            }
            t => Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected variable, found {t:?}"),
            )),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected identifier, found {t:?}"),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("unexpected trailing token {:?}", self.peek()),
            ))
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.eat_keyword("FOR")?;
        let mut for_clause = Vec::new();
        loop {
            let var = self.var()?;
            self.eat_keyword("IN")?;
            let (base, steps) = self.path_expression()?;
            for_clause.push(ForBinding { var, base, steps });
            // Continue on `, $v IN` or a bare `$v IN` (the Fig. 4 style).
            match self.peek() {
                Tok::Comma => {
                    self.bump();
                }
                Tok::Var(_) => {}
                _ => break,
            }
        }
        let mut where_clause = Vec::new();
        if self.is_keyword("WHERE") {
            self.bump();
            loop {
                let lhs = self.operand()?;
                let op = self.relop()?;
                let rhs = self.operand()?;
                where_clause.push(Condition { lhs, op, rhs });
                if self.is_keyword("AND") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_keyword("RETURN")?;
        let ret = self.return_expr()?;
        Ok(Query {
            for_clause,
            where_clause,
            ret,
        })
    }

    /// `document("x")/a/b`, `source(&x)/a`, `document(root)/a`, `$v/a/b`.
    fn path_expression(&mut self) -> Result<(PathBase, Vec<Step>)> {
        let base = match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                PathBase::Var(Name::new(v))
            }
            Tok::Ident(f)
                if f.eq_ignore_ascii_case("document") || f.eq_ignore_ascii_case("source") =>
            {
                self.bump();
                self.eat(&Tok::LParen, "'('")?;
                let base = match self.bump() {
                    Tok::Str(s) => PathBase::Document(Name::new(s)),
                    Tok::AmpName(s) => PathBase::Document(Name::new(s)),
                    Tok::Ident(s) if s.eq_ignore_ascii_case("root") => PathBase::QueryRoot,
                    Tok::Ident(s) => PathBase::Document(Name::new(s)),
                    t => {
                        return Err(MixError::parse(
                            "xquery",
                            self.pos(),
                            format!("expected source name, found {t:?}"),
                        ))
                    }
                };
                self.eat(&Tok::RParen, "')'")?;
                base
            }
            t => {
                return Err(MixError::parse(
                    "xquery",
                    self.pos(),
                    format!("expected path expression, found {t:?}"),
                ))
            }
        };
        let steps = self.steps()?;
        Ok((base, steps))
    }

    /// Zero or more `/step`s, where a step is a label, `*`, or `data()`.
    fn steps(&mut self) -> Result<Vec<Step>> {
        let mut steps = Vec::new();
        while matches!(self.peek(), Tok::Slash) {
            self.bump();
            if matches!(self.peek(), Tok::Star) {
                self.bump();
                steps.push(Step::Wild);
                continue;
            }
            let name = self.ident()?;
            if name.eq_ignore_ascii_case("data") && matches!(self.peek(), Tok::LParen) {
                self.bump();
                self.eat(&Tok::RParen, "')'")?;
                steps.push(Step::Data);
                break; // data() is terminal
            }
            steps.push(Step::Label(Name::new(name)));
        }
        Ok(steps)
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                let steps = self.steps()?;
                Ok(Operand::Path {
                    var: Name::new(v),
                    steps,
                })
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Operand::Const(Value::str(s)))
            }
            Tok::Num(v) => {
                self.bump();
                Ok(Operand::Const(v))
            }
            t => Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected operand, found {t:?}"),
            )),
        }
    }

    fn relop(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Tok::EqTok => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            t => {
                return Err(MixError::parse(
                    "xquery",
                    self.pos(),
                    format!("expected comparison operator, found {t:?}"),
                ))
            }
        };
        self.bump();
        Ok(op)
    }

    fn return_expr(&mut self) -> Result<ReturnExpr> {
        match self.peek() {
            Tok::Var(_) => Ok(ReturnExpr::Var(self.var()?)),
            Tok::Lt => Ok(ReturnExpr::Elem(self.element()?)),
            t => Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("expected RETURN body (variable or element), found {t:?}"),
            )),
        }
    }

    /// `<Tag> items </Tag> {group-by}?`
    fn element(&mut self) -> Result<Element> {
        self.eat(&Tok::Lt, "'<'")?;
        let label = Name::new(self.ident()?);
        self.eat(&Tok::Gt, "'>'")?;
        let mut children = Vec::new();
        loop {
            match self.peek() {
                Tok::Lt if matches!(self.peek2(), Tok::Slash) => break,
                Tok::Lt => children.push(Item::Elem(self.element()?)),
                Tok::Var(_) => children.push(Item::Var(self.var()?)),
                Tok::Ident(s) if s.eq_ignore_ascii_case("FOR") => {
                    children.push(Item::SubQuery(Box::new(self.query()?)));
                }
                t => {
                    return Err(MixError::parse(
                        "xquery",
                        self.pos(),
                        format!("unexpected element content {t:?}"),
                    ))
                }
            }
        }
        self.eat(&Tok::Lt, "'<'")?;
        self.eat(&Tok::Slash, "'/'")?;
        let close = Name::new(self.ident()?);
        if close != label {
            return Err(MixError::parse(
                "xquery",
                self.pos(),
                format!("mismatched tags <{label}> … </{close}>"),
            ));
        }
        self.eat(&Tok::Gt, "'>'")?;
        let mut group_by = Vec::new();
        if matches!(self.peek(), Tok::LBrace) {
            self.bump();
            loop {
                group_by.push(self.var()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat(&Tok::RBrace, "'}'")?;
        }
        Ok(Element {
            label,
            children,
            group_by,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Fig. 3), comments and all.
    pub const Q1: &str = r#"
        FOR $C IN source(&root1)/customer   % bind $C to the customer tuples
            $O IN document(&root2)/order    % bind $O to order tuples
        WHERE $C/id/data() = $O/cid/data()
        RETURN
          <CustRec>
            $C
            <OrderInfo>
              $O
            </OrderInfo> {$O}
          </CustRec> {$C}
    "#;

    #[test]
    fn parses_q1() {
        let q = parse_query(Q1).unwrap();
        assert_eq!(q.for_clause.len(), 2);
        assert_eq!(q.for_clause[0].var.as_str(), "C");
        assert_eq!(q.for_clause[0].base, PathBase::Document(Name::new("root1")));
        assert_eq!(
            q.for_clause[0].steps,
            vec![Step::Label(Name::new("customer"))]
        );
        assert_eq!(q.where_clause.len(), 1);
        let c = &q.where_clause[0];
        assert_eq!(c.op, CmpOp::Eq);
        assert_eq!(
            c.lhs,
            Operand::Path {
                var: Name::new("C"),
                steps: vec![Step::Label(Name::new("id")), Step::Data]
            }
        );
        let ReturnExpr::Elem(e) = &q.ret else {
            panic!("expected element")
        };
        assert_eq!(e.label.as_str(), "CustRec");
        assert_eq!(e.group_by, vec![Name::new("C")]);
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.children[0], Item::Var(Name::new("C")));
        let Item::Elem(oi) = &e.children[1] else {
            panic!("expected OrderInfo")
        };
        assert_eq!(oi.label.as_str(), "OrderInfo");
        assert_eq!(oi.group_by, vec![Name::new("O")]);
    }

    #[test]
    fn parses_q2_with_query_root() {
        // Q2 from Example 2.1.
        let q = parse_query(
            r#"FOR $P IN document(root)/CustRec
               WHERE $P/customer/name < "B"
               RETURN $P"#,
        )
        .unwrap();
        assert_eq!(q.for_clause[0].base, PathBase::QueryRoot);
        assert!(q.uses_query_root());
        assert_eq!(q.ret, ReturnExpr::Var(Name::new("P")));
        assert_eq!(q.where_clause[0].rhs, Operand::Const(Value::str("B")));
    }

    #[test]
    fn parses_q3() {
        let q = parse_query(
            "FOR $O IN document(root)/OrderInfo \
             WHERE $O/order/value < 500 RETURN $O",
        )
        .unwrap();
        assert_eq!(q.where_clause[0].op, CmpOp::Lt);
        assert_eq!(q.where_clause[0].rhs, Operand::Const(Value::Int(500)));
    }

    #[test]
    fn parses_fig12_with_var_base_and_lowercase() {
        let q = parse_query(
            "FOR $R in document(rootv)/CustRec \
                 $S in $R/OrderInfo \
             WHERE $S/order/value > 20000 \
             RETURN $R",
        )
        .unwrap();
        assert_eq!(q.for_clause[1].base, PathBase::Var(Name::new("R")));
        assert_eq!(q.for_clause[0].base, PathBase::Document(Name::new("rootv")));
    }

    #[test]
    fn parses_nested_subquery() {
        let q = parse_query(
            r#"FOR $C IN document(root1)/customer
               RETURN <rec> $C
                 FOR $O IN document(root2)/order
                 WHERE $O/cid/data() = $C/id/data()
                 RETURN <o> $O </o> {$O}
               </rec> {$C}"#,
        )
        .unwrap();
        let ReturnExpr::Elem(e) = &q.ret else {
            panic!()
        };
        assert!(matches!(e.children[1], Item::SubQuery(_)));
    }

    #[test]
    fn comma_separated_for_clause_accepted() {
        let q = parse_query("FOR $A IN document(r)/x, $B IN document(r)/y RETURN $A").unwrap();
        assert_eq!(q.for_clause.len(), 2);
    }

    #[test]
    fn multiple_where_conjuncts() {
        let q = parse_query(
            "FOR $L IN document(root)/lens \
             WHERE $L/cost/data() < 200 AND $L/diameter/data() > 10 AND $L/region/data() = \"SoCal\" \
             RETURN $L",
        )
        .unwrap();
        assert_eq!(q.where_clause.len(), 3);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("RETURN $x").is_err());
        assert!(parse_query("FOR $x IN RETURN $x").is_err());
        assert!(parse_query("FOR $x IN document(r)/a WHERE RETURN $x").is_err());
        assert!(parse_query("FOR $x IN document(r)/a RETURN <a> $x </b>").is_err());
        assert!(parse_query("FOR $x IN document(r)/a RETURN <a> $x </a> trailing").is_err());
        assert!(parse_query("FOR $x IN document(r)/a RETURN").is_err());
    }

    #[test]
    fn group_by_multiple_vars() {
        let q =
            parse_query("FOR $A IN document(r)/x $B IN $A/y RETURN <g> $B </g> {$A, $B}").unwrap();
        let ReturnExpr::Elem(e) = &q.ret else {
            panic!()
        };
        assert_eq!(e.group_by, vec![Name::new("A"), Name::new("B")]);
    }
}

#[cfg(test)]
mod wildcard_tests {
    use super::*;

    #[test]
    fn wildcard_steps_parse_and_print() {
        let q = parse_query("FOR $X IN document(r)/a/*/b RETURN $X").unwrap();
        assert_eq!(
            q.for_clause[0].steps,
            vec![
                Step::Label(Name::new("a")),
                Step::Wild,
                Step::Label(Name::new("b"))
            ]
        );
        let printed = crate::print::print_query(&q);
        assert_eq!(parse_query(&printed).unwrap(), q);
    }

    #[test]
    fn wildcard_in_where_operand() {
        let q = parse_query("FOR $X IN document(r)/a WHERE $X/*/data() > 1 RETURN $X").unwrap();
        let crate::ast::Operand::Path { steps, .. } = &q.where_clause[0].lhs else {
            panic!()
        };
        assert_eq!(steps, &vec![Step::Wild, Step::Data]);
    }
}
