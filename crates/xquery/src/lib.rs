//! The XQuery subset of the MIX mediator (paper Fig. 4).
//!
//! ```text
//! Query        ::= ForClause WhereClause? ReturnClause
//! ForClause    ::= FOR Variable IN PathExpression
//!                | ForClause [,] Variable IN PathExpression
//! WhereClause  ::= WHERE PathExpression RelOp PathExpression
//!                | WhereClause AND PathExpression RelOp PathExpression
//! ReturnClause ::= RETURN Element
//! Element      ::= <Label> ElementList </Label> OptGroupByList
//!                | Variable
//! ElementList  ::= Element | Query | ElementList ElementList
//! OptGroupByList ::= { GroupByList } | (empty)
//! GroupByList  ::= Variable | GroupByList , Variable
//! ```
//!
//! plus what the paper's examples use: `document("src")`, `source(&src)`
//! and `document(root)` bases (the `root` keyword names the node a
//! query-in-place was issued from), constants in WHERE comparisons, and
//! the `data()` accessor. The group-by lists `{$v}` follow the group-by
//! extension the paper cites \[8\].

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod print;

pub use ast::{Condition, Element, ForBinding, Item, Operand, PathBase, Query, ReturnExpr};
pub use parser::parse_query;
pub use print::print_query;
