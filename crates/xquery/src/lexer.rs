//! Tokenizer for the XQuery subset.
//!
//! One subtlety: `<` is both a comparison operator (WHERE) and the
//! start of a tag (RETURN). The lexer stays context-free — it emits
//! `Lt`, `Slash`, `Gt` and identifiers, and the parser assembles tags —
//! taking care that `<=` still lexes as a single token.

use mix_common::{MixError, Result, Value};

/// Tokens of the XQuery subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `$name`
    Var(String),
    /// A bare identifier or keyword (keywords resolved by the parser,
    /// case-insensitively).
    Ident(String),
    /// `"..."` string literal.
    Str(String),
    /// Numeric literal.
    Num(Value),
    /// `&name` (source ids like `&root1`).
    AmpName(String),
    Lt,
    Le,
    Gt,
    Ge,
    EqTok,
    Ne,
    Slash,
    /// `*` (wildcard path step).
    Star,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    /// `%` comments run to end of line and are skipped by the lexer
    /// (the paper's figures annotate queries with `%` comments).
    Eof,
}

/// A token plus its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Tokenize the whole input.
pub fn lex(text: &str) -> Result<Vec<Spanned>> {
    let b = text.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Spanned {
                tok: $tok,
                pos: $pos,
            })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'%' => {
                // comment to end of line
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'$' => {
                let start = i;
                i += 1;
                let s = ident_at(text, &mut i);
                if s.is_empty() {
                    return Err(MixError::parse("xquery", start, "expected name after '$'"));
                }
                push!(Tok::Var(s), start);
            }
            b'&' => {
                let start = i;
                i += 1;
                let s = ident_at(text, &mut i);
                if s.is_empty() {
                    return Err(MixError::parse("xquery", start, "expected name after '&'"));
                }
                push!(Tok::AmpName(s), start);
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => {
                            return Err(MixError::parse("xquery", start, "unterminated string"))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                push!(Tok::Str(s), start);
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, i);
                    i += 2;
                } else {
                    push!(Tok::Lt, i);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, i);
                    i += 2;
                } else {
                    push!(Tok::Gt, i);
                    i += 1;
                }
            }
            b'=' => {
                push!(Tok::EqTok, i);
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne, i);
                    i += 2;
                } else {
                    return Err(MixError::parse("xquery", i, "stray '!'"));
                }
            }
            b'/' => {
                push!(Tok::Slash, i);
                i += 1;
            }
            b'*' => {
                push!(Tok::Star, i);
                i += 1;
            }
            b'(' => {
                push!(Tok::LParen, i);
                i += 1;
            }
            b')' => {
                push!(Tok::RParen, i);
                i += 1;
            }
            b'{' => {
                push!(Tok::LBrace, i);
                i += 1;
            }
            b'}' => {
                push!(Tok::RBrace, i);
                i += 1;
            }
            b',' => {
                push!(Tok::Comma, i);
                i += 1;
            }
            b'0'..=b'9' | b'-' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || (b[i] == b'.' && !is_float)) {
                    if b[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let t = &text[start..i];
                let v = if is_float {
                    t.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| MixError::parse("xquery", start, "bad number"))?
                } else {
                    t.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| MixError::parse("xquery", start, "bad number"))?
                };
                push!(Tok::Num(v), start);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let s = ident_at(text, &mut i);
                push!(Tok::Ident(s), start);
            }
            _ => {
                return Err(MixError::parse(
                    "xquery",
                    i,
                    format!("unexpected character {:?}", c as char),
                ))
            }
        }
    }
    push!(Tok::Eof, text.len());
    Ok(out)
}

fn ident_at(text: &str, i: &mut usize) -> String {
    let b = text.as_bytes();
    let start = *i;
    while *i < b.len() && (b[*i].is_ascii_alphanumeric() || b[*i] == b'_') {
        *i += 1;
    }
    text[start..*i].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Tok> {
        lex(text).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_for_clause() {
        let t = toks("FOR $C IN source(&root1)/customer");
        assert_eq!(
            t,
            vec![
                Tok::Ident("FOR".into()),
                Tok::Var("C".into()),
                Tok::Ident("IN".into()),
                Tok::Ident("source".into()),
                Tok::LParen,
                Tok::AmpName("root1".into()),
                Tok::RParen,
                Tok::Slash,
                Tok::Ident("customer".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lt_vs_le_vs_tag() {
        assert_eq!(
            toks("< <= <CustRec>")[..5],
            [
                Tok::Lt,
                Tok::Le,
                Tok::Lt,
                Tok::Ident("CustRec".into()),
                Tok::Gt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("FOR $C % bind customers\nIN");
        assert_eq!(
            t,
            vec![
                Tok::Ident("FOR".into()),
                Tok::Var("C".into()),
                Tok::Ident("IN".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("\"B\" 500 -2 2.5"),
            vec![
                Tok::Str("B".into()),
                Tok::Num(Value::Int(500)),
                Tok::Num(Value::Int(-2)),
                Tok::Num(Value::Float(2.5)),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn group_by_braces() {
        assert_eq!(
            toks("{$O, $C}"),
            vec![
                Tok::LBrace,
                Tok::Var("O".into()),
                Tok::Comma,
                Tok::Var("C".into()),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("$ ").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("#").is_err());
    }
}
