//! Abstract syntax for the XQuery subset.

use mix_common::{CmpOp, Name, Value};
use mix_xml::Step;

/// A complete FOR/WHERE/RETURN query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The FOR clause: one binding per `Variable IN PathExpression`.
    pub for_clause: Vec<ForBinding>,
    /// The WHERE clause as a conjunction (empty = no WHERE).
    pub where_clause: Vec<Condition>,
    /// The RETURN clause.
    pub ret: ReturnExpr,
}

/// Where a FOR-clause path starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathBase {
    /// `document("root1")`, `document(&root1)`, `source(&root1)`,
    /// `document(rootv)` — a named source or view.
    Document(Name),
    /// `document(root)` — the special root of a query-in-place: "the
    /// query q uses a special root, which is lexically denoted as
    /// `root`" (Section 2).
    QueryRoot,
    /// `$var/...` — a previously bound variable.
    Var(Name),
}

/// One `Variable IN PathExpression` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ForBinding {
    /// The bound variable.
    pub var: Name,
    /// The path's base.
    pub base: PathBase,
    /// The path steps *after* the base (possibly empty for `$v/` — not
    /// produced by the grammar, but tolerated as the identity path).
    pub steps: Vec<Step>,
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    pub lhs: Operand,
    pub op: CmpOp,
    pub rhs: Operand,
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `$var/step/step/data()` (steps possibly empty: bare `$var`).
    Path { var: Name, steps: Vec<Step> },
    /// A constant literal.
    Const(Value),
}

/// The RETURN clause body.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnExpr {
    /// `RETURN <Tag>…</Tag>{…}`.
    Elem(Element),
    /// `RETURN $v` (Q2, Q3 and Fig. 12 all return a bare variable).
    Var(Name),
}

/// A constructed element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Tag label.
    pub label: Name,
    /// Content items, in order.
    pub children: Vec<Item>,
    /// The group-by list `{$v, $w}`; empty when absent.
    pub group_by: Vec<Name>,
}

/// One content item of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A nested constructed element.
    Elem(Element),
    /// A variable reference.
    Var(Name),
    /// A nested FOR/WHERE/RETURN subquery.
    SubQuery(Box<Query>),
}

impl Query {
    /// Every variable bound by the FOR clause, in order.
    pub fn bound_vars(&self) -> Vec<Name> {
        self.for_clause.iter().map(|b| b.var.clone()).collect()
    }

    /// Does this query's FOR clause reference the query-in-place root?
    pub fn uses_query_root(&self) -> bool {
        self.for_clause
            .iter()
            .any(|b| b.base == PathBase::QueryRoot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vars_in_order() {
        let q = Query {
            for_clause: vec![
                ForBinding {
                    var: Name::new("C"),
                    base: PathBase::Document(Name::new("root1")),
                    steps: vec![],
                },
                ForBinding {
                    var: Name::new("O"),
                    base: PathBase::Var(Name::new("C")),
                    steps: vec![],
                },
            ],
            where_clause: vec![],
            ret: ReturnExpr::Var(Name::new("C")),
        };
        let vars: Vec<String> = q.bound_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["C", "O"]);
        assert!(!q.uses_query_root());
    }
}
