//! Deterministic property check: print ∘ parse is the identity on
//! generated queries (seeded in-file generator, no external
//! randomness so offline builds stay green).

use mix_common::Name;
use mix_xml::Step;
use mix_xquery::{
    parse_query, print_query, Condition, Element, ForBinding, Item, Operand, PathBase, Query,
    ReturnExpr,
};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Identifiers that are safely not grammar keywords.
fn ident(rng: &mut Rng) -> String {
    let stems = ["cust", "ord", "val", "x", "Rec", "itemTag", "q7", "Zed"];
    format!(
        "{}{}",
        stems[rng.below(stems.len() as u64) as usize],
        rng.below(100)
    )
}

fn steps(rng: &mut Rng) -> Vec<Step> {
    let mut v: Vec<Step> = (0..1 + rng.below(3))
        .map(|_| Step::Label(Name::new(ident(rng))))
        .collect();
    if rng.below(2) == 0 {
        v.push(Step::Data);
    }
    v
}

fn operand(rng: &mut Rng, vars: &[String]) -> Operand {
    match rng.below(4) {
        0 => Operand::Path {
            var: Name::new(vars[rng.below(vars.len() as u64) as usize].clone()),
            steps: steps(rng),
        },
        1 => Operand::Path {
            var: Name::new(vars[rng.below(vars.len() as u64) as usize].clone()),
            steps: vec![],
        },
        2 => Operand::Const(mix_common::Value::Int(rng.next_u64() as i64)),
        _ => {
            let words = ["", "a phrase", "XYZInc", "B"];
            Operand::Const(mix_common::Value::str(words[rng.below(4) as usize]))
        }
    }
}

fn cmp_op(rng: &mut Rng) -> mix_common::CmpOp {
    use mix_common::CmpOp::*;
    [Eq, Ne, Lt, Le, Gt, Ge][rng.below(6) as usize]
}

fn query(rng: &mut Rng) -> Query {
    let src = ident(rng);
    let n_bindings = 1 + rng.below(3) as usize;
    let mut for_clause = Vec::new();
    let mut vars: Vec<String> = Vec::new();
    for i in 0..n_bindings {
        let v = format!("{}{}", ident(rng), i);
        let base = if i == 0 {
            PathBase::Document(Name::new(src.clone()))
        } else {
            PathBase::Var(Name::new(vars[i - 1].clone()))
        };
        for_clause.push(ForBinding {
            var: Name::new(v.clone()),
            base,
            steps: steps(rng),
        });
        vars.push(v);
    }
    let mut where_clause = Vec::new();
    for _ in 0..rng.below(3) {
        // LHS must be a path operand for the grammar.
        let lhs = match operand(rng, &vars) {
            Operand::Const(_) => Operand::Path {
                var: Name::new(vars[rng.below(vars.len() as u64) as usize].clone()),
                steps: vec![],
            },
            p => p,
        };
        where_clause.push(Condition {
            lhs,
            op: cmp_op(rng),
            rhs: operand(rng, &vars),
        });
    }
    let ret = if rng.below(2) == 0 {
        ReturnExpr::Var(Name::new(
            vars[rng.below(vars.len() as u64) as usize].clone(),
        ))
    } else {
        ReturnExpr::Elem(Element {
            label: Name::new(ident(rng)),
            children: vars
                .iter()
                .map(|v| Item::Var(Name::new(v.clone())))
                .collect(),
            group_by: vec![Name::new(vars[0].clone())],
        })
    };
    Query {
        for_clause,
        where_clause,
        ret,
    }
}

#[test]
fn print_parse_roundtrip() {
    for seed in 0..128u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(11));
        let q = query(&mut rng);
        let printed = print_query(&q);
        let reparsed =
            parse_query(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, q, "seed {seed}\nprinted:\n{printed}");
        // printing is a fixpoint
        assert_eq!(print_query(&reparsed), printed, "seed {seed}");
    }
}
