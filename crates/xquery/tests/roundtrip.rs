//! Property test: print ∘ parse is the identity on generated queries.

use mix_common::Name;
use mix_xquery::{parse_query, print_query, Condition, Element, ForBinding, Item, Operand, PathBase, Query, ReturnExpr};
use mix_xml::Step;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !["FOR", "IN", "WHERE", "AND", "RETURN", "document", "source", "root", "data",
          "for", "in", "where", "and", "return", "true", "false"]
            .iter()
            .any(|k| s.eq_ignore_ascii_case(k))
    })
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    (prop::collection::vec(ident(), 1..4), any::<bool>()).prop_map(|(labels, data)| {
        let mut v: Vec<Step> = labels.into_iter().map(|l| Step::Label(Name::new(l))).collect();
        if data {
            v.push(Step::Data);
        }
        v
    })
}

fn operand(vars: Vec<String>) -> impl Strategy<Value = Operand> {
    let var = prop::sample::select(vars);
    prop_oneof![
        (var.clone(), steps()).prop_map(|(v, s)| Operand::Path { var: Name::new(v), steps: s }),
        var.prop_map(|v| Operand::Path { var: Name::new(v), steps: vec![] }),
        any::<i64>().prop_map(|n| Operand::Const(mix_common::Value::Int(n))),
        "[a-zA-Z ]{0,8}".prop_map(|s| Operand::Const(mix_common::Value::str(s))),
    ]
}

fn cmp_op() -> impl Strategy<Value = mix_common::CmpOp> {
    use mix_common::CmpOp::*;
    prop::sample::select(vec![Eq, Ne, Lt, Le, Gt, Ge])
}

fn query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec((ident(), ident(), steps()), 1..4),
        prop::collection::vec((cmp_op(), any::<u8>()), 0..3),
        any::<u8>(),
        ident(),
        ident(),
    )
        .prop_flat_map(|(bindings, conds, ret_pick, label, src)| {
            // Make variable names unique.
            let mut for_clause = Vec::new();
            let mut vars = Vec::new();
            for (i, (v, _s2, s)) in bindings.into_iter().enumerate() {
                let v = format!("{v}{i}");
                vars.push(v.clone());
                let base = if i == 0 {
                    PathBase::Document(Name::new(src.clone()))
                } else {
                    PathBase::Var(Name::new(vars[i - 1].clone()))
                };
                for_clause.push(ForBinding { var: Name::new(v), base, steps: s });
            }
            let vars2 = vars.clone();
            let where_strategy = conds
                .into_iter()
                .map(move |(op, pick)| {
                    let vars3 = vars2.clone();
                    let vars4 = vars2.clone();
                    (operand(vars3.clone()), operand(vars3))
                        .prop_map(move |(l, r)| {
                            // LHS must be a path operand for the grammar.
                            let lhs = match l {
                                Operand::Const(_) => Operand::Path {
                                    var: Name::new(vars4[pick as usize % vars4.len()].clone()),
                                    steps: vec![],
                                },
                                p => p,
                            };
                            Condition { lhs, op, rhs: r }
                        })
                })
                .collect::<Vec<_>>();
            let ret_var = vars[ret_pick as usize % vars.len()].clone();
            let all_vars = vars.clone();
            where_strategy.prop_map(move |where_clause| {
                let ret = if ret_pick % 2 == 0 {
                    ReturnExpr::Var(Name::new(ret_var.clone()))
                } else {
                    ReturnExpr::Elem(Element {
                        label: Name::new(label.clone()),
                        children: all_vars.iter().map(|v| Item::Var(Name::new(v.clone()))).collect(),
                        group_by: vec![Name::new(all_vars[0].clone())],
                    })
                };
                Query { for_clause: for_clause.clone(), where_clause, ret }
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(q in query()) {
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &q, "\nprinted:\n{}", printed);
        // printing is a fixpoint
        prop_assert_eq!(print_query(&reparsed), printed);
    }
}
