//! Plan splitting and SQL generation (Section 6, Fig. 22).
//!
//! After rewriting, "the simplified algebraic plan can then be input to
//! a module which splits the plan into two components: one part
//! consisting of restructuring and grouping operators which is executed
//! at the mediator; the second part … is translated into a query in the
//! appropriate query language for sending to the sources, and is
//! represented at the mediator by a source access operator" — the `rQ`
//! operator.
//!
//! The split walks the plan top-down and replaces every *maximal*
//! subtree expressible as a conjunctive SQL query (scans of wrapped
//! relations, `getD` paths over their tuple structure, selections,
//! joins and semijoins — semijoins render as self-joins with
//! `DISTINCT`) with one `rQ`. When a `groupBy` sits above a fragment,
//! the generated SQL gets an `ORDER BY` on the group variables' key
//! columns so the mediator can run the *stateless* presorted `gBy`
//! (Fig. 22's `ORDER BY c1.id, o1.orid`).

use crate::util::{children, with_child};
use mix_algebra::{Cond, CondArg, Op, Plan, RqBinding, RqKind, Side};
use mix_common::{CmpOp, Name, Value};
use mix_relational::{ColRef, FromItem, Operand, Pred, SelectItem, SelectStmt};
use mix_wrapper::{Catalog, RelationSource};
use mix_xml::{oid::OidKind, Step};

/// Replace every maximal relational fragment with an `rQ` operator.
pub fn split_plan(plan: &Plan, catalog: &Catalog) -> Plan {
    Plan::new(split_op(&plan.root, catalog, &[]))
}

fn split_op(op: &Op, catalog: &Catalog, hint: &[Name]) -> Op {
    if let Some(frag) = convert(op, catalog) {
        if !frag.vars.is_empty() && co_partitioned(&frag, catalog) {
            return make_rq(frag, hint);
        }
    }
    // Not convertible here: recurse, threading the sort hint through
    // order-preserving operators and (re)setting it at groupBy.
    match op {
        Op::GroupBy { input, group, out } => Op::GroupBy {
            input: Box::new(split_op(input, catalog, group)),
            group: group.clone(),
            out: out.clone(),
        },
        Op::GetD { .. }
        | Op::Select { .. }
        | Op::CrElt { .. }
        | Op::Cat { .. }
        | Op::Apply { .. }
        | Op::OrderBy { .. }
        | Op::Project { .. }
        | Op::TupleDestroy { .. } => {
            // unary, order-preserving: keep the hint for the input; for
            // apply, the nested plan needs no splitting (pure
            // collection).
            let kids = children(op);
            let mut out = op.clone();
            for (i, k) in kids.iter().enumerate() {
                let child_hint = if i == 0 { hint } else { &[] };
                out = with_child(&out, i, split_op(k, catalog, child_hint));
            }
            out
        }
        Op::Join { left, right, cond } => Op::Join {
            left: Box::new(split_op(left, catalog, hint)),
            right: Box::new(split_op(right, catalog, &[])),
            cond: cond.clone(),
        },
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => {
            let (lh, rh): (&[Name], &[Name]) = match keep {
                Side::Left => (hint, &[]),
                Side::Right => (&[], hint),
            };
            Op::SemiJoin {
                left: Box::new(split_op(left, catalog, lh)),
                right: Box::new(split_op(right, catalog, rh)),
                cond: cond.clone(),
                keep: *keep,
            }
        }
        Op::MkSrcOver { input, var } => Op::MkSrcOver {
            input: Box::new(split_op(input, catalog, &[])),
            var: var.clone(),
        },
        _ => op.clone(),
    }
}

// ---------------------------------------------------------------------
// Fragment representation.
// ---------------------------------------------------------------------

/// Where a fragment variable's value comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VOrigin {
    /// The whole tuple element of FROM entry `i`.
    Tuple(usize),
    /// A field element `<col>value</col>` of FROM entry `i`.
    Field(usize, Name),
    /// The text value of a column of FROM entry `i`.
    FieldVal(usize, Name),
}

impl VOrigin {
    fn shifted(&self, by: usize) -> VOrigin {
        match self {
            VOrigin::Tuple(i) => VOrigin::Tuple(i + by),
            VOrigin::Field(i, c) => VOrigin::Field(i + by, c.clone()),
            VOrigin::FieldVal(i, c) => VOrigin::FieldVal(i + by, c.clone()),
        }
    }
}

/// A resolved predicate: `(from, col) op rhs`.
#[derive(Debug, Clone)]
struct FPred {
    lhs: (usize, Name),
    op: CmpOp,
    rhs: FOperand,
}

#[derive(Debug, Clone)]
enum FOperand {
    Col(usize, Name),
    Const(Value),
}

impl FPred {
    fn shifted(&self, by: usize) -> FPred {
        FPred {
            lhs: (self.lhs.0 + by, self.lhs.1.clone()),
            op: self.op,
            rhs: match &self.rhs {
                FOperand::Col(i, c) => FOperand::Col(i + by, c.clone()),
                FOperand::Const(v) => FOperand::Const(v.clone()),
            },
        }
    }
}

/// A subtree expressible as one SQL query.
struct Frag {
    server: Name,
    from: Vec<RelationSource>,
    preds: Vec<FPred>,
    vars: Vec<(Name, VOrigin)>,
    distinct: bool,
    order: Vec<Name>,
}

impl Frag {
    fn origin_of(&self, var: &Name) -> Option<&VOrigin> {
        self.vars.iter().find(|(v, _)| v == var).map(|(_, o)| o)
    }
}

// ---------------------------------------------------------------------
// Conversion.
// ---------------------------------------------------------------------

fn convert(op: &Op, catalog: &Catalog) -> Option<Frag> {
    match op {
        Op::MkSrc { source, var } => {
            let rel = catalog.relation_info(source.as_str())?.clone();
            Some(Frag {
                server: rel.db().name().clone(),
                from: vec![rel],
                preds: vec![],
                vars: vec![(var.clone(), VOrigin::Tuple(0))],
                distinct: false,
                order: vec![],
            })
        }
        Op::GetD {
            input,
            from,
            path,
            to,
        } => {
            let mut f = convert(input, catalog)?;
            let origin = f.origin_of(from)?.clone();
            let new_origin = resolve_path(&f, &origin, path.steps())?;
            f.vars.push((to.clone(), new_origin));
            Some(f)
        }
        Op::Select { input, cond } => {
            let mut f = convert(input, catalog)?;
            let preds = convert_cond(&f, cond)?;
            f.preds.extend(preds);
            Some(f)
        }
        Op::Join { left, right, cond } => {
            let f = merge(convert(left, catalog)?, convert(right, catalog)?, None)?;
            attach_cond(f, cond.as_ref())
        }
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => {
            let fl = convert(left, catalog)?;
            let fr = convert(right, catalog)?;
            let kept: Vec<(Name, VOrigin)> = match keep {
                Side::Left => fl.vars.clone(),
                Side::Right => fr
                    .vars
                    .iter()
                    .map(|(v, o)| (v.clone(), o.shifted(fl.from.len())))
                    .collect(),
            };
            // Resolve the condition against the *full* variable set,
            // then keep only the surviving side's bindings (the other
            // side's relations stay in FROM — the self-join of Fig. 22).
            let f = merge(fl, fr, None)?;
            let mut f = attach_cond(f, cond.as_ref())?;
            f.vars = kept;
            f.distinct = true;
            Some(f)
        }
        Op::Project { input, vars } => {
            let f = convert(input, catalog)?;
            let mut kept = Vec::new();
            for v in vars {
                kept.push((v.clone(), f.origin_of(v)?.clone()));
            }
            Some(Frag { vars: kept, ..f })
        }
        Op::OrderBy { input, vars } => {
            let mut f = convert(input, catalog)?;
            f.order.extend(vars.iter().cloned());
            Some(f)
        }
        _ => None,
    }
}

/// Can this fragment execute as one SQL statement on its server even if
/// that server is a *sharded* federation? A multi-relation statement is
/// shard-safe only when its FROM entries are provably co-partitioned:
/// every entry must be linked — transitively — to every other by an
/// equality predicate over the tables' declared shard columns, so
/// joining rows always live on the same shard. Single-relation
/// fragments and unsharded backends are always pushable (this returns
/// `true` without inspecting predicates, keeping unsharded SQL
/// byte-identical). When the guard rejects, the split recurses instead,
/// producing one `rQ` per relation with the join at the mediator.
fn co_partitioned(frag: &Frag, catalog: &Catalog) -> bool {
    if frag.from.len() <= 1 {
        return true;
    }
    let Ok(backend) = catalog.database(frag.server.as_str()) else {
        return true;
    };
    if backend.as_sharded().is_none() {
        return true;
    }
    let shard_col = |i: usize| backend.shard_col(frag.from[i].relation().as_str());
    // Union-find over FROM entries; shard-col = shard-col equi-preds
    // are the edges.
    let mut parent: Vec<usize> = (0..frag.from.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for p in &frag.preds {
        if p.op != CmpOp::Eq {
            continue;
        }
        let FOperand::Col(j, ref jc) = p.rhs else {
            continue;
        };
        let (i, ic) = (p.lhs.0, &p.lhs.1);
        if shard_col(i) == Some(ic) && shard_col(j) == Some(jc) {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            parent[ri] = rj;
        }
    }
    let root = find(&mut parent, 0);
    (1..frag.from.len()).all(|i| find(&mut parent, i) == root)
}

fn merge(fl: Frag, fr: Frag, vars_override: Option<Vec<(Name, VOrigin)>>) -> Option<Frag> {
    if fl.server != fr.server {
        return None;
    }
    let shift = fl.from.len();
    let mut from = fl.from;
    from.extend(fr.from);
    let mut preds = fl.preds;
    preds.extend(fr.preds.iter().map(|p| p.shifted(shift)));
    let vars = vars_override.unwrap_or_else(|| {
        let mut v = fl.vars.clone();
        v.extend(fr.vars.iter().map(|(n, o)| (n.clone(), o.shifted(shift))));
        v
    });
    let mut order = fl.order;
    order.extend(fr.order);
    Some(Frag {
        server: fl.server,
        from,
        preds,
        vars,
        distinct: fl.distinct || fr.distinct,
        order,
    })
}

fn attach_cond(mut f: Frag, cond: Option<&Cond>) -> Option<Frag> {
    if let Some(c) = cond {
        let preds = convert_cond(&f, c)?;
        f.preds.extend(preds);
    }
    Some(f)
}

/// Resolve a `getD` path against the wrapper's tuple structure.
fn resolve_path(f: &Frag, origin: &VOrigin, steps: &[Step]) -> Option<VOrigin> {
    let mut cur = origin.clone();
    let mut steps = steps.iter();
    // First step matches the start node itself.
    let first = steps.next()?;
    match (&cur, first) {
        (VOrigin::Tuple(i), Step::Label(l)) if l == f.from[*i].element() => {}
        (VOrigin::Tuple(_), Step::Wild) => {}
        (VOrigin::Field(_, c), Step::Label(l)) if l == c => {}
        (VOrigin::Field(_, _), Step::Wild) => {}
        (VOrigin::FieldVal(_, _), Step::Data) => {}
        _ => return None,
    }
    for step in steps {
        cur = match (&cur, step) {
            (VOrigin::Tuple(i), Step::Label(l)) => {
                let cols = f.from[*i].columns().ok()?;
                if cols.contains(l) {
                    VOrigin::Field(*i, l.clone())
                } else {
                    return None;
                }
            }
            (VOrigin::Field(i, c), Step::Data) => VOrigin::FieldVal(*i, c.clone()),
            _ => return None,
        };
    }
    Some(cur)
}

/// Translate a condition into SQL predicates (possibly several, for
/// oid-based conditions over composite keys).
fn convert_cond(f: &Frag, cond: &Cond) -> Option<Vec<FPred>> {
    let col_of = |v: &Name| -> Option<(usize, Name)> {
        match f.origin_of(v)? {
            VOrigin::Field(i, c) | VOrigin::FieldVal(i, c) => Some((*i, c.clone())),
            VOrigin::Tuple(_) => None,
        }
    };
    match cond {
        Cond::Cmp { l, op, r } => {
            let (lhs, op, rhs) = match (l, r) {
                (CondArg::Var(a), CondArg::Const(c)) => {
                    (col_of(a)?, *op, FOperand::Const(c.clone()))
                }
                (CondArg::Const(c), CondArg::Var(a)) => {
                    (col_of(a)?, op.flip(), FOperand::Const(c.clone()))
                }
                (CondArg::Var(a), CondArg::Var(b)) => {
                    let (bi, bc) = col_of(b)?;
                    (col_of(a)?, *op, FOperand::Col(bi, bc))
                }
                _ => return None,
            };
            Some(vec![FPred { lhs, op, rhs }])
        }
        Cond::OidEq { var, oid } => {
            let VOrigin::Tuple(i) = f.origin_of(var)? else {
                return None;
            };
            let OidKind::Key(text) = oid.kind() else {
                return None;
            };
            let keys = f.from[*i].key_columns().ok()?;
            let parts: Vec<&str> = text.split('|').collect();
            if parts.len() != keys.len() {
                return None;
            }
            Some(
                keys.into_iter()
                    .zip(parts)
                    .map(|(col, part)| FPred {
                        lhs: (*i, col),
                        op: CmpOp::Eq,
                        rhs: FOperand::Const(Value::parse_literal(part)),
                    })
                    .collect(),
            )
        }
        Cond::OidCmp { l, r } => {
            let VOrigin::Tuple(li) = f.origin_of(l)? else {
                return None;
            };
            let VOrigin::Tuple(ri) = f.origin_of(r)? else {
                return None;
            };
            let lk = f.from[*li].key_columns().ok()?;
            let rk = f.from[*ri].key_columns().ok()?;
            if lk.len() != rk.len() {
                return None;
            }
            Some(
                lk.into_iter()
                    .zip(rk)
                    .map(|(a, b)| FPred {
                        lhs: (*li, a),
                        op: CmpOp::Eq,
                        rhs: FOperand::Col(*ri, b),
                    })
                    .collect(),
            )
        }
        // A conjunction pushes only if every conjunct does.
        Cond::And(cs) => {
            let mut preds = Vec::new();
            for c in cs {
                preds.extend(convert_cond(f, c)?);
            }
            Some(preds)
        }
    }
}

// ---------------------------------------------------------------------
// SQL generation.
// ---------------------------------------------------------------------

fn make_rq(frag: Frag, hint: &[Name]) -> Op {
    // Fig. 22-style aliases: first letter of the relation + counter
    // (customer → c1, c2; orders → o1, o2).
    let mut per_letter: std::collections::HashMap<char, usize> = std::collections::HashMap::new();
    let aliases: Vec<Name> = frag
        .from
        .iter()
        .map(|rel| {
            let letter = rel.relation().as_str().chars().next().unwrap_or('t');
            let n = per_letter.entry(letter).or_insert(0);
            *n += 1;
            Name::new(format!("{letter}{n}"))
        })
        .collect();

    // SELECT items + the rQ map, deduplicating shared origins.
    let mut items: Vec<SelectItem> = Vec::new();
    let mut col_pos: std::collections::HashMap<(usize, Name), usize> =
        std::collections::HashMap::new();
    let mut pos_of = |items: &mut Vec<SelectItem>, i: usize, col: Name| -> usize {
        if let Some(&p) = col_pos.get(&(i, col.clone())) {
            return p;
        }
        let p = items.len();
        items.push(SelectItem {
            col: ColRef::qualified(aliases[i].clone(), col.clone()),
            alias: None,
        });
        col_pos.insert((i, col), p);
        p
    };
    let mut map = Vec::new();
    for (var, origin) in &frag.vars {
        let kind = match origin {
            VOrigin::Tuple(i) => {
                let rel = &frag.from[*i];
                let cols = rel.columns().unwrap_or_default();
                let keys = rel.key_columns().unwrap_or_default();
                let positions: Vec<(Name, usize)> = cols
                    .iter()
                    .map(|c| (c.clone(), pos_of(&mut items, *i, c.clone())))
                    .collect();
                let key = keys
                    .iter()
                    .filter_map(|k| positions.iter().find(|(c, _)| c == k).map(|(_, p)| *p))
                    .collect();
                RqKind::Element {
                    element: rel.element().clone(),
                    cols: positions,
                    key,
                }
            }
            // A Field origin is the field *element*, not its value —
            // shipping it as a bare value collapses `$B IN $A/col` to
            // `$B IN $A/col/data()` and diverges from the naive plan
            // (wrong skolem argument, wrong construction).
            VOrigin::Field(i, c) => {
                let col = pos_of(&mut items, *i, c.clone());
                let keys = frag.from[*i].key_columns().unwrap_or_default();
                let key = keys
                    .iter()
                    .map(|k| pos_of(&mut items, *i, k.clone()))
                    .collect();
                RqKind::FieldElement {
                    element: c.clone(),
                    col,
                    key,
                }
            }
            VOrigin::FieldVal(i, c) => RqKind::Value {
                col: pos_of(&mut items, *i, c.clone()),
            },
        };
        map.push(RqBinding {
            var: var.clone(),
            kind,
        });
    }

    // WHERE clause.
    let preds: Vec<Pred> = frag
        .preds
        .iter()
        .map(|p| Pred {
            lhs: ColRef::qualified(aliases[p.lhs.0].clone(), p.lhs.1.clone()),
            op: p.op,
            rhs: match &p.rhs {
                FOperand::Const(v) => Operand::Const(v.clone()),
                FOperand::Col(i, c) => {
                    Operand::Col(ColRef::qualified(aliases[*i].clone(), c.clone()))
                }
            },
        })
        .collect();

    // ORDER BY: the group-by hint variables' key columns first, then
    // the remaining exported tuple variables' keys (stable navigation
    // order), then explicit orderBy variables.
    let mut order_by: Vec<ColRef> = Vec::new();
    let push_var_keys = |order_by: &mut Vec<ColRef>, var: &Name| match frag.origin_of(var) {
        Some(VOrigin::Tuple(i)) => {
            for k in frag.from[*i].key_columns().unwrap_or_default() {
                let c = ColRef::qualified(aliases[*i].clone(), k);
                if !order_by.contains(&c) {
                    order_by.push(c);
                }
            }
        }
        Some(VOrigin::Field(i, c)) | Some(VOrigin::FieldVal(i, c)) => {
            let c = ColRef::qualified(aliases[*i].clone(), c.clone());
            if !order_by.contains(&c) {
                order_by.push(c);
            }
        }
        None => {}
    };
    for h in hint {
        push_var_keys(&mut order_by, h);
    }
    for (var, origin) in &frag.vars {
        if matches!(origin, VOrigin::Tuple(_)) {
            push_var_keys(&mut order_by, var);
        }
    }
    for v in &frag.order {
        push_var_keys(&mut order_by, v);
    }

    let sql = SelectStmt {
        distinct: frag.distinct,
        items,
        from: frag
            .from
            .iter()
            .zip(&aliases)
            .map(|(rel, a)| FromItem {
                table: rel.relation().clone(),
                alias: Some(a.clone()),
            })
            .collect(),
        preds,
        order_by,
    };
    Op::RelQuery {
        server: frag.server,
        sql,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{translate, validate};
    use mix_wrapper::fig2_catalog;
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    #[test]
    fn q1_pushes_join_to_sql() {
        let (cat, _db) = fig2_catalog();
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        let split = split_plan(&plan, &cat);
        validate(&split).unwrap();
        let text = split.render();
        assert!(text.contains("rQ(db1"), "{text}");
        // One single rQ feeding the grouping machinery; no mksrc left.
        assert!(!text.contains("mksrc"), "{text}");
        assert!(text.contains("WHERE c1.id = o1.cid"), "{text}");
        // Presorted gBy support: ORDER BY the group variable's key first.
        assert!(text.contains("ORDER BY c1.id, o1.orid"), "{text}");
        assert!(text.contains("gBy([$C] -> $X)"), "{text}");
    }

    #[test]
    fn selection_pushed_into_sql() {
        let (cat, _db) = fig2_catalog();
        let q = "FOR $O IN document(root2)/order WHERE $O/value > 2000 RETURN $O";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let split = split_plan(&plan, &cat);
        let text = split.render();
        assert!(text.contains("WHERE o1.value > 2000"), "{text}");
        assert!(!text.contains("select"), "{text}");
    }

    #[test]
    fn oid_selection_becomes_key_predicate() {
        use mix_xml::Oid;
        let (cat, _db) = fig2_catalog();
        let q = "FOR $C IN source(&root1)/customer RETURN $C";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let Op::TupleDestroy { input, var, root } = plan.root else {
            panic!()
        };
        let fixed = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::Select {
                input,
                cond: Cond::OidEq {
                    var: Name::new("C"),
                    oid: Oid::key("XYZ123"),
                },
            }),
            var,
            root,
        });
        let text = split_plan(&fixed, &cat).render();
        assert!(text.contains("WHERE c1.id = 'XYZ123'"), "{text}");
    }

    #[test]
    fn semijoin_renders_as_distinct_self_join() {
        use mix_xml::LabelPath;
        let (cat, _db) = fig2_catalog();
        // Lsemijoin: customers (kept) having an order with value > 20000.
        let customers = Op::GetD {
            input: Box::new(Op::MkSrc {
                source: Name::new("root1"),
                var: Name::new("K"),
            }),
            from: Name::new("K"),
            path: LabelPath::parse("customer").unwrap(),
            to: Name::new("C"),
        };
        let big_orders = Op::Select {
            input: Box::new(Op::GetD {
                input: Box::new(Op::GetD {
                    input: Box::new(Op::MkSrc {
                        source: Name::new("root2"),
                        var: Name::new("J"),
                    }),
                    from: Name::new("J"),
                    path: LabelPath::parse("order").unwrap(),
                    to: Name::new("O"),
                }),
                from: Name::new("O"),
                path: LabelPath::parse("order.value.data()").unwrap(),
                to: Name::new("3"),
            }),
            cond: Cond::cmp_const("3", CmpOp::Gt, 20000),
        };
        // join condition via cid: bind both sides' ids
        let customers = Op::GetD {
            input: Box::new(customers),
            from: Name::new("C"),
            path: LabelPath::parse("customer.id.data()").unwrap(),
            to: Name::new("1"),
        };
        let big_orders = Op::GetD {
            input: Box::new(big_orders),
            from: Name::new("O"),
            path: LabelPath::parse("order.cid.data()").unwrap(),
            to: Name::new("2"),
        };
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::SemiJoin {
                left: Box::new(big_orders),
                right: Box::new(customers),
                cond: Some(Cond::cmp_vars("1", CmpOp::Eq, "2")),
                keep: Side::Right,
            }),
            var: Name::new("C"),
            root: Some(Name::new("rootv")),
        });
        validate(&plan).unwrap();
        let text = split_plan(&plan, &cat).render();
        assert!(text.contains("SELECT DISTINCT"), "{text}");
        // Self-join style: both customer (kept) and orders (filter) in FROM.
        assert!(text.contains("FROM orders o1, customer c1"), "{text}");
        assert!(text.contains("o1.value > 20000"), "{text}");
        assert!(text.contains("c1.id = o1.cid"), "{text}");
    }

    #[test]
    fn co_partitioned_join_pushes_to_sharded_backend() {
        // customer.id = orders.cid links the two declared shard
        // columns, so the join is shard-local and still renders as one
        // rQ — with SQL byte-identical to the unsharded split.
        let db = mix_relational::fixtures::sample_db();
        let (cat, _sharded) = mix_wrapper::wrap_customers_orders_sharded(
            &db,
            mix_relational::ShardScheme::Hash { shards: 4 },
        )
        .unwrap();
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        let text = split_plan(&plan, &cat).render();
        assert_eq!(text.matches("rQ(").count(), 1, "{text}");
        assert!(text.contains("WHERE c1.id = o1.cid"), "{text}");
        assert!(text.contains("ORDER BY c1.id, o1.orid"), "{text}");

        let (unsharded_cat, _db) = fig2_catalog();
        assert_eq!(text, split_plan(&plan, &unsharded_cat).render());
    }

    #[test]
    fn non_co_partitioned_join_splits_per_relation() {
        // id-to-orid joins rows that live on different shards: the
        // fragment must not become one statement. Each relation gets
        // its own rQ and the join runs at the mediator.
        let db = mix_relational::fixtures::sample_db();
        let (cat, _sharded) = mix_wrapper::wrap_customers_orders_sharded(
            &db,
            mix_relational::ShardScheme::Hash { shards: 4 },
        )
        .unwrap();
        let q = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
                 WHERE $C/id/data() = $O/orid/data() RETURN $O";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let text = split_plan(&plan, &cat).render();
        assert_eq!(text.matches("rQ(").count(), 2, "{text}");
        assert!(text.contains("join("), "{text}");
        // The same query on the unsharded catalog still merges.
        let (unsharded_cat, _db) = fig2_catalog();
        let text = split_plan(&plan, &unsharded_cat).render();
        assert_eq!(text.matches("rQ(").count(), 1, "{text}");
    }

    #[test]
    fn mixed_servers_do_not_merge() {
        // A second database under different server name.
        let (mut cat, _db) = fig2_catalog();
        let mut db2 = mix_relational::Database::new("db2");
        db2.create_table(
            "extra",
            mix_relational::Schema::new(
                vec![mix_relational::Column::new(
                    "k",
                    mix_relational::ColumnType::Int,
                )],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register_relation(RelationSource::new(db2, "extra", "extra", "root9"));
        let q = "FOR $C IN source(&root1)/customer $E IN document(root9)/extra \
                 WHERE $C/id/data() = $E/k/data() RETURN $C";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let text = split_plan(&plan, &cat).render();
        // Two rQ operators (one per server) with the join at the mediator.
        assert_eq!(text.matches("rQ(").count(), 2, "{text}");
        assert!(text.contains("join("), "{text}");
    }

    #[test]
    fn file_sources_stay_at_mediator() {
        let mut cat = Catalog::new();
        cat.register_xml(
            mix_xml::parse_document("filesrc", "<list><a><x>1</x></a></list>").unwrap(),
        );
        let q = "FOR $A IN document(filesrc)/a WHERE $A/x/data() > 0 RETURN $A";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let text = split_plan(&plan, &cat).render();
        assert!(!text.contains("rQ("), "{text}");
        assert!(text.contains("mksrc(filesrc"), "{text}");
    }
}

// ---------------------------------------------------------------------
// Schema-aware pruning (the paper's suggested extension).
// ---------------------------------------------------------------------

/// Prune `getD` operators whose paths provably cannot match the
/// wrapper's tuple structure, using the relation schemas.
///
/// Section 6: "We do not consider the case of using source schema in
/// the rest of the discussion, except note that by adding additional
/// rewrite rules we can include this case easily in our framework" —
/// this is that rule. A query asking for `customer.bogus` collapses to
/// the empty plan before any SQL is issued.
///
/// Returns `None` when nothing changed.
pub fn schema_prune(plan: &Plan, catalog: &Catalog) -> Option<Plan> {
    let mut changed = false;
    let root = prune_op(&plan.root, catalog, &mut changed);
    if changed {
        Some(Plan::new(root))
    } else {
        None
    }
}

fn prune_op(op: &Op, catalog: &Catalog, changed: &mut bool) -> Op {
    if let Op::GetD {
        input, from, path, ..
    } = op
    {
        if let Some(origin) = wrapper_origin(input, from, catalog) {
            if definitely_unmatchable(&origin, path.steps()) {
                *changed = true;
                return Op::Empty {
                    vars: crate::util::bound_vars(op),
                };
            }
        }
    }
    let kids = children(op);
    let mut out = op.clone();
    for (i, k) in kids.iter().enumerate() {
        out = with_child(&out, i, prune_op(k, catalog, changed));
    }
    out
}

/// Where in the wrapper's tuple structure a variable is bound, if that
/// can be derived from its producer chain.
enum WOrigin {
    Tuple(RelationSource),
    Field(RelationSource, Name),
    FieldVal,
}

fn wrapper_origin(scope: &Op, var: &Name, catalog: &Catalog) -> Option<WOrigin> {
    let producer = crate::util::find_producer(scope, var)?;
    match producer {
        Op::MkSrc { source, .. } => catalog
            .relation_info(source.as_str())
            .cloned()
            .map(WOrigin::Tuple),
        Op::GetD {
            input, from, path, ..
        } => {
            let base = wrapper_origin(input, from, catalog)?;
            follow(&base, path.steps())
        }
        _ => None,
    }
}

/// Follow a (matchable) path from an origin; `None` when the outcome is
/// unknown or the path escapes the known structure.
fn follow(origin: &WOrigin, steps: &[Step]) -> Option<WOrigin> {
    let mut cur = match origin {
        WOrigin::Tuple(r) => WOrigin::Tuple(r.clone()),
        WOrigin::Field(r, c) => WOrigin::Field(r.clone(), c.clone()),
        WOrigin::FieldVal => WOrigin::FieldVal,
    };
    let mut it = steps.iter();
    // first step: the node itself
    match (&cur, it.next()?) {
        (WOrigin::Tuple(r), Step::Label(l)) if l == r.element() => {}
        (WOrigin::Field(_, c), Step::Label(l)) if l == c => {}
        (WOrigin::FieldVal, Step::Data) => {}
        (_, Step::Wild) => {}
        _ => return None,
    }
    for step in it {
        cur = match (&cur, step) {
            (WOrigin::Tuple(r), Step::Label(l)) if r.columns().ok()?.contains(l) => {
                WOrigin::Field(r.clone(), l.clone())
            }
            (WOrigin::Field(_, _), Step::Data) => WOrigin::FieldVal,
            _ => return None,
        };
    }
    Some(cur)
}

/// Is the path provably unsatisfiable from this origin? Conservative:
/// wildcards and unknown shapes return `false`.
fn definitely_unmatchable(origin: &WOrigin, steps: &[Step]) -> bool {
    let mut cur = match origin {
        WOrigin::Tuple(r) => WOrigin::Tuple(r.clone()),
        WOrigin::Field(r, c) => WOrigin::Field(r.clone(), c.clone()),
        WOrigin::FieldVal => WOrigin::FieldVal,
    };
    let mut it = steps.iter();
    let Some(first) = it.next() else { return false };
    match (&cur, first) {
        (WOrigin::Tuple(r), Step::Label(l)) => {
            if l != r.element() {
                return true;
            }
        }
        (WOrigin::Field(_, c), Step::Label(l)) => {
            if l != c {
                return true;
            }
        }
        (WOrigin::FieldVal, Step::Label(_)) => return true,
        (WOrigin::Tuple(_) | WOrigin::Field(_, _), Step::Data) => {
            // tuple elements have element children; fields have a text
            // child only via a further step
            if matches!(cur, WOrigin::Tuple(_)) {
                return true;
            }
        }
        _ => return false, // wildcard or already-satisfied leaf
    }
    for step in it {
        match (&cur, step) {
            (WOrigin::Tuple(r), Step::Label(l)) => {
                let Ok(cols) = r.columns() else { return false };
                if !cols.contains(l) {
                    return true;
                }
                cur = WOrigin::Field(r.clone(), l.clone());
            }
            (WOrigin::Tuple(_), Step::Data) => return true,
            (WOrigin::Field(_, _), Step::Data) => cur = WOrigin::FieldVal,
            (WOrigin::Field(_, _), Step::Label(_)) => return true,
            (WOrigin::FieldVal, _) => return true,
            (_, Step::Wild) => return false,
        }
    }
    false
}

#[cfg(test)]
mod schema_prune_tests {
    use super::*;
    use mix_algebra::translate;
    use mix_wrapper::fig2_catalog;
    use mix_xquery::parse_query;

    #[test]
    fn bogus_column_collapses_to_empty() {
        let (cat, _) = fig2_catalog();
        let q = "FOR $C IN source(&root1)/customer $X IN $C/bogus RETURN $X";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let pruned = schema_prune(&plan, &cat).expect("prunes");
        assert!(pruned.render().contains("empty"), "{}", pruned.render());
    }

    #[test]
    fn valid_paths_are_untouched() {
        let (cat, _) = fig2_catalog();
        let q = "FOR $C IN source(&root1)/customer $X IN $C/name RETURN $X";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        assert!(schema_prune(&plan, &cat).is_none());
    }

    #[test]
    fn too_deep_paths_are_pruned() {
        let (cat, _) = fig2_catalog();
        // name has a text leaf, not a `sub` element.
        let q = "FOR $C IN source(&root1)/customer $X IN $C/name/sub RETURN $X";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        assert!(schema_prune(&plan, &cat).is_some());
    }
}
