//! Whole-plan passes: live-variable analysis with dead-operator
//! elimination, and join→semijoin conversion (Section 6 prose,
//! Fig. 19→20).

use crate::util::{bound_vars, children, referenced_vars, with_child};
use mix_algebra::{Op, Plan, Side};
use mix_common::Name;
use std::collections::HashSet;

/// Remove operators that only bind dead variables: `getD`, `crElt`,
/// `cat` and `apply` whose output no operator above references.
///
/// Dropping `crElt`/`cat`/`apply` is always sound (exactly one output
/// per input tuple). Dropping a `getD` assumes its path is
/// single-valued per start node (true for the wrapper's column fields)
/// or set semantics — the same license the paper's live-variable step
/// takes.
///
/// Returns `None` when nothing changed.
pub fn dead_elimination(plan: &Plan) -> Option<Plan> {
    let mut changed = false;
    let root_needed: HashSet<Name> = match &plan.root {
        Op::TupleDestroy { var, .. } => [var.clone()].into(),
        _ => HashSet::new(),
    };
    let new_root = go(&plan.root, &root_needed, &mut changed);
    if changed {
        Some(Plan::new(new_root))
    } else {
        None
    }
}

fn go(op: &Op, needed: &HashSet<Name>, changed: &mut bool) -> Op {
    // Drop this operator entirely?
    let dead_out = |out: &Name| !needed.contains(out);
    match op {
        Op::GetD { input, to, .. } if dead_out(to) => {
            *changed = true;
            return go(input, needed, changed);
        }
        Op::CrElt { input, out, .. }
        | Op::Cat { input, out, .. }
        | Op::Apply { input, out, .. }
            if dead_out(out) =>
        {
            *changed = true;
            return go(input, needed, changed);
        }
        _ => {}
    }
    // Recurse: children need what we need plus what this op references.
    let mut sub_needed = needed.clone();
    sub_needed.extend(referenced_vars(op));
    let mut out = op.clone();
    match op {
        Op::Apply { input, plan, .. } => {
            // Everything a nested plan reads may come from the group
            // partition, i.e. from the outer input's tuples.
            sub_needed.extend(deep_refs(plan));
            out = with_child(&out, 0, go(input, &sub_needed, changed));
            // The nested plan needs its own tD variable (and whatever it
            // references internally).
            let nested_needed: HashSet<Name> = match &**plan {
                Op::TupleDestroy { var, .. } => [var.clone()].into(),
                _ => HashSet::new(),
            };
            out = with_child(&out, 1, go(plan, &nested_needed, changed));
        }
        Op::MkSrcOver { input, .. } => {
            // The inline view plan has its own tD-rooted liveness.
            let inner_needed: HashSet<Name> = match &**input {
                Op::TupleDestroy { var, .. } => [var.clone()].into(),
                _ => HashSet::new(),
            };
            out = with_child(&out, 0, go(input, &inner_needed, changed));
        }
        Op::TupleDestroy { input, var, .. } => {
            let mut n: HashSet<Name> = [var.clone()].into();
            n.extend(referenced_vars(op));
            out = with_child(&out, 0, go(input, &n, changed));
        }
        _ => {
            let kids = children(op);
            for (i, k) in kids.iter().enumerate() {
                out = with_child(&out, i, go(k, &sub_needed, changed));
            }
        }
    }
    out
}

/// Every variable referenced anywhere in a subtree (used to treat a
/// nested plan's reads as live outside it).
fn deep_refs(op: &Op) -> HashSet<Name> {
    let mut out: HashSet<Name> = referenced_vars(op).into_iter().collect();
    for c in children(op) {
        out.extend(deep_refs(c));
    }
    out
}

/// Convert joins whose one side contributes no live variables into
/// semijoins (Fig. 19→20: "the live variable analysis … shows that the
/// variable $P is dead: this allows us to convert the join operation
/// into a semi-join").
pub fn join_to_semijoin(plan: &Plan) -> Option<Plan> {
    let mut changed = false;
    let root_needed: HashSet<Name> = match &plan.root {
        Op::TupleDestroy { var, .. } => [var.clone()].into(),
        _ => HashSet::new(),
    };
    let new_root = go_semijoin(&plan.root, &root_needed, &mut changed);
    if changed {
        Some(Plan::new(new_root))
    } else {
        None
    }
}

fn go_semijoin(op: &Op, needed: &HashSet<Name>, changed: &mut bool) -> Op {
    if let Op::Join { left, right, cond } = op {
        // The join condition itself is evaluated by the semijoin, so
        // only variables needed *above* count.
        let lb: HashSet<Name> = bound_vars(left).into_iter().collect();
        let rb: HashSet<Name> = bound_vars(right).into_iter().collect();
        if needed.iter().all(|v| !rb.contains(v)) {
            *changed = true;
            let new = Op::SemiJoin {
                left: left.clone(),
                right: right.clone(),
                cond: cond.clone(),
                keep: Side::Left,
            };
            return go_semijoin(&new, needed, changed);
        }
        if needed.iter().all(|v| !lb.contains(v)) {
            *changed = true;
            let new = Op::SemiJoin {
                left: left.clone(),
                right: right.clone(),
                cond: cond.clone(),
                keep: Side::Right,
            };
            return go_semijoin(&new, needed, changed);
        }
    }
    let mut sub_needed = needed.clone();
    sub_needed.extend(referenced_vars(op));
    let mut out = op.clone();
    match op {
        Op::Apply { input, plan, .. } => {
            sub_needed.extend(deep_refs(plan));
            out = with_child(&out, 0, go_semijoin(input, &sub_needed, changed));
            let nested_needed: HashSet<Name> = match &**plan {
                Op::TupleDestroy { var, .. } => [var.clone()].into(),
                _ => HashSet::new(),
            };
            out = with_child(&out, 1, go_semijoin(plan, &nested_needed, changed));
        }
        Op::TupleDestroy { input, var, .. } => {
            let mut n: HashSet<Name> = [var.clone()].into();
            n.extend(referenced_vars(op));
            out = with_child(&out, 0, go_semijoin(input, &n, changed));
        }
        _ => {
            let kids = children(op);
            for (i, k) in kids.iter().enumerate() {
                out = with_child(&out, i, go_semijoin(k, &sub_needed, changed));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{Cond, Op, Plan};
    use mix_common::CmpOp;
    use mix_xml::LabelPath;

    fn mk(source: &str, var: &str) -> Op {
        Op::MkSrc {
            source: mix_common::Name::new(source),
            var: mix_common::Name::new(var),
        }
    }

    fn getd(input: Op, from: &str, path: &str, to: &str) -> Op {
        Op::GetD {
            input: Box::new(input),
            from: Name::new(from),
            path: LabelPath::parse(path).unwrap(),
            to: Name::new(to),
        }
    }

    #[test]
    fn dead_getd_is_removed() {
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(getd(
                getd(mk("r", "A"), "A", "a.x", "Dead"),
                "A",
                "a.y",
                "Live",
            )),
            var: Name::new("Live"),
            root: None,
        });
        let out = dead_elimination(&plan).unwrap();
        let text = out.render();
        assert!(!text.contains("$Dead"), "{text}");
        assert!(text.contains("getD($A.a.y, $Live)"), "{text}");
        // Fixpoint: second run reports no change.
        assert!(dead_elimination(&out).is_none());
    }

    #[test]
    fn live_getd_stays_when_used_by_select() {
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::Select {
                input: Box::new(getd(mk("r", "A"), "A", "a.x", "X")),
                cond: Cond::cmp_const("X", CmpOp::Gt, 1),
            }),
            var: Name::new("A"),
            root: None,
        });
        assert!(dead_elimination(&plan).is_none());
    }

    #[test]
    fn join_with_dead_right_becomes_left_semijoin() {
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::Join {
                left: Box::new(getd(mk("r1", "A"), "A", "a.k.data()", "1")),
                right: Box::new(getd(mk("r2", "B"), "B", "b.k.data()", "2")),
                cond: Some(Cond::cmp_vars("1", CmpOp::Eq, "2")),
            }),
            var: Name::new("A"),
            root: None,
        });
        let out = join_to_semijoin(&plan).unwrap();
        let text = out.render();
        assert!(text.contains("Rsemijoin($1 = $2)"), "{text}");
        assert!(join_to_semijoin(&out).is_none());
    }

    #[test]
    fn join_with_both_sides_live_stays() {
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::Cat {
                input: Box::new(Op::Join {
                    left: Box::new(mk("r1", "A")),
                    right: Box::new(mk("r2", "B")),
                    cond: None,
                }),
                left: mix_algebra::ChildSpec::Single(Name::new("A")),
                right: mix_algebra::ChildSpec::Single(Name::new("B")),
                out: Name::new("W"),
            }),
            var: Name::new("W"),
            root: None,
        });
        assert!(join_to_semijoin(&plan).is_none());
    }
}
