//! The MIX rewriting optimizer (paper Section 6, Table 2).
//!
//! "Efficient composition plans are derived in MIX by having a rewriter
//! module optimize the straightforward (and inefficient) composition
//! plans." The rewriter here:
//!
//! * applies the Table 2 rules — pushing `getD` through `crElt`/`cat`
//!   (rules 1–7), detecting unsatisfiable paths (rule 4), merging
//!   `getD` chains (rule 10), eliminating `tD`/`mksrc` pairs (rule 11),
//!   introducing joins so selections can be pushed past nested plans
//!   (rules 8–9, Fig. 16→18), and pushing semijoins below grouping
//!   (rule 12, Fig. 20→21);
//! * runs the prose's global steps: selection pushdown, live-variable
//!   analysis with dead-operator elimination, and join→semijoin
//!   conversion (Fig. 19→20);
//! * records every step in a [`RewriteTrace`] so the paper's Fig. 13→22
//!   derivation can be replayed;
//! * finally [`split`]s the plan: the maximal relational fragment
//!   becomes one `rQ` operator carrying generated SQL (Fig. 22), with
//!   an `ORDER BY` on the group-by key columns so the mediator can run
//!   the *stateless* presorted `gBy`.

pub mod driver;
pub mod passes;
pub mod rules;
pub mod sortedness;
pub mod split;
pub mod util;

pub use driver::{
    optimize, rewrite, rewrite_with_disabled, RewriteOutcome, RewriteTrace, TraceStep,
};
pub use sortedness::key_contiguous;
pub use split::{schema_prune, split_plan};
