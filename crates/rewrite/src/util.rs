//! Plan-analysis utilities shared by the rules and passes.

use mix_algebra::{ChildSpec, Op};
use mix_common::Name;
use mix_xml::Step;
use std::collections::HashMap;

/// All children of an operator for rewriting purposes: the tuple
/// inputs plus, for `apply`, the nested plan (last).
pub fn children(op: &Op) -> Vec<&Op> {
    let mut c = op.inputs();
    if let Op::Apply { plan, .. } = op {
        c.push(plan);
    }
    c
}

/// Rebuild `op` with its `n`-th child (in [`children`] order) replaced.
pub fn with_child(op: &Op, n: usize, new: Op) -> Op {
    let mut op = op.clone();
    let boxed = Box::new(new);
    match &mut op {
        Op::MkSrcOver { input, .. }
        | Op::GetD { input, .. }
        | Op::Select { input, .. }
        | Op::Project { input, .. }
        | Op::CrElt { input, .. }
        | Op::Cat { input, .. }
        | Op::TupleDestroy { input, .. }
        | Op::GroupBy { input, .. }
        | Op::OrderBy { input, .. } => {
            assert_eq!(n, 0);
            *input = boxed;
        }
        Op::Apply { input, plan, .. } => match n {
            0 => *input = boxed,
            1 => *plan = boxed,
            _ => panic!("apply has two children"),
        },
        Op::Join { left, right, .. } | Op::SemiJoin { left, right, .. } => match n {
            0 => *left = boxed,
            1 => *right = boxed,
            _ => panic!("join has two children"),
        },
        Op::MkSrc { .. } | Op::NestedSrc { .. } | Op::RelQuery { .. } | Op::Empty { .. } => {
            panic!("leaf operator has no children")
        }
    }
    op
}

/// Variables *bound* (introduced) anywhere in the subtree, including
/// nested plans.
pub fn bound_vars(op: &Op) -> Vec<Name> {
    let mut out = Vec::new();
    collect_bound(op, &mut out);
    out
}

fn collect_bound(op: &Op, out: &mut Vec<Name>) {
    match op {
        Op::MkSrc { var, .. } | Op::MkSrcOver { var, .. } => out.push(var.clone()),
        Op::GetD { to, .. } => out.push(to.clone()),
        Op::CrElt { out: o, .. }
        | Op::Cat { out: o, .. }
        | Op::GroupBy { out: o, .. }
        | Op::Apply { out: o, .. } => out.push(o.clone()),
        Op::RelQuery { map, .. } => out.extend(map.iter().map(|b| b.var.clone())),
        Op::Empty { vars } => out.extend(vars.iter().cloned()),
        _ => {}
    }
    for c in children(op) {
        collect_bound(c, out);
    }
}

/// Variables the operator itself *references* (reads), not counting
/// what its subtree binds.
pub fn referenced_vars(op: &Op) -> Vec<Name> {
    match op {
        Op::GetD { from, .. } => vec![from.clone()],
        Op::Select { cond, .. } => cond.vars(),
        Op::Project { vars, .. } => vars.clone(),
        Op::Join { cond, .. } | Op::SemiJoin { cond, .. } => {
            cond.as_ref().map(|c| c.vars()).unwrap_or_default()
        }
        Op::CrElt {
            group, children, ..
        } => {
            let mut v = group.clone();
            v.push(children.var().clone());
            v
        }
        Op::Cat { left, right, .. } => vec![left.var().clone(), right.var().clone()],
        Op::TupleDestroy { var, .. } => vec![var.clone()],
        Op::GroupBy { group, .. } => group.clone(),
        Op::Apply { param, .. } => param.iter().cloned().collect(),
        Op::OrderBy { vars, .. } => vars.clone(),
        Op::NestedSrc { var } => vec![var.clone()],
        _ => vec![],
    }
}

/// How many times each variable is *referenced* in the plan (binding
/// occurrences not counted). Used e.g. by the getD-chain merge, which
/// may only drop an intermediate variable nothing else reads.
pub fn use_counts(op: &Op) -> HashMap<Name, usize> {
    let mut m = HashMap::new();
    fn walk(op: &Op, m: &mut HashMap<Name, usize>) {
        for v in referenced_vars(op) {
            *m.entry(v).or_insert(0) += 1;
        }
        for c in children(op) {
            walk(c, m);
        }
    }
    walk(op, &mut m);
    m
}

/// What we can statically say about the node a variable is bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelGuess {
    /// An element with exactly this label.
    Known(Name),
    /// A list value (virtual label `list`).
    List,
    /// A text leaf.
    Leaf,
    Unknown,
}

/// Find the operator that binds `var` within `op`'s subtree (including
/// nested plans).
pub fn find_producer<'a>(op: &'a Op, var: &Name) -> Option<&'a Op> {
    let binds = match op {
        Op::MkSrc { var: v, .. } | Op::MkSrcOver { var: v, .. } => v == var,
        Op::GetD { to, .. } => to == var,
        Op::CrElt { out, .. }
        | Op::Cat { out, .. }
        | Op::GroupBy { out, .. }
        | Op::Apply { out, .. } => out == var,
        Op::RelQuery { map, .. } => map.iter().any(|b| &b.var == var),
        _ => false,
    };
    if binds {
        return Some(op);
    }
    children(op).into_iter().find_map(|c| find_producer(c, var))
}

/// Guess the label of the node `var` is bound to, by inspecting its
/// producer inside `scope`.
pub fn var_label(scope: &Op, var: &Name) -> LabelGuess {
    let Some(p) = find_producer(scope, var) else {
        return LabelGuess::Unknown;
    };
    match p {
        Op::CrElt { label, .. } => LabelGuess::Known(label.clone()),
        Op::Cat { .. } | Op::Apply { .. } => LabelGuess::List,
        Op::GetD { path, .. } => match path.steps().last() {
            Some(Step::Label(l)) => LabelGuess::Known(l.clone()),
            Some(Step::Data) => LabelGuess::Leaf,
            _ => LabelGuess::Unknown,
        },
        Op::RelQuery { map, .. } => map
            .iter()
            .find(|b| &b.var == var)
            .map(|b| match &b.kind {
                mix_algebra::RqKind::Element { element, .. }
                | mix_algebra::RqKind::FieldElement { element, .. } => {
                    LabelGuess::Known(element.clone())
                }
                mix_algebra::RqKind::Value { .. } => LabelGuess::Leaf,
            })
            .unwrap_or(LabelGuess::Unknown),
        _ => LabelGuess::Unknown,
    }
}

/// Guess the label of the *elements* of the list `var` is bound to.
pub fn list_elem_label(scope: &Op, var: &Name) -> LabelGuess {
    let Some(p) = find_producer(scope, var) else {
        return LabelGuess::Unknown;
    };
    match p {
        Op::Cat {
            left, right, input, ..
        } => {
            let l = cat_arg_elem_label(input, left);
            let r = cat_arg_elem_label(input, right);
            if l == r {
                l
            } else {
                LabelGuess::Unknown
            }
        }
        Op::Apply { input, plan, .. } => {
            // Elements are the nested tD variable's values; that
            // variable is bound below the apply (through the group
            // partition).
            if let Op::TupleDestroy { var: u, .. } = &**plan {
                var_label(input, u)
            } else {
                LabelGuess::Unknown
            }
        }
        _ => LabelGuess::Unknown,
    }
}

fn cat_arg_elem_label(scope: &Op, arg: &ChildSpec) -> LabelGuess {
    match arg {
        ChildSpec::Single(v) => var_label(scope, v),
        ChildSpec::ListVar(v) => list_elem_label(scope, v),
    }
}

/// Can a path step match a node with this label guess?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Match3 {
    Yes,
    No,
    Maybe,
}

/// Static match test of a step against a label guess.
pub fn step_matches_guess(step: &Step, guess: &LabelGuess) -> Match3 {
    match (step, guess) {
        (Step::Label(l), LabelGuess::Known(k)) => {
            if l == k {
                Match3::Yes
            } else {
                Match3::No
            }
        }
        (Step::Label(l), LabelGuess::List) => {
            if l.as_str() == "list" {
                Match3::Yes
            } else {
                Match3::No
            }
        }
        (Step::Label(_), LabelGuess::Leaf) => Match3::No,
        (Step::Wild, LabelGuess::Leaf) => Match3::No,
        (Step::Wild, LabelGuess::Unknown) => Match3::Maybe,
        (Step::Wild, _) => Match3::Yes,
        (Step::Data, LabelGuess::Leaf) => Match3::Yes,
        (Step::Data, LabelGuess::Unknown) => Match3::Maybe,
        (Step::Data, _) => Match3::No,
        (_, LabelGuess::Unknown) => Match3::Maybe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::translate;
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    fn q1_body() -> Op {
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        match plan.root {
            Op::TupleDestroy { input, .. } => *input,
            _ => unreachable!(),
        }
    }

    #[test]
    fn children_and_with_child_round_trip() {
        let body = q1_body();
        let kids = children(&body);
        assert!(!kids.is_empty());
        let rebuilt = with_child(&body, 0, kids[0].clone());
        assert_eq!(rebuilt, body);
    }

    #[test]
    fn bound_and_use_counts() {
        let body = q1_body();
        let bound = bound_vars(&body);
        for v in ["C", "O", "K", "J", "1", "2", "P", "W", "X", "Z", "V"] {
            assert!(bound.contains(&Name::new(v)), "missing {v} in {bound:?}");
        }
        let uses = use_counts(&body);
        // $C is used by: getD (condition path), gBy group list, crElt
        // skolem args, cat argument.
        assert!(uses[&Name::new("C")] >= 3);
        // $1 and $2 are used only by the join condition.
        assert_eq!(uses[&Name::new("1")], 1);
    }

    #[test]
    fn label_guesses() {
        let body = q1_body();
        assert_eq!(
            var_label(&body, &Name::new("V")),
            LabelGuess::Known(Name::new("CustRec"))
        );
        assert_eq!(
            var_label(&body, &Name::new("P")),
            LabelGuess::Known(Name::new("OrderInfo"))
        );
        assert_eq!(var_label(&body, &Name::new("W")), LabelGuess::List);
        assert_eq!(var_label(&body, &Name::new("1")), LabelGuess::Leaf);
        assert_eq!(
            var_label(&body, &Name::new("C")),
            LabelGuess::Known(Name::new("customer"))
        );
        // $Z collects OrderInfo elements via apply.
        assert_eq!(
            list_elem_label(&body, &Name::new("Z")),
            LabelGuess::Known(Name::new("OrderInfo"))
        );
        // $W = cat(list($C), $Z): customer vs OrderInfo → unknown.
        assert_eq!(list_elem_label(&body, &Name::new("W")), LabelGuess::Unknown);
    }

    #[test]
    fn step_match_logic() {
        use Match3::*;
        let l = |s: &str| Step::Label(Name::new(s));
        assert_eq!(
            step_matches_guess(&l("a"), &LabelGuess::Known(Name::new("a"))),
            Yes
        );
        assert_eq!(
            step_matches_guess(&l("a"), &LabelGuess::Known(Name::new("b"))),
            No
        );
        assert_eq!(step_matches_guess(&l("list"), &LabelGuess::List), Yes);
        assert_eq!(step_matches_guess(&l("x"), &LabelGuess::List), No);
        assert_eq!(step_matches_guess(&Step::Data, &LabelGuess::Leaf), Yes);
        assert_eq!(
            step_matches_guess(&Step::Wild, &LabelGuess::Known(Name::new("a"))),
            Yes
        );
        assert_eq!(step_matches_guess(&l("a"), &LabelGuess::Unknown), Maybe);
    }
}
