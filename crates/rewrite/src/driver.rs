//! The rewrite driver: applies local rules and global passes to a
//! fixpoint, recording a replayable trace (the Figs. 13→22 derivation).

use crate::passes::{dead_elimination, join_to_semijoin};
use crate::rules::{try_rules, Applied, RuleCtx};
use crate::util::{children, use_counts, with_child};
use mix_algebra::plan::{all_vars, rename_var};
use mix_algebra::{Op, Plan};
use mix_wrapper::Catalog;

/// One recorded rewrite step.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The rule or pass that fired.
    pub rule: String,
    /// The whole plan after the step (paper-figure rendering).
    pub plan: String,
}

/// The full derivation.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    pub steps: Vec<TraceStep>,
}

impl RewriteTrace {
    /// Names of the rules applied, in order.
    pub fn rule_sequence(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.rule.as_str()).collect()
    }

    /// Render the whole derivation (one figure per step).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "--- step {} ({}) ---\n{}\n",
                i + 1,
                s.rule,
                s.plan
            ));
        }
        out
    }
}

/// A rewritten plan plus its derivation.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    pub plan: Plan,
    pub trace: RewriteTrace,
}

/// Safety cap on rewrite steps (each step strictly simplifies or pushes
/// work downward; the cap only guards against rule-interaction bugs).
const MAX_STEPS: usize = 500;

/// Run the Table 2 rules plus the global passes (selection pushdown is
/// a local rule; live-variable/dead-operator elimination and
/// join→semijoin conversion are whole-plan passes) to a fixpoint.
pub fn rewrite(plan: &Plan) -> RewriteOutcome {
    rewrite_with_disabled(plan, &[])
}

/// [`rewrite`] with the named rules disabled — the hook the ablation
/// experiments (E8) use to measure what a rule buys.
pub fn rewrite_with_disabled(plan: &Plan, disabled: &[&str]) -> RewriteOutcome {
    let mut plan = plan.clone();
    let mut trace = RewriteTrace::default();
    for _ in 0..MAX_STEPS {
        // Plan-level ⊥: a tD over the empty plan stays a tD over the
        // canonical empty — the tD is what carries the result-root
        // document name, and dropping it would re-root the (empty)
        // answer under a default name, diverging from the naive plan.
        if let Op::TupleDestroy { input, var, root } = &plan.root {
            if let Op::Empty { vars } = &**input {
                if vars.as_slice() != std::slice::from_ref(var) {
                    plan = Plan::new(Op::TupleDestroy {
                        input: Box::new(Op::Empty {
                            vars: vec![var.clone()],
                        }),
                        var: var.clone(),
                        root: root.clone(),
                    });
                    trace.steps.push(TraceStep {
                        rule: "empty-propagation".into(),
                        plan: plan.render(),
                    });
                    continue;
                }
            }
        }
        let counts = use_counts(&plan.root);
        let vars = all_vars(&plan.root);
        let ctx = RuleCtx {
            use_counts: &counts,
            all_vars: &vars,
            disabled,
        };
        if let Some(applied) = rewrite_first(&plan.root, &ctx) {
            let mut root = applied.op;
            for (from, to) in &applied.renames {
                root = rename_var(&root, from, to);
            }
            plan = Plan::new(root);
            trace.steps.push(TraceStep {
                rule: applied.rule.to_string(),
                plan: plan.render(),
            });
            continue;
        }
        if let Some(p2) = dead_elimination(&plan) {
            plan = p2;
            trace.steps.push(TraceStep {
                rule: "dead-elimination".into(),
                plan: plan.render(),
            });
            continue;
        }
        if let Some(p2) = join_to_semijoin(&plan) {
            plan = p2;
            trace.steps.push(TraceStep {
                rule: "join-to-semijoin".into(),
                plan: plan.render(),
            });
            continue;
        }
        break;
    }
    RewriteOutcome { plan, trace }
}

/// Rewrite + split: the full composition-optimization pipeline
/// (Section 6), ending with the maximal relational fragments pushed
/// into `rQ` operators (Fig. 22).
pub fn optimize(plan: &Plan, catalog: &Catalog) -> RewriteOutcome {
    let mut out = rewrite(plan);
    // Schema-aware pruning (the paper's suggested source-schema rules):
    // may expose further simplification, so interleave with rewriting.
    while let Some(pruned) = crate::split::schema_prune(&out.plan, catalog) {
        out.trace.steps.push(TraceStep {
            rule: "schema-prune".into(),
            plan: pruned.render(),
        });
        let again = rewrite(&pruned);
        out.trace.steps.extend(again.trace.steps);
        out.plan = again.plan;
    }
    let split = crate::split::split_plan(&out.plan, catalog);
    if split != out.plan {
        out.trace.steps.push(TraceStep {
            rule: "split-to-sql".into(),
            plan: split.render(),
        });
        out.plan = split;
    }
    out
}

/// Find and apply the first (pre-order) rule match in the subtree.
fn rewrite_first(op: &Op, ctx: &RuleCtx) -> Option<Applied> {
    if let Some(a) = try_rules(op, ctx) {
        return Some(a);
    }
    let kids = children(op);
    for (i, kid) in kids.iter().enumerate() {
        if let Some(a) = rewrite_first(kid, ctx) {
            return Some(Applied {
                rule: a.rule,
                op: with_child(op, i, a.op),
                renames: a.renames,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{translate, validate};
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    /// Fig. 12's query against the Q1 view, naively composed (Fig. 13).
    pub(super) fn fig13_for_fig22() -> Plan {
        fig13_plan()
    }

    fn fig13_plan() -> Plan {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        let query = parse_query(
            "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
             WHERE $S/order/value > 20000 RETURN $R",
        )
        .unwrap();
        let qplan = translate(&query).unwrap();
        // Splice: replace mksrc(rootv, $v) with mksrc-over-view.
        fn splice(op: &Op, view: &Plan) -> Op {
            match op {
                Op::MkSrc { source, var } if source.as_str() == "rootv" => Op::MkSrcOver {
                    input: Box::new(view.root.clone()),
                    var: var.clone(),
                },
                other => {
                    let kids = crate::util::children(other);
                    let mut out = other.clone();
                    for (i, k) in kids.iter().enumerate() {
                        out = crate::util::with_child(&out, i, splice(k, view));
                    }
                    out
                }
            }
        }
        // Alpha-rename the view to avoid clashes with query vars.
        let qvars = mix_algebra::plan::all_vars(&qplan.root);
        let mut view_renamed = view.root.clone();
        let mut taken = qvars.clone();
        taken.extend(mix_algebra::plan::all_vars(&view.root));
        for v in mix_algebra::plan::all_vars(&view.root) {
            if qvars.contains(&v) {
                let fresh = mix_algebra::plan::fresh_var(&format!("{v}v"), &taken);
                taken.push(fresh.clone());
                view_renamed = rename_var(&view_renamed, &v, &fresh);
            }
        }
        Plan::new(splice(&qplan.root, &Plan::new(view_renamed)))
    }

    #[test]
    fn fig13_to_fig21_derivation() {
        let naive = fig13_plan();
        validate(&naive).unwrap();
        let out = rewrite(&naive);
        validate(&out.plan)
            .unwrap_or_else(|e| panic!("rewritten plan invalid: {e}\n{}", out.plan.render()));
        let rules = out.trace.rule_sequence();
        // The derivation exercises the headline rules of Table 2.
        for expected in [
            "R11-td-mksrc",
            "R2-getd-crelt-exact",
            "R1-getd-crelt-push",
            "R5-getd-cat-push",
            "R9-join-introduction",
            "R10-chain-merge",
            "R3-getd-crelt-single",
            "select-pushdown",
            "join-to-semijoin",
            "R12-semijoin-below-group",
            "dead-elimination",
        ] {
            assert!(
                rules.contains(&expected),
                "expected {expected} in derivation; got {rules:?}\n{}",
                out.trace.render()
            );
        }
        let text = out.plan.render();
        // Fig. 21 shape: semijoin pushed below the grouping, selection
        // down at the source branch.
        assert!(
            text.contains("Lsemijoin") || text.contains("Rsemijoin"),
            "{text}"
        );
        assert!(
            text.contains("select($3 > 20000)") || text.contains("> 20000"),
            "{text}"
        );
        // The re-grouping machinery survives for the result shape.
        assert!(text.contains("gBy"), "{text}");
        assert!(text.contains("crElt(CustRec"), "{text}");
    }

    #[test]
    fn rewrite_is_idempotent_at_fixpoint() {
        let naive = fig13_plan();
        let once = rewrite(&naive);
        let twice = rewrite(&once.plan);
        assert!(twice.trace.steps.is_empty(), "{}", twice.trace.render());
        assert_eq!(once.plan, twice.plan);
    }

    #[test]
    fn unsatisfiable_composition_collapses() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        // Query a label the view never constructs.
        let q = parse_query("FOR $R in document(rootv)/Nothing WHERE $R/x > 1 RETURN $R").unwrap();
        let qplan = translate(&q).unwrap();
        let naive = {
            let Op::TupleDestroy { input, var, root } = qplan.root else {
                panic!()
            };
            // splice manually
            fn splice(op: &Op, view: &Plan) -> Op {
                match op {
                    Op::MkSrc { source, var } if source.as_str() == "rootv" => Op::MkSrcOver {
                        input: Box::new(view.root.clone()),
                        var: var.clone(),
                    },
                    other => {
                        let kids = crate::util::children(other);
                        let mut out = other.clone();
                        for (i, k) in kids.iter().enumerate() {
                            out = crate::util::with_child(&out, i, splice(k, view));
                        }
                        out
                    }
                }
            }
            // rename view vars (R,S,K don't collide except K/J/W/V/X/Z/C/O...)
            let mut vr = view.root.clone();
            let qvars = mix_algebra::plan::all_vars(&input);
            let mut taken = qvars.clone();
            taken.extend(mix_algebra::plan::all_vars(&view.root));
            for v in mix_algebra::plan::all_vars(&view.root) {
                if qvars.contains(&v) {
                    let fresh = mix_algebra::plan::fresh_var(&format!("{v}v"), &taken);
                    taken.push(fresh.clone());
                    vr = rename_var(&vr, &v, &fresh);
                }
            }
            Plan::new(Op::TupleDestroy {
                input: Box::new(splice(&input, &Plan::new(vr))),
                var,
                root,
            })
        };
        let out = rewrite(&naive);
        // The plan collapses to tD over empty: the tD survives because
        // it carries the result-root document name.
        assert!(
            matches!(
                &out.plan.root,
                Op::TupleDestroy { input, .. } if matches!(&**input, Op::Empty { .. })
            ),
            "expected tD(empty) plan:\n{}",
            out.plan.render()
        );
        assert!(out.trace.rule_sequence().contains(&"R4-unsatisfiable"));
    }
}

#[cfg(test)]
mod fig22_tests {
    use super::*;
    use mix_wrapper::fig2_catalog;

    #[test]
    fn fig22_single_pushed_sql_query() {
        // The complete Section 6 pipeline on the Fig. 13 naive
        // composition: rewrite + split must produce ONE rQ carrying a
        // four-table self-join with DISTINCT and the presorted-gBy
        // ORDER BY — the Fig. 22 outcome.
        let naive = super::tests::fig13_for_fig22();
        let (cat, _db) = fig2_catalog();
        let out = optimize(&naive, &cat);
        mix_algebra::validate(&out.plan)
            .unwrap_or_else(|e| panic!("invalid: {e}\n{}", out.plan.render()));
        let text = out.plan.render();
        assert_eq!(text.matches("rQ(").count(), 1, "{text}");
        assert!(text.contains("SELECT DISTINCT"), "{text}");
        // Four-table self-join: customer twice, orders twice.
        assert_eq!(text.matches("customer c").count(), 2, "{text}");
        assert_eq!(text.matches("orders o").count(), 2, "{text}");
        assert!(text.contains("> 20000"), "{text}");
        // ORDER BY the (kept) customer key, then the order key — the
        // presorted-gBy support of Fig. 22 (aliases may differ from the
        // paper's c1/o1).
        assert!(text.contains("ORDER BY c2.id, o2.orid"), "{text}");
        assert!(text.contains("c1.id = c2.id"), "{text}");
        // Mediator part keeps restructuring/grouping only.
        assert!(text.contains("crElt(CustRec"), "{text}");
        assert!(text.contains("gBy("), "{text}");
        assert!(!text.contains("mksrc"), "{text}");
    }
}
