//! The local rewrite rules (Table 2).
//!
//! Each rule matches a small operator pattern and returns the rewritten
//! subtree, possibly with *global* variable renamings (aliasing rules 2
//! and 11 merge two variables; the driver applies the renaming to the
//! whole plan). Rule numbering follows DESIGN.md's reconstruction of
//! the paper's Table 2.

use crate::util::{bound_vars, list_elem_label, step_matches_guess, var_label, Match3};
use mix_algebra::plan::{fresh_var, rename_var};
use mix_algebra::{ChildSpec, Cond, Op, Side};
use mix_common::Name;
use mix_xml::Step;
use std::collections::HashMap;

/// Context the rules may consult.
pub struct RuleCtx<'a> {
    /// Reference counts of every variable in the whole plan.
    pub use_counts: &'a HashMap<Name, usize>,
    /// Every variable name present in the whole plan (for freshness).
    pub all_vars: &'a [Name],
    /// Rule names disabled for this run (ablation experiments).
    pub disabled: &'a [&'a str],
}

/// A successful rule application.
pub struct Applied {
    pub rule: &'static str,
    pub op: Op,
    /// Global renamings `(from, to)` the driver must apply.
    pub renames: Vec<(Name, Name)>,
}

/// Try every rule at this node (not recursing); first match wins.
/// Rules whose name appears in `ctx.disabled` are skipped (ablation).
pub fn try_rules(op: &Op, ctx: &RuleCtx) -> Option<Applied> {
    let keep = |a: Option<Applied>| a.filter(|x| !ctx.disabled.contains(&x.rule));
    keep(empty_propagation(op))
        .or_else(|| keep(r11_td_mksrc(op)))
        .or_else(|| keep(getd_over_crelt(op)))
        .or_else(|| keep(getd_over_cat(op)))
        .or_else(|| keep(r10_chain_merge(op, ctx)))
        .or_else(|| keep(r12_semijoin_below(op)))
        .or_else(|| keep(select_pushdown(op)))
        .or_else(|| keep(getd_pushdown(op)))
        .or_else(|| keep(r9_join_introduction(op, ctx)))
}

fn applied(rule: &'static str, op: Op) -> Option<Applied> {
    Some(Applied {
        rule,
        op,
        renames: vec![],
    })
}

/// ⊥-propagation: an operator over the empty plan is empty (rule 4's
/// aftermath).
fn empty_propagation(op: &Op) -> Option<Applied> {
    let is_empty = |o: &Op| matches!(o, Op::Empty { .. });
    let make_empty = |op: &Op| Op::Empty {
        vars: bound_vars(op),
    };
    match op {
        Op::GetD { input, .. }
        | Op::Select { input, .. }
        | Op::Project { input, .. }
        | Op::CrElt { input, .. }
        | Op::Cat { input, .. }
        | Op::GroupBy { input, .. }
        | Op::Apply { input, .. }
        | Op::OrderBy { input, .. }
        | Op::MkSrcOver { input, .. }
            if is_empty(input) =>
        {
            applied("empty-propagation", make_empty(op))
        }
        Op::Join { left, right, .. } if is_empty(left) || is_empty(right) => {
            applied("empty-propagation", make_empty(op))
        }
        // A semijoin against an empty side filters everything out; an
        // empty kept side is empty anyway.
        Op::SemiJoin { left, right, .. } if is_empty(left) || is_empty(right) => {
            applied("empty-propagation", make_empty(op))
        }
        _ => None,
    }
}

/// Rule 11: `mksrc` over the view's `tD` — splice the view body in and
/// merge the query's source variable with the view's result variable
/// (Fig. 13→14).
fn r11_td_mksrc(op: &Op) -> Option<Applied> {
    let Op::MkSrcOver { input, var } = op else {
        return None;
    };
    match &**input {
        Op::TupleDestroy {
            input: body,
            var: v1,
            ..
        } => Some(Applied {
            rule: "R11-td-mksrc",
            op: (**body).clone(),
            renames: vec![(var.clone(), v1.clone())],
        }),
        Op::Empty { .. } => Some(Applied {
            rule: "R11-td-mksrc",
            op: Op::Empty {
                vars: vec![var.clone()],
            },
            renames: vec![],
        }),
        _ => None,
    }
}

/// Rules 1–4: `getD` whose start variable is produced by a `crElt`
/// directly below.
fn getd_over_crelt(op: &Op) -> Option<Applied> {
    let Op::GetD {
        input,
        from,
        path,
        to,
    } = op
    else {
        return None;
    };
    let Op::CrElt {
        input: celt_in,
        label,
        children,
        out,
        ..
    } = &**input
    else {
        return None;
    };
    if from != out {
        return None;
    }
    // Rule 4: the path's first label cannot match the constructed label.
    if !path.first_matches_label(label) {
        return Some(Applied {
            rule: "R4-unsatisfiable",
            op: Op::Empty {
                vars: bound_vars(op),
            },
            renames: vec![],
        });
    }
    match path.rest() {
        // Rule 2: exact match — the getD target *is* the constructed
        // element; alias the variables.
        None => Some(Applied {
            rule: "R2-getd-crelt-exact",
            op: (**input).clone(),
            renames: vec![(to.clone(), out.clone())],
        }),
        Some(q) => {
            // Rules 1/3: push below the crElt, addressing its children.
            let (new_from, new_path) = match children {
                ChildSpec::ListVar(w) => (w.clone(), q.prepend(Step::Label(Name::new("list")))),
                ChildSpec::Single(w) => (w.clone(), q),
            };
            let rule = match children {
                ChildSpec::ListVar(_) => "R1-getd-crelt-push",
                ChildSpec::Single(_) => "R3-getd-crelt-single",
            };
            let new_getd = Op::GetD {
                input: celt_in.clone(),
                from: new_from,
                path: new_path,
                to: to.clone(),
            };
            let mut crelt = (**input).clone();
            if let Op::CrElt { input: i, .. } = &mut crelt {
                **i = new_getd;
            }
            applied(rule, crelt)
        }
    }
}

/// Rules 5–7: `getD` over a `cat` — push into the branch whose elements
/// can match (label-directed), or collapse to ⊥ when neither can.
fn getd_over_cat(op: &Op) -> Option<Applied> {
    let Op::GetD {
        input,
        from,
        path,
        to,
    } = op
    else {
        return None;
    };
    let Op::Cat {
        input: cat_in,
        left,
        right,
        out,
    } = &**input
    else {
        return None;
    };
    if from != out {
        return None;
    }
    // The cat output is a list node: the first step must match `list`.
    match path.first() {
        Step::Label(l) if l.as_str() == "list" => {}
        Step::Wild => {}
        _ => {
            return Some(Applied {
                rule: "R4-unsatisfiable",
                op: Op::Empty {
                    vars: bound_vars(op),
                },
                renames: vec![],
            })
        }
    }
    let q = path.rest()?; // `getD($V.list, $X)` (bind the list itself) — leave alone
    let assess = |arg: &ChildSpec| -> Match3 {
        let guess = match arg {
            ChildSpec::Single(v) => var_label(cat_in, v),
            ChildSpec::ListVar(v) => list_elem_label(cat_in, v),
        };
        step_matches_guess(q.first(), &guess)
    };
    let (ml, mr) = (assess(left), assess(right));
    let push = |arg: &ChildSpec| -> Op {
        let (new_from, new_path) = match arg {
            ChildSpec::Single(v) => (v.clone(), q.clone()),
            ChildSpec::ListVar(v) => (v.clone(), q.prepend(Step::Label(Name::new("list")))),
        };
        let new_getd = Op::GetD {
            input: cat_in.clone(),
            from: new_from,
            path: new_path,
            to: to.clone(),
        };
        let mut cat = (**input).clone();
        if let Op::Cat { input: i, .. } = &mut cat {
            **i = new_getd;
        }
        cat
    };
    match (ml, mr) {
        (Match3::No, Match3::No) => Some(Applied {
            rule: "R4-unsatisfiable",
            op: Op::Empty {
                vars: bound_vars(op),
            },
            renames: vec![],
        }),
        (Match3::No, _) => applied("R5-getd-cat-push", push(right)),
        (_, Match3::No) => applied("R5-getd-cat-push", push(left)),
        // Both branches might match: no safe single-branch push.
        _ => None,
    }
}

/// Rule 10: merge `getD` chains over an intermediate variable nothing
/// else references.
fn r10_chain_merge(op: &Op, ctx: &RuleCtx) -> Option<Applied> {
    let Op::GetD {
        input,
        from,
        path: q,
        to,
    } = op
    else {
        return None;
    };
    let Op::GetD {
        input: inner_in,
        from: a,
        path: p,
        to: b,
    } = &**input
    else {
        return None;
    };
    if from != b || ctx.use_counts.get(b).copied().unwrap_or(0) != 1 {
        return None;
    }
    let joined = p.join(q)?;
    applied(
        "R10-chain-merge",
        Op::GetD {
            input: inner_in.clone(),
            from: a.clone(),
            path: joined,
            to: to.clone(),
        },
    )
}

/// Rule 9: a `getD` into the collected list of an `apply` over a
/// `groupBy` cannot be pushed further — introduce a join against a
/// fresh copy of the pre-grouping subplan so the path (and later the
/// selections on it) can be evaluated per *tuple* without destroying
/// the grouped result (Fig. 16→18).
fn r9_join_introduction(op: &Op, ctx: &RuleCtx) -> Option<Applied> {
    let Op::GetD {
        input,
        from,
        path,
        to,
    } = op
    else {
        return None;
    };
    let Op::Apply {
        input: apply_in,
        plan,
        param,
        out,
    } = &**input
    else {
        return None;
    };
    if from != out {
        return None;
    }
    let Op::GroupBy {
        input: p1,
        group,
        out: part,
    } = &**apply_in
    else {
        return None;
    };
    // Only the pure-collection nested plan shape (what the translator
    // emits): tD($u) over nestedSrc(partition).
    let Op::TupleDestroy {
        input: nsrc,
        var: u,
        ..
    } = &**plan
    else {
        return None;
    };
    let Op::NestedSrc { var: nvar } = &**nsrc else {
        return None;
    };
    if param.as_ref() != Some(part) || nvar != part {
        return None;
    }
    // Single grouping variable (a join condition per variable would be
    // needed otherwise; the paper's example — and our translator's
    // output for it — uses one).
    let [g] = group.as_slice() else { return None };
    // The path addresses elements of the collected list.
    match path.first() {
        Step::Label(l) if l.as_str() == "list" => {}
        Step::Wild => {}
        _ => return None,
    }
    let q = path.rest()?;
    // Fresh-rename a copy of the pre-grouping subplan.
    let mut copy = (**p1).clone();
    let mut taken: Vec<Name> = ctx.all_vars.to_vec();
    let mut copy_of: HashMap<Name, Name> = HashMap::new();
    for v in bound_vars(p1) {
        if copy_of.contains_key(&v) {
            continue;
        }
        let fresh = fresh_var(&format!("{v}_c"), &taken);
        taken.push(fresh.clone());
        copy = rename_var(&copy, &v, &fresh);
        copy_of.insert(v, fresh);
    }
    let u_copy = copy_of.get(u)?.clone();
    let g_copy = copy_of.get(g)?.clone();
    let left = Op::GetD {
        input: Box::new(copy),
        from: u_copy,
        path: q,
        to: to.clone(),
    };
    applied(
        "R9-join-introduction",
        Op::Join {
            left: Box::new(left),
            right: input.clone(),
            cond: Some(Cond::OidCmp {
                l: g_copy,
                r: g.clone(),
            }),
        },
    )
}

/// Rule 12 (+ the prose's semijoin pushdown): move a semijoin below
/// grouping, collection, and per-tuple construction so it reaches the
/// source (Fig. 20→21). Also simplifies the *filter* (non-kept) side:
/// existence against a grouped stream equals existence against its
/// ungrouped input when the condition only reads group variables, so
/// the grouping machinery there is dropped.
fn r12_semijoin_below(op: &Op) -> Option<Applied> {
    let Op::SemiJoin {
        left,
        right,
        cond,
        keep,
    } = op
    else {
        return None;
    };
    // Simplify the filter side first: apply/gBy layers contribute
    // nothing to an existence check on group variables.
    let cond_vars_all = cond.as_ref().map(|c| c.vars()).unwrap_or_default();
    let filter_side = match keep {
        Side::Left => right,
        Side::Right => left,
    };
    match &**filter_side {
        Op::Apply { input, out, .. } if !cond_vars_all.contains(out) => {
            let mut new = op.clone();
            if let Op::SemiJoin { left, right, .. } = &mut new {
                match keep {
                    Side::Left => *right = input.clone(),
                    Side::Right => *left = input.clone(),
                }
            }
            return applied("R12-semijoin-below-group", new);
        }
        Op::GroupBy { input, group, out }
            if !cond_vars_all.contains(out)
                && cond_vars_all
                    .iter()
                    .all(|v| group.contains(v) || !bound_vars(filter_side).contains(v)) =>
        {
            let mut new = op.clone();
            if let Op::SemiJoin { left, right, .. } = &mut new {
                match keep {
                    Side::Left => *right = input.clone(),
                    Side::Right => *left = input.clone(),
                }
            }
            return applied("R12-semijoin-below-group", new);
        }
        _ => {}
    }
    // Normalize to the kept-side subtree we want to push into.
    let (filter, target, keep) = match keep {
        Side::Right => (left, right, Side::Right),
        Side::Left => (right, left, Side::Left),
    };
    let cond_vars = cond.as_ref().map(|c| c.vars()).unwrap_or_default();
    let rebuild = |inner: Op, outer: &Op| -> Op {
        // outer with its input replaced by the pushed semijoin
        crate::util::with_child(outer, 0, inner)
    };
    let mk_semijoin = |target_input: &Op| -> Op {
        match keep {
            Side::Right => Op::SemiJoin {
                left: filter.clone(),
                right: Box::new(target_input.clone()),
                cond: cond.clone(),
                keep,
            },
            Side::Left => Op::SemiJoin {
                left: Box::new(target_input.clone()),
                right: filter.clone(),
                cond: cond.clone(),
                keep,
            },
        }
    };
    match &**target {
        // Below apply: sound when the condition ignores the collected
        // output.
        Op::Apply { input, out, .. } if !cond_vars.contains(out) => applied(
            "R12-semijoin-below-group",
            rebuild(mk_semijoin(input), target),
        ),
        // Below groupBy: sound when the kept-side condition variables
        // are group variables (whole groups pass or fail together).
        Op::GroupBy { input, group, out } => {
            let kept_ok = cond_vars
                .iter()
                .all(|v| group.contains(v) || !bound_vars(target).contains(v));
            if cond_vars.contains(out) || !kept_ok {
                return None;
            }
            applied(
                "R12-semijoin-below-group",
                rebuild(mk_semijoin(input), target),
            )
        }
        // Below per-tuple construction (crElt/cat) and below getD
        // (filtering before expansion): sound when the condition does
        // not reference the operator's output.
        Op::CrElt { input, out, .. }
        | Op::Cat { input, out, .. }
        | Op::GetD { input, to: out, .. }
            if !cond_vars.contains(out) =>
        {
            applied(
                "R12-semijoin-below-group",
                rebuild(mk_semijoin(input), target),
            )
        }
        _ => None,
    }
}

/// Selection pushdown (Section 6 prose: "pushing selections down").
fn select_pushdown(op: &Op) -> Option<Applied> {
    let Op::Select { input, cond } = op else {
        return None;
    };
    let cond_vars = cond.vars();
    let push_into = |inner: &Op| Op::Select {
        input: Box::new(inner.clone()),
        cond: cond.clone(),
    };
    match &**input {
        Op::GetD { input: i, to, .. } if !cond_vars.contains(to) => applied(
            "select-pushdown",
            crate::util::with_child(input, 0, push_into(i)),
        ),
        Op::CrElt { input: i, out, .. }
        | Op::Cat { input: i, out, .. }
        | Op::Apply { input: i, out, .. }
            if !cond_vars.contains(out) =>
        {
            applied(
                "select-pushdown",
                crate::util::with_child(input, 0, push_into(i)),
            )
        }
        Op::OrderBy { input: i, .. } => applied(
            "select-pushdown",
            crate::util::with_child(input, 0, push_into(i)),
        ),
        Op::GroupBy {
            input: i,
            group,
            out,
        } => {
            if cond_vars.contains(out) || !cond_vars.iter().all(|v| group.contains(v)) {
                return None;
            }
            applied(
                "select-pushdown",
                crate::util::with_child(input, 0, push_into(i)),
            )
        }
        Op::Join { left, right, .. } => {
            let (lb, rb) = (bound_vars(left), bound_vars(right));
            if cond_vars.iter().all(|v| lb.contains(v)) {
                applied(
                    "select-pushdown",
                    crate::util::with_child(input, 0, push_into(left)),
                )
            } else if cond_vars.iter().all(|v| rb.contains(v)) {
                applied(
                    "select-pushdown",
                    crate::util::with_child(input, 1, push_into(right)),
                )
            } else {
                None
            }
        }
        Op::SemiJoin {
            left, right, keep, ..
        } => {
            let (kept_idx, kept): (usize, &Op) = match keep {
                Side::Left => (0, left),
                Side::Right => (1, right),
            };
            if cond_vars.iter().all(|v| bound_vars(kept).contains(v)) {
                applied(
                    "select-pushdown",
                    crate::util::with_child(input, kept_idx, push_into(kept)),
                )
            } else {
                None
            }
        }
        _ => None,
    }
}

/// `getD` pushdown through constructive operators and into join
/// branches, so path navigation lands next to the operators that bind
/// its start variable.
fn getd_pushdown(op: &Op) -> Option<Applied> {
    let Op::GetD {
        input,
        from,
        path,
        to,
    } = op
    else {
        return None;
    };
    let push_into = |inner: &Op| Op::GetD {
        input: Box::new(inner.clone()),
        from: from.clone(),
        path: path.clone(),
        to: to.clone(),
    };
    match &**input {
        Op::CrElt { input: i, out, .. }
        | Op::Cat { input: i, out, .. }
        | Op::Apply { input: i, out, .. }
            if from != out =>
        {
            applied(
                "getd-pushdown",
                crate::util::with_child(input, 0, push_into(i)),
            )
        }
        Op::Join { left, right, .. } => {
            if bound_vars(left).contains(from) {
                applied(
                    "getd-pushdown",
                    crate::util::with_child(input, 0, push_into(left)),
                )
            } else if bound_vars(right).contains(from) {
                applied(
                    "getd-pushdown",
                    crate::util::with_child(input, 1, push_into(right)),
                )
            } else {
                None
            }
        }
        Op::SemiJoin {
            left, right, keep, ..
        } => {
            let (kept_idx, kept): (usize, &Op) = match keep {
                Side::Left => (0, left),
                Side::Right => (1, right),
            };
            if bound_vars(kept).contains(from) {
                applied(
                    "getd-pushdown",
                    crate::util::with_child(input, kept_idx, push_into(kept)),
                )
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::Plan;
    use mix_xml::LabelPath;

    fn ctx_for<'a>(counts: &'a HashMap<Name, usize>, vars: &'a [Name]) -> RuleCtx<'a> {
        RuleCtx {
            use_counts: counts,
            all_vars: vars,
            disabled: &[],
        }
    }

    fn mk(source: &str, var: &str) -> Op {
        Op::MkSrc {
            source: Name::new(source),
            var: Name::new(var),
        }
    }

    fn getd(input: Op, from: &str, path: &str, to: &str) -> Op {
        Op::GetD {
            input: Box::new(input),
            from: Name::new(from),
            path: LabelPath::parse(path).unwrap(),
            to: Name::new(to),
        }
    }

    fn crelt(input: Op, label: &str, group: &[&str], children: ChildSpec, out: &str) -> Op {
        Op::CrElt {
            input: Box::new(input),
            label: Name::new(label),
            skolem: Name::new("f"),
            group: group.iter().map(Name::new).collect(),
            children,
            tag: Name::new(out),
            out: Name::new(out),
        }
    }

    #[test]
    fn rule2_exact_match_aliases() {
        let base = crelt(
            mk("r", "A"),
            "rec",
            &["A"],
            ChildSpec::Single(Name::new("A")),
            "Z",
        );
        let plan = getd(base.clone(), "Z", "rec", "X");
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R2-getd-crelt-exact");
        assert_eq!(a.op, base);
        assert_eq!(a.renames, vec![(Name::new("X"), Name::new("Z"))]);
    }

    #[test]
    fn rule1_pushes_below_crelt_list() {
        let base = crelt(
            mk("r", "W"),
            "rec",
            &[],
            ChildSpec::ListVar(Name::new("W")),
            "Z",
        );
        let plan = getd(base, "Z", "rec.item.data()", "X");
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R1-getd-crelt-push");
        let text = Plan::new(a.op).render();
        assert!(text.contains("getD($W.list.item.data(), $X)"), "{text}");
        // crElt stays on top
        assert!(text.starts_with("crElt(rec"), "{text}");
    }

    #[test]
    fn rule3_pushes_below_crelt_single() {
        let base = crelt(
            mk("r", "O"),
            "OrderInfo",
            &["O"],
            ChildSpec::Single(Name::new("O")),
            "P",
        );
        let plan = getd(base, "P", "OrderInfo.order.value", "3");
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R3-getd-crelt-single");
        let text = Plan::new(a.op).render();
        assert!(text.contains("getD($O.order.value, $3)"), "{text}");
    }

    #[test]
    fn rule4_unsatisfiable_path() {
        let base = crelt(
            mk("r", "A"),
            "rec",
            &[],
            ChildSpec::Single(Name::new("A")),
            "Z",
        );
        let plan = getd(base, "Z", "other.x", "X");
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R4-unsatisfiable");
        assert!(matches!(a.op, Op::Empty { .. }));
    }

    #[test]
    fn rule10_merges_chains_only_when_dead() {
        let inner = getd(mk("r", "A"), "A", "custRec", "R");
        let plan = getd(inner.clone(), "R", "custRec.orderInfo", "S");
        let mut counts = HashMap::new();
        counts.insert(Name::new("R"), 1);
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R10-chain-merge");
        let text = Plan::new(a.op).render();
        assert!(text.contains("getD($A.custRec.orderInfo, $S)"), "{text}");
        // With another use of $R the merge must not fire.
        let plan2 = getd(inner, "R", "custRec.orderInfo", "S");
        counts.insert(Name::new("R"), 2);
        assert!(try_rules(&plan2, &ctx_for(&counts, &[])).is_none());
    }

    #[test]
    fn rule11_splices_views() {
        let view_body = getd(mk("root1", "K"), "K", "customer", "C");
        let view = Op::TupleDestroy {
            input: Box::new(view_body.clone()),
            var: Name::new("C"),
            root: Some(Name::new("rootv")),
        };
        let plan = Op::MkSrcOver {
            input: Box::new(view),
            var: Name::new("A"),
        };
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "R11-td-mksrc");
        assert_eq!(a.op, view_body);
        assert_eq!(a.renames, vec![(Name::new("A"), Name::new("C"))]);
    }

    #[test]
    fn empty_propagates() {
        let plan = Op::Select {
            input: Box::new(Op::Empty {
                vars: vec![Name::new("X")],
            }),
            cond: Cond::cmp_const("X", mix_common::CmpOp::Eq, 1),
        };
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "empty-propagation");
        assert!(matches!(a.op, Op::Empty { .. }));
    }

    #[test]
    fn select_pushes_below_crelt_and_into_join_branch() {
        let join = Op::Join {
            left: Box::new(getd(mk("r1", "A"), "A", "a.x.data()", "1")),
            right: Box::new(mk("r2", "B")),
            cond: None,
        };
        let celt = crelt(join, "rec", &[], ChildSpec::Single(Name::new("A")), "V");
        let plan = Op::Select {
            input: Box::new(celt),
            cond: Cond::cmp_const("1", mix_common::CmpOp::Gt, 5),
        };
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "select-pushdown");
        // One more application reaches the join's left branch.
        let Op::CrElt { input, .. } = &a.op else {
            panic!()
        };
        let b = try_rules(input, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(b.rule, "select-pushdown");
        let text = Plan::new(b.op).render();
        assert!(text.lines().nth(1).unwrap().contains("select"), "{text}");
    }

    #[test]
    fn getd_pushes_through_construction() {
        let celt = crelt(
            getd(mk("r1", "A"), "A", "a", "S"),
            "rec",
            &[],
            ChildSpec::Single(Name::new("A")),
            "V",
        );
        let plan = getd(celt, "S", "a.x", "N");
        let counts = HashMap::new();
        let a = try_rules(&plan, &ctx_for(&counts, &[])).unwrap();
        assert_eq!(a.rule, "getd-pushdown");
        let text = Plan::new(a.op).render();
        assert!(text.starts_with("crElt(rec"), "{text}");
        assert!(text.contains("getD($S.a.x, $N)"), "{text}");
    }
}
