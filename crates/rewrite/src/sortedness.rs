//! Key-contiguity (sortedness) analysis for `groupBy` inputs.
//!
//! Table 1's stateless presorted `gBy` is only correct when tuples
//! with equal group keys arrive *contiguously*. The rewriter arranges
//! that for pushed-down plans (the generated SQL gets an `ORDER BY` on
//! the group variables' key columns), and navigation plans inherit it
//! from the left-major join order — but neither is guaranteed for an
//! arbitrary plan. [`key_contiguous`] is the conservative static proof
//! the engine's `GByMode::Auto` consults: `true` means equal keys are
//! provably adjacent and the stateless implementation is safe; `false`
//! falls back to the hash implementation (always correct, buffers).
//!
//! The rules track how each operator transforms arrival order:
//!
//! * `mksrc` emits each source child once — distinct nodes, distinct
//!   keys (children of a source root are element nodes, whose grouping
//!   key is their oid);
//! * `getD` fans out per input tuple, so contiguity survives for input
//!   variables but never for the introduced one (path hits repeat
//!   values arbitrarily);
//! * `select` takes a subsequence (runs stay runs), `join` is
//!   left-major (runs of left keys stay runs), semi-joins preserve the
//!   kept side's order;
//! * `crElt`'s output element is keyed by its skolem id — a function
//!   of the operator's own group list, so grouping on the output is
//!   grouping on those variables;
//! * list-valued variables (`cat`, `apply` outputs, `gBy` partitions)
//!   have a constant grouping key and never break contiguity;
//! * `rQ` rows are contiguous on variables whose key columns form a
//!   prefix of the statement's `ORDER BY`;
//! * everything else (`orderBy`'s oid sort, `nestedSrc`, views) is not
//!   proved — `Auto` buys correctness with a hash table there.

use mix_algebra::{Op, RqBinding, RqKind, Side};
use mix_common::Name;
use mix_relational::{ColRef, SelectStmt};
use mix_xml::{LabelPath, Step};

/// Can the stateless presorted `gBy` safely group `op`'s output on
/// `group`? Conservative: `false` whenever contiguity is not provable.
pub fn key_contiguous(op: &Op, group: &[Name]) -> bool {
    if group.is_empty() {
        return true;
    }
    match op {
        Op::Empty { .. } => true,
        Op::MkSrc { var, .. } => group.iter().all(|g| g == var),
        Op::GetD {
            input,
            from,
            path,
            to,
        } => {
            if !group.contains(to) {
                return key_contiguous(input, group);
            }
            if data_tail(path) {
                // data() hits are keyed by *value*; values repeat in
                // arbitrary positions.
                return false;
            }
            if path.len() == 1 {
                // The single step matches the start node itself: the
                // output is a subsequence of the input with `to` bound
                // to the very node `from` is — same grouping key.
                let mut g2 = without(group, to);
                if !g2.contains(from) {
                    g2.push(from.clone());
                }
                key_contiguous(input, &g2)
            } else {
                // Proper-descendant hits: distinct nodes within one
                // expansion, and globally distinct when each start
                // node is seen once (a tree node has one ancestor at
                // each height). Globally distinct `to` keys make any
                // grouping that includes `to` trivially contiguous.
                distinct_on(input, from)
            }
        }
        Op::Select { input, .. } => key_contiguous(input, group),
        Op::Project { input, vars } => {
            group.iter().all(|g| vars.contains(g)) && key_contiguous(input, group)
        }
        Op::Join { left, .. } => match out_vars(left) {
            Some(lv) => group.iter().all(|g| lv.contains(g)) && key_contiguous(left, group),
            None => false,
        },
        Op::SemiJoin {
            left, right, keep, ..
        } => {
            let kept = match keep {
                Side::Left => left,
                Side::Right => right,
            };
            key_contiguous(kept, group)
        }
        Op::CrElt {
            input,
            group: skolem_group,
            out,
            ..
        } => {
            let mut g2: Vec<Name> = Vec::new();
            for g in group {
                if g == out {
                    for s in skolem_group {
                        if !g2.contains(s) {
                            g2.push(s.clone());
                        }
                    }
                } else if !g2.contains(g) {
                    g2.push(g.clone());
                }
            }
            key_contiguous(input, &g2)
        }
        Op::Cat { input, out, .. } | Op::Apply { input, out, .. } => {
            key_contiguous(input, &without(group, out))
        }
        Op::GroupBy { group: g2, out, .. } => {
            // One output tuple per distinct g2-key: any grouping that
            // covers g2 sees every key at most once.
            let g = without(group, out);
            g2.iter().all(|v| g.contains(v))
        }
        Op::RelQuery { sql, map, .. } => relquery_contiguous(sql, map, group),
        Op::MkSrcOver { .. }
        | Op::OrderBy { .. }
        | Op::NestedSrc { .. }
        | Op::TupleDestroy { .. } => false,
    }
}

fn without(group: &[Name], drop: &Name) -> Vec<Name> {
    group.iter().filter(|g| *g != drop).cloned().collect()
}

fn data_tail(path: &LabelPath) -> bool {
    matches!(path.steps().last(), Some(Step::Data))
}

/// Does every value of `var` appear at most once in `op`'s output?
/// (Stronger than contiguity; used to prove path-introduced variables
/// globally distinct.)
fn distinct_on(op: &Op, var: &Name) -> bool {
    match op {
        Op::Empty { .. } => true,
        Op::MkSrc { var: v, .. } => v == var,
        Op::GetD {
            input,
            from,
            path,
            to,
        } => {
            if to == var {
                // Element hits are distinct nodes per expansion and
                // across expansions of distinct start nodes.
                !data_tail(path) && distinct_on(input, from)
            } else if path.len() == 1 && !data_tail(path) {
                // Subsequence (the one step matches the start node).
                distinct_on(input, var)
            } else {
                // Fan-out can repeat input variables.
                false
            }
        }
        Op::Select { input, .. } => distinct_on(input, var),
        Op::Project { input, vars } => vars.contains(var) && distinct_on(input, var),
        Op::SemiJoin {
            left, right, keep, ..
        } => {
            let kept = match keep {
                Side::Left => left,
                Side::Right => right,
            };
            distinct_on(kept, var)
        }
        Op::CrElt { input, out, .. }
        | Op::Cat { input, out, .. }
        | Op::Apply { input, out, .. } => out != var && distinct_on(input, var),
        Op::GroupBy { group, out, .. } => group.len() == 1 && &group[0] == var && out != var,
        _ => false,
    }
}

/// The variables `op` binds, `None` when not statically known
/// (`nestedSrc` depends on the runtime partition).
fn out_vars(op: &Op) -> Option<Vec<Name>> {
    let append = |mut vs: Vec<Name>, v: &Name| {
        vs.push(v.clone());
        vs
    };
    Some(match op {
        Op::MkSrc { var, .. } | Op::MkSrcOver { var, .. } => vec![var.clone()],
        Op::GetD { input, to, .. } => append(out_vars(input)?, to),
        Op::Select { input, .. } | Op::OrderBy { input, .. } => out_vars(input)?,
        Op::Project { vars, .. } => vars.clone(),
        Op::Join { left, right, .. } => {
            let mut vs = out_vars(left)?;
            vs.extend(out_vars(right)?);
            vs
        }
        Op::SemiJoin {
            left, right, keep, ..
        } => out_vars(match keep {
            Side::Left => left,
            Side::Right => right,
        })?,
        Op::CrElt { input, out, .. }
        | Op::Cat { input, out, .. }
        | Op::Apply { input, out, .. } => append(out_vars(input)?, out),
        Op::GroupBy { group, out, .. } => group.iter().cloned().chain([out.clone()]).collect(),
        Op::RelQuery { map, .. } => map.iter().map(|b| b.var.clone()).collect(),
        Op::Empty { vars } => vars.clone(),
        Op::NestedSrc { .. } | Op::TupleDestroy { .. } => return None,
    })
}

/// Rows sorted lexicographically by `ORDER BY c₁,…,cₘ` are contiguous
/// on a variable set exactly when the set's key columns form a prefix
/// of that list (as a set).
fn relquery_contiguous(sql: &SelectStmt, map: &[RqBinding], group: &[Name]) -> bool {
    if sql.items.is_empty() {
        // SELECT *: column positions are not statically resolvable.
        return false;
    }
    let mut wanted: Vec<ColRef> = Vec::new();
    for g in group {
        let Some(b) = map.iter().find(|b| &b.var == g) else {
            return false;
        };
        let positions: Vec<usize> = match &b.kind {
            RqKind::Element { key, .. } => {
                if key.is_empty() {
                    return false;
                }
                key.clone()
            }
            RqKind::Value { col } => vec![*col],
            // A field element's identity is its owning tuple's key
            // (the oid), exactly like the full tuple element.
            RqKind::FieldElement { key, .. } => {
                if key.is_empty() {
                    return false;
                }
                key.clone()
            }
        };
        for p in positions {
            let Some(item) = sql.items.get(p) else {
                return false;
            };
            if !wanted.contains(&item.col) {
                wanted.push(item.col.clone());
            }
        }
    }
    if sql.order_by.len() < wanted.len() {
        return false;
    }
    let prefix = &sql.order_by[..wanted.len()];
    wanted.iter().all(|c| prefix.contains(c)) && prefix.iter().all(|c| wanted.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{translate, validate};
    use mix_xquery::parse_query;

    fn n(s: &str) -> Name {
        Name::new(s)
    }

    /// The groupBy nodes of a plan, with their inputs.
    fn gbys(op: &Op) -> Vec<(&Op, &[Name])> {
        let mut out = Vec::new();
        if let Op::GroupBy { input, group, .. } = op {
            out.push((&**input, &group[..]));
        }
        for c in crate::util::children(op) {
            out.extend(gbys(c));
        }
        out
    }

    #[test]
    fn q1_translation_gbys_are_provably_contiguous() {
        let q = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
                 WHERE $C/id/data() = $O/cid/data() \
                 RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        validate(&plan).unwrap();
        let found = gbys(&plan.root);
        assert!(!found.is_empty());
        for (input, group) in found {
            assert!(key_contiguous(input, group), "gBy on {group:?} not proved");
        }
    }

    #[test]
    fn q1_pushed_down_gbys_are_provably_contiguous() {
        // After pushdown the gBy sits over rQ(... ORDER BY c1.id,
        // o1.orid) — the generated sort is exactly what the prefix
        // rule needs.
        let q = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
                 WHERE $C/id/data() = $O/cid/data() \
                 RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let cat = mix_wrapper::fig2_catalog().0;
        let out = crate::optimize(&plan, &cat);
        let found = gbys(&out.plan.root);
        assert!(!found.is_empty());
        for (input, group) in found {
            assert!(matches!(input, Op::RelQuery { .. } | Op::CrElt { .. }));
            assert!(key_contiguous(input, group), "gBy on {group:?} not proved");
        }
    }

    #[test]
    fn getd_introduced_var_is_not_contiguous() {
        let q = "FOR $O IN document(&root2)/order $B IN $O/cid/data() \
                 RETURN <g> $O </g> {$B}";
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        let found = gbys(&plan.root);
        assert!(!found.is_empty());
        // Grouping on the path-introduced $B must NOT be proved: cid
        // values repeat non-adjacently in document order.
        let proved = found
            .iter()
            .any(|(i, g)| g.contains(&n("B")) && key_contiguous(i, g));
        assert!(!proved);
    }

    #[test]
    fn select_and_join_preserve_left_contiguity() {
        let left = Op::MkSrc {
            source: n("r1"),
            var: n("C"),
        };
        let right = Op::MkSrc {
            source: n("r2"),
            var: n("O"),
        };
        let join = Op::Join {
            left: Box::new(left),
            right: Box::new(right),
            cond: None,
        };
        assert!(key_contiguous(&join, &[n("C")]));
        assert!(!key_contiguous(&join, &[n("O")]));
        let sel = Op::Select {
            input: Box::new(join),
            cond: mix_algebra::Cond::cmp_const("C", mix_common::CmpOp::Gt, 0),
        };
        assert!(key_contiguous(&sel, &[n("C")]));
    }

    #[test]
    fn relquery_order_by_prefix_rule() {
        use mix_relational::{FromItem, SelectItem};
        let items = vec![
            SelectItem {
                col: ColRef::qualified("c1", "id"),
                alias: None,
            },
            SelectItem {
                col: ColRef::qualified("o1", "orid"),
                alias: None,
            },
        ];
        let sql = |order_by: Vec<ColRef>| SelectStmt {
            distinct: false,
            items: items.clone(),
            from: vec![FromItem {
                table: n("customer"),
                alias: Some(n("c1")),
            }],
            preds: vec![],
            order_by,
        };
        let map = vec![RqBinding {
            var: n("C"),
            kind: RqKind::Value { col: 0 },
        }];
        let sorted = sql(vec![
            ColRef::qualified("c1", "id"),
            ColRef::qualified("o1", "orid"),
        ]);
        assert!(relquery_contiguous(&sorted, &map, &[n("C")]));
        // Key column not the sort prefix → unproved.
        let wrong = sql(vec![
            ColRef::qualified("o1", "orid"),
            ColRef::qualified("c1", "id"),
        ]);
        assert!(!relquery_contiguous(&wrong, &map, &[n("C")]));
        // No ORDER BY at all → unproved.
        assert!(!relquery_contiguous(&sql(vec![]), &map, &[n("C")]));
    }
}
