//! Virtual-result navigation edge cases: list-valued results, deep
//! revisits, fv/fl on every node kind, and id stability under
//! interleaved navigation.

use mix_algebra::{translate, xmas, CatArg};
use mix_common::{CmpOp, Name, Value};
use mix_engine::{AccessMode, EvalContext, VirtualResult};
use mix_wrapper::fig2_catalog;
use mix_xml::NavDoc;
use mix_xquery::parse_query;
use std::sync::Arc;

fn vresult(plan: &mix_algebra::Plan) -> VirtualResult {
    let ctx = Arc::new(EvalContext::new(fig2_catalog().0, AccessMode::Lazy));
    VirtualResult::new(plan, ctx).unwrap()
}

#[test]
fn td_of_list_valued_var_exports_list_nodes() {
    // cat produces a list; tD of it exports `list` nodes at the root.
    let plan = xmas()
        .mksrc("root1", "K")
        .get("K", "customer", "C")
        .cat(
            CatArg::Single(Name::new("C")),
            CatArg::Single(Name::new("K")),
            "W",
        )
        .tuple_destroy("W", Some("rootv"))
        .unwrap();
    let v = vresult(&plan);
    let first = v.first_child(v.root()).unwrap();
    assert_eq!(v.label(first).unwrap().as_str(), "list");
    // The list node's children are the customer element twice (C ≡ K here).
    let c1 = v.first_child(first).unwrap();
    let c2 = v.next_sibling(c1).unwrap();
    assert_eq!(v.label(c1).unwrap().as_str(), "customer");
    assert_eq!(v.label(c2).unwrap().as_str(), "customer");
    assert!(v.next_sibling(c2).is_none());
}

#[test]
fn interleaved_navigation_keeps_ids_stable() {
    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    let v = vresult(&plan);
    let r1 = v.first_child(v.root()).unwrap();
    let cust1 = v.first_child(r1).unwrap();
    // Interleave: advance to the second CustRec, then come back.
    let r2 = v.next_sibling(r1).unwrap();
    let cust2 = v.first_child(r2).unwrap();
    assert_ne!(v.oid(cust1), v.oid(cust2));
    assert_eq!(v.first_child(r1), Some(cust1));
    assert_eq!(v.oid(cust1).to_string(), "&DEF345");
    // fl/fv across node kinds.
    assert_eq!(v.label(v.root()).unwrap().as_str(), "list");
    assert!(v.value(v.root()).is_none());
    let id_field = v.first_child(cust1).unwrap();
    let leaf = v.first_child(id_field).unwrap();
    assert!(v.label(leaf).is_none());
    assert_eq!(v.value(leaf), Some(Value::str("DEF345")));
}

#[test]
fn empty_result_root_navigates_cleanly() {
    let plan = xmas()
        .mksrc("root1", "K")
        .get("K", "customer", "C")
        .get("C", "customer.name.data()", "N")
        .select_cmp("N", CmpOp::Lt, "A")
        .tuple_destroy("C", Some("rootv"))
        .unwrap();
    let v = vresult(&plan);
    assert!(v.first_child(v.root()).is_none());
    // Idempotent: asking again still returns None and builds nothing new.
    let before = v.nodes_materialized();
    assert!(v.first_child(v.root()).is_none());
    assert_eq!(v.nodes_materialized(), before);
}

#[test]
fn dedup_at_root_collapses_repeated_objects() {
    // A join that repeats each customer once per order; tD($C) with set
    // semantics exports each customer once.
    let customers =
        xmas()
            .mksrc("root1", "K")
            .get("K", "customer", "C")
            .get("C", "customer.id.data()", "1");
    let orders =
        xmas()
            .mksrc("root2", "J")
            .get("J", "order", "O")
            .get("O", "order.cid.data()", "2");
    let plan = customers
        .join(
            orders,
            Some(mix_algebra::Cond::cmp_vars("1", CmpOp::Eq, "2")),
        )
        .tuple_destroy("C", Some("rootv"))
        .unwrap();
    let v = vresult(&plan);
    let mut n = 0;
    let mut cur = v.first_child(v.root());
    while let Some(c) = cur {
        n += 1;
        cur = v.next_sibling(c);
    }
    assert_eq!(n, 2, "XYZ123 has two orders but must appear once");
}

#[test]
fn context_of_source_copied_node_reports_key_oid() {
    const Q1: &str = "FOR $C IN source(&root1)/customer RETURN <R> $C </R> {$C}";
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    let v = vresult(&plan);
    let rec = v.first_child(v.root()).unwrap();
    let cust = v.first_child(rec).unwrap();
    let ctx = v.context(cust);
    assert_eq!(ctx.oid.to_string(), "&DEF345");
    // Its enclosing constructed node appears in the ancestor chain.
    assert!(ctx.ancestors[0].as_skolem().is_some());
}
