//! Per-operator semantics conformance: each XMAS operator evaluated by
//! BOTH engines (eager tables, lazy streams) on hand-built plans, with
//! the outputs compared tuple by tuple.

use mix_algebra::{CatArg, ChildSpec, Cond, Op, Side};
use mix_common::{CmpOp, Name};
use mix_engine::stream::build_stream;
use mix_engine::{eager, AccessMode, EvalContext, LTuple, LVal};
use mix_wrapper::fig2_catalog;
use mix_xml::LabelPath;
use std::collections::HashMap;
use std::sync::Arc;

fn mk(source: &str, var: &str) -> Op {
    Op::MkSrc {
        source: Name::new(source),
        var: Name::new(var),
    }
}

fn getd(input: Op, from: &str, path: &str, to: &str) -> Op {
    Op::GetD {
        input: Box::new(input),
        from: Name::new(from),
        path: LabelPath::parse(path).unwrap(),
        to: Name::new(to),
    }
}

/// Render one tuple as comparable text (oids of every binding).
fn tuple_key(ctx: &EvalContext, t: &LTuple) -> String {
    t.vars
        .iter()
        .zip(&t.vals)
        .map(|(v, val)| format!("{}={}", v, render_val(ctx, val)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn render_val(ctx: &EvalContext, v: &LVal) -> String {
    match v {
        LVal::Part(p) => {
            let inner: Vec<String> = p
                .force()
                .unwrap()
                .iter()
                .map(|t| tuple_key(ctx, t))
                .collect();
            format!("{{{}}}", inner.join("; "))
        }
        LVal::List(l) => {
            let inner: Vec<String> = mix_engine::lval::force_list(l)
                .unwrap()
                .iter()
                .map(|e| render_val(ctx, e))
                .collect();
            format!("[{}]", inner.join(","))
        }
        other => ctx.lval_oid(other).to_string(),
    }
}

/// Evaluate `op` with both engines and assert identical tuples.
fn assert_engines_agree(op: &Op) -> Vec<String> {
    let (catalog, _) = fig2_catalog();
    // eager
    let ectx = EvalContext::new(catalog.clone(), AccessMode::Eager);
    let table = eager::eval_table(op, &ectx, &HashMap::new()).unwrap();
    let eager_rows: Vec<String> = table.tuples.iter().map(|t| tuple_key(&ectx, t)).collect();
    // lazy
    let lctx = Arc::new(EvalContext::new(catalog, AccessMode::Lazy));
    let mut stream = build_stream(op, &lctx, &Arc::new(HashMap::new())).unwrap();
    let mut lazy_rows = Vec::new();
    while let Some(t) = stream.next().unwrap() {
        lazy_rows.push(tuple_key(&lctx, &t));
    }
    assert_eq!(eager_rows, lazy_rows, "engines disagree for {}", op.head());
    eager_rows
}

#[test]
fn mksrc_and_getd() {
    let rows = assert_engines_agree(&getd(mk("root1", "K"), "K", "customer", "C"));
    assert_eq!(rows.len(), 2);
    assert!(rows[0].contains("C=&DEF345"), "{rows:?}");
}

#[test]
fn select_const_and_var() {
    let op = Op::Select {
        input: Box::new(getd(
            getd(mk("root2", "J"), "J", "order", "O"),
            "O",
            "order.value.data()",
            "V",
        )),
        cond: Cond::cmp_const("V", CmpOp::Gt, 2000),
    };
    assert_eq!(assert_engines_agree(&op).len(), 2);
}

#[test]
fn select_oid_eq() {
    let op = Op::Select {
        input: Box::new(getd(mk("root1", "K"), "K", "customer", "C")),
        cond: Cond::OidEq {
            var: Name::new("C"),
            oid: mix_xml::Oid::key("XYZ123"),
        },
    };
    let rows = assert_engines_agree(&op);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].contains("&XYZ123"));
}

#[test]
fn join_with_condition_and_cartesian() {
    let customers = getd(
        getd(mk("root1", "K"), "K", "customer", "C"),
        "C",
        "customer.id.data()",
        "1",
    );
    let orders = getd(
        getd(mk("root2", "J"), "J", "order", "O"),
        "O",
        "order.cid.data()",
        "2",
    );
    let join = Op::Join {
        left: Box::new(customers.clone()),
        right: Box::new(orders.clone()),
        cond: Some(Cond::cmp_vars("1", CmpOp::Eq, "2")),
    };
    assert_eq!(assert_engines_agree(&join).len(), 3);
    let cart = Op::Join {
        left: Box::new(customers),
        right: Box::new(orders),
        cond: None,
    };
    assert_eq!(assert_engines_agree(&cart).len(), 6);
}

#[test]
fn semijoin_both_sides() {
    let customers = getd(
        getd(mk("root1", "K"), "K", "customer", "C"),
        "C",
        "customer.id.data()",
        "1",
    );
    let big_orders = Op::Select {
        input: Box::new(getd(
            getd(
                getd(mk("root2", "J"), "J", "order", "O"),
                "O",
                "order.cid.data()",
                "2",
            ),
            "O",
            "order.value.data()",
            "V",
        )),
        cond: Cond::cmp_const("V", CmpOp::Gt, 100_000),
    };
    // Keep customers having a big order (left side kept).
    let keep_left = Op::SemiJoin {
        left: Box::new(customers.clone()),
        right: Box::new(big_orders.clone()),
        cond: Some(Cond::cmp_vars("1", CmpOp::Eq, "2")),
        keep: Side::Left,
    };
    let rows = assert_engines_agree(&keep_left);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].contains("&XYZ123"));
    // Keep big orders of existing customers (right side kept).
    let keep_right = Op::SemiJoin {
        left: Box::new(customers),
        right: Box::new(big_orders),
        cond: Some(Cond::cmp_vars("1", CmpOp::Eq, "2")),
        keep: Side::Right,
    };
    assert_eq!(assert_engines_agree(&keep_right).len(), 1);
}

#[test]
fn oid_cmp_join() {
    // Self-join of customers on node identity.
    let a = getd(mk("root1", "K"), "K", "customer", "C");
    let b = getd(mk("root1", "K2"), "K2", "customer", "C2");
    let join = Op::Join {
        left: Box::new(a),
        right: Box::new(b),
        cond: Some(Cond::OidCmp {
            l: Name::new("C"),
            r: Name::new("C2"),
        }),
    };
    assert_eq!(assert_engines_agree(&join).len(), 2);
}

#[test]
fn project_keeps_listed_vars() {
    let op = Op::Project {
        input: Box::new(getd(mk("root1", "K"), "K", "customer", "C")),
        vars: vec![Name::new("C")],
    };
    let rows = assert_engines_agree(&op);
    assert_eq!(rows.len(), 2);
    assert!(!rows[0].contains("K="), "{rows:?}");
}

#[test]
fn crelt_cat_and_lists() {
    let base = getd(mk("root1", "K"), "K", "customer", "C");
    let e1 = Op::CrElt {
        input: Box::new(base),
        label: Name::new("rec"),
        skolem: Name::new("f"),
        group: vec![Name::new("C")],
        children: ChildSpec::Single(Name::new("C")),
        tag: Name::new("R"),
        out: Name::new("R"),
    };
    let cat = Op::Cat {
        input: Box::new(e1),
        left: CatArg::Single(Name::new("R")),
        right: CatArg::Single(Name::new("C")),
        out: Name::new("W"),
    };
    let wrapped = Op::CrElt {
        input: Box::new(cat),
        label: Name::new("outer"),
        skolem: Name::new("g"),
        group: vec![Name::new("C")],
        children: ChildSpec::ListVar(Name::new("W")),
        tag: Name::new("V"),
        out: Name::new("V"),
    };
    let rows = assert_engines_agree(&wrapped);
    assert_eq!(rows.len(), 2);
    assert!(rows[0].contains("V=&($V,g(&DEF345))"), "{rows:?}");
    assert!(rows[0].contains("W=[&($R,f(&DEF345)),&DEF345]"), "{rows:?}");
}

#[test]
fn group_by_and_apply() {
    let orders = getd(
        getd(mk("root2", "J"), "J", "order", "O"),
        "O",
        "order.cid.data()",
        "Cid",
    );
    let grouped = Op::GroupBy {
        input: Box::new(orders),
        group: vec![Name::new("Cid")],
        out: Name::new("X"),
    };
    let rows = assert_engines_agree(&grouped);
    assert_eq!(rows.len(), 2, "{rows:?}"); // XYZ123 and DEF345 groups
    let applied = Op::Apply {
        input: Box::new(grouped),
        plan: Box::new(Op::TupleDestroy {
            input: Box::new(Op::NestedSrc {
                var: Name::new("X"),
            }),
            var: Name::new("O"),
            root: None,
        }),
        param: Some(Name::new("X")),
        out: Name::new("Z"),
    };
    let rows = assert_engines_agree(&applied);
    assert!(rows[0].contains("Z=[&28904,&87456]"), "{rows:?}");
    assert!(rows[1].contains("Z=[&99111]"), "{rows:?}");
}

#[test]
fn order_by_sorts_by_oid() {
    // Orders arrive in orid order; sort by the customer-id *value* key.
    let orders = getd(
        getd(mk("root2", "J"), "J", "order", "O"),
        "O",
        "order.cid.data()",
        "Cid",
    );
    let sorted = Op::OrderBy {
        input: Box::new(orders),
        vars: vec![Name::new("Cid"), Name::new("O")],
    };
    let rows = assert_engines_agree(&sorted);
    assert_eq!(rows.len(), 3);
    assert!(rows[0].contains("Cid=DEF345"), "{rows:?}");
}

#[test]
fn mksrc_over_inline_view() {
    let view = Op::TupleDestroy {
        input: Box::new(getd(mk("root1", "K"), "K", "customer", "C")),
        var: Name::new("C"),
        root: Some(Name::new("v")),
    };
    let op = getd(
        Op::MkSrcOver {
            input: Box::new(view),
            var: Name::new("A"),
        },
        "A",
        "customer.name.data()",
        "N",
    );
    let rows = assert_engines_agree(&op);
    assert_eq!(rows.len(), 2);
    assert!(rows[0].contains("N=DEFCorp."), "{rows:?}");
}

#[test]
fn empty_plan_yields_nothing() {
    assert!(assert_engines_agree(&Op::Empty {
        vars: vec![Name::new("X")]
    })
    .is_empty());
}

#[test]
fn rq_value_and_element_bindings() {
    use mix_algebra::{RqBinding, RqKind};
    use mix_relational::parse_sql;
    let op = Op::RelQuery {
        server: Name::new("db1"),
        sql: parse_sql(
            "SELECT o.orid, o.cid, o.value FROM orders o WHERE o.value > 400 ORDER BY o.orid",
        )
        .unwrap(),
        map: vec![
            RqBinding {
                var: Name::new("O"),
                kind: RqKind::Element {
                    element: Name::new("order"),
                    cols: vec![
                        (Name::new("orid"), 0),
                        (Name::new("cid"), 1),
                        (Name::new("value"), 2),
                    ],
                    key: vec![0],
                },
            },
            RqBinding {
                var: Name::new("V"),
                kind: RqKind::Value { col: 2 },
            },
        ],
    };
    let rows = assert_engines_agree(&op);
    assert_eq!(rows.len(), 3);
    assert!(rows[0].contains("O=&28904"), "{rows:?}");
    assert!(rows[0].contains("V=2400"), "{rows:?}");
}
