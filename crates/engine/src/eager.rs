//! The eager evaluator — the conventional-mediator baseline.
//!
//! Direct transcription of the Section 3 operator definitions over
//! fully materialized binding tables. `evaluate` computes the *entire*
//! result document up front, shipping every source tuple the plan
//! touches — exactly the behaviour the paper ascribes to "other XML
//! mediator systems, even those based on the virtual approach".
//!
//! Also used as the independent oracle the lazy engine is property-
//! tested against, and home of the Fig. 5 tree rendering of binding
//! tables.

use crate::context::EvalContext;
use crate::explain::subtree_size;
use crate::lval::{force_list, BindingTable, ChildPart, LElem, LList, LTuple, LVal, Partition};
use crate::pathwalk::eval_path;
use mix_algebra::{ChildSpec, Cond, CondArg, Op, RqKind, Side};
use mix_common::{Counter, MixError, Name, Result, ResultContext, Value};
use mix_obs::ExecProfile;
use mix_xml::{Document, NodeRef, Oid};
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluate a complete plan (rooted at `tD`) into a materialized
/// result document.
pub fn evaluate(plan: &mix_algebra::Plan, ctx: &EvalContext) -> Result<Document> {
    evaluate_profiled(plan, ctx, None)
}

/// [`evaluate`] with per-node accounting, mirroring the lazy builder's
/// pre-order numbering (the plan-root `tD` is node 0) so
/// [`crate::explain::render_annotated`] works over eager runs too.
pub fn evaluate_profiled(
    plan: &mix_algebra::Plan,
    ctx: &EvalContext,
    profile: Option<&Arc<ExecProfile>>,
) -> Result<Document> {
    match &plan.root {
        Op::TupleDestroy { input, var, root } => {
            let mut next = 1usize;
            let table = eval_table_profiled(input, ctx, &HashMap::new(), profile, &mut next)?;
            let name = root.clone().unwrap_or_else(|| Name::new("result"));
            let mut doc = Document::new(name, "list");
            let parent = doc.root_ref();
            let mut seen = std::collections::HashSet::new();
            let mut kept = 0u64;
            for t in &table.tuples {
                let v = t
                    .get(var)
                    .ok_or_else(|| MixError::internal(format!("tD var {var} missing")))?;
                // Set semantics at the tD boundary: two values with the
                // same vertex id are the same object (skolem
                // deduplication — binding lists are sets in the paper).
                if let Some(key) = dedup_key(ctx, v) {
                    if !seen.insert(key) {
                        continue;
                    }
                }
                kept += 1;
                materialize_lval(ctx, &mut doc, parent, v)?;
            }
            if let Some(p) = profile {
                p.record_pull(0);
                p.record_tuples(0, kept);
            }
            Ok(doc)
        }
        Op::Empty { .. } => Ok(Document::new("rootv", "list")),
        other => Err(MixError::invalid(format!(
            "plan root must be tD, found {}",
            other.name()
        ))),
    }
}

/// Copy a value into `doc` under `parent`, preserving oids. Source
/// subtrees are deep-copied (this is the eager materialization cost the
/// lazy engine avoids).
pub fn materialize_lval(
    ctx: &EvalContext,
    doc: &mut Document,
    parent: NodeRef,
    v: &LVal,
) -> Result<NodeRef> {
    ctx.stats().inc(Counter::NodesBuilt);
    Ok(match v {
        LVal::Leaf(x) => doc.add_text_with_oid(parent, x.clone(), Oid::lit(x.clone())),
        LVal::Src { .. } | LVal::Elem(_) => {
            if let Some(x) = ctx.lval_value(v) {
                doc.add_text_with_oid(parent, x.clone(), Oid::lit(x))
            } else {
                let label = ctx
                    .lval_label(v)
                    .ok_or_else(|| MixError::internal("element without label"))?;
                let n = doc.add_elem_with_oid(parent, label, ctx.lval_oid(v));
                for c in ctx.lval_children(v)? {
                    materialize_lval(ctx, doc, n, &c)?;
                }
                n
            }
        }
        LVal::List(l) => {
            let n = doc.add_elem_with_oid(parent, "list", Oid::surrogate(doc.len() as u64));
            for c in force_list(l)? {
                materialize_lval(ctx, doc, n, &c)?;
            }
            n
        }
        LVal::Part(_) => {
            return Err(MixError::invalid(
                "cannot materialize a group partition directly",
            ))
        }
    })
}

/// Evaluate a tuple-producing operator to a materialized table.
/// `env` resolves `nestedSrc` variables to the partitions of the
/// current outer tuple.
pub fn eval_table(
    op: &Op,
    ctx: &EvalContext,
    env: &HashMap<Name, BindingTable>,
) -> Result<BindingTable> {
    let mut next = 1usize;
    eval_table_profiled(op, ctx, env, None, &mut next)
}

/// [`eval_table`] with pre-order node numbering (see
/// [`crate::stream::build_stream_profiled`] — the two engines number
/// identically), per-node metrics, and one tracing span per operator.
/// Eager evaluation is strictly nested, so spans use the RAII guard:
/// each operator's span wraps its children's.
fn eval_table_profiled(
    op: &Op,
    ctx: &EvalContext,
    env: &HashMap<Name, BindingTable>,
    profile: Option<&Arc<ExecProfile>>,
    next: &mut usize,
) -> Result<BindingTable> {
    let id = *next;
    *next += 1;
    let mut guard =
        (ctx.tracer.enabled()).then(|| ctx.tracer.span(op.name(), &[("node", id.to_string())]));
    let mut extra: Vec<(&'static str, String)> = Vec::new();
    let table = eval_table_inner(op, ctx, env, profile, next, &mut extra)?;
    if let Some(g) = &mut guard {
        for (k, v) in &extra {
            g.set_attr(k, v.clone());
        }
        g.set_attr("tuples", table.tuples.len().to_string());
    }
    if let Some(p) = profile {
        p.record_pull(id);
        p.record_tuples(id, table.tuples.len() as u64);
        if !extra.is_empty() {
            let detail = extra
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            p.set_detail(id, detail);
        }
    }
    Ok(table)
}

fn eval_table_inner(
    op: &Op,
    ctx: &EvalContext,
    env: &HashMap<Name, BindingTable>,
    profile: Option<&Arc<ExecProfile>>,
    next: &mut usize,
    extra: &mut Vec<(&'static str, String)>,
) -> Result<BindingTable> {
    ctx.stats().inc(Counter::MediatorOps);
    match op {
        Op::MkSrc { source, var } => {
            let d = ctx.doc(source)?;
            let vars = Arc::new(vec![var.clone()]);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            let mut c = d.try_first_child(d.root())?;
            while let Some(n) = c {
                table.tuples.push(LTuple::new(
                    Arc::clone(&vars),
                    vec![LVal::Src {
                        doc: source.clone(),
                        node: n,
                    }],
                ));
                c = d.try_next_sibling(n)?;
            }
            Ok(table)
        }
        Op::MkSrcOver { input, var } => {
            // One binding per child of the inline view plan's result:
            // the tD variable's value of each inner tuple.
            let Op::TupleDestroy {
                input: view_input,
                var: view_var,
                ..
            } = &**input
            else {
                // Keep ids aligned with the renderer's walk even though
                // this subtree is never evaluated.
                *next += subtree_size(input);
                return Ok(BindingTable::new(vec![var.clone()]));
            };
            *next += 1; // the view's tD node
            let inner = eval_table_profiled(view_input, ctx, env, profile, next)?;
            let vars = Arc::new(vec![var.clone()]);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for t in &inner.tuples {
                let v = t
                    .get(view_var)
                    .cloned()
                    .ok_or_else(|| MixError::internal("view tD var missing"))?;
                table.tuples.push(LTuple::new(Arc::clone(&vars), vec![v]));
            }
            Ok(table)
        }
        Op::GetD {
            input,
            from,
            path,
            to,
        } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let vars = extend_vars(&inp.vars, to);
            let mut out = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for t in &inp.tuples {
                let base = t
                    .get(from)
                    .ok_or_else(|| MixError::internal(format!("getD var {from} missing")))?;
                for hit in eval_path(ctx, base, path)? {
                    let mut vals = t.vals.clone();
                    vals.push(hit);
                    out.tuples.push(LTuple::new(Arc::clone(&vars), vals));
                }
            }
            Ok(out)
        }
        Op::Select { input, cond } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let tuples = inp
                .tuples
                .into_iter()
                .filter(|t| cond_holds(ctx, cond, t))
                .collect();
            Ok(BindingTable {
                vars: inp.vars,
                tuples,
            })
        }
        Op::Project { input, vars } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let mut out = BindingTable::new(vars.clone());
            let mut seen = std::collections::HashSet::new();
            for t in &inp.tuples {
                let p = t.project(vars)?;
                let key = tuple_key(ctx, &p);
                if seen.insert(key) {
                    out.tuples.push(p);
                }
            }
            Ok(out)
        }
        Op::Join { left, right, cond } => {
            let l = eval_table_profiled(left, ctx, env, profile, next)?;
            let r = eval_table_profiled(right, ctx, env, profile, next)?;
            let mut vars = (*l.vars).clone();
            vars.extend(r.vars.iter().cloned());
            let vars = Arc::new(vars);
            let mut out = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            let split = mix_algebra::split_equi(cond.as_ref(), &l.vars, &r.vars);
            if ctx.hash_joins && split.hashable() {
                // Hash kernel, mirroring the stream layer: bucket the
                // right side by equi-key, re-verify the full condition
                // per candidate. Buckets keep right-input order, so the
                // output is the nested loop's left-major order exactly.
                ctx.stats().inc(Counter::HashBuilds);
                extra.push(("kernel", "hash".to_string()));
                let mut index: HashMap<Vec<crate::hashkey::KeyPart>, Vec<&LTuple>> = HashMap::new();
                for rt in &r.tuples {
                    if let Some(k) = crate::hashkey::tuple_key(ctx, rt, &split.pairs, Side::Right) {
                        index.entry(k).or_default().push(rt);
                    }
                }
                for lt in &l.tuples {
                    let Some(key) = crate::hashkey::tuple_key(ctx, lt, &split.pairs, Side::Left)
                    else {
                        continue;
                    };
                    let Some(bucket) = index.get(&key) else {
                        continue;
                    };
                    for rt in bucket {
                        ctx.stats().inc(Counter::JoinProbes);
                        let joined = lt.concat(rt);
                        if cond.as_ref().is_none_or(|c| cond_holds(ctx, c, &joined)) {
                            out.tuples.push(joined);
                        }
                    }
                }
            } else {
                ctx.stats().inc(Counter::NlFallbacks);
                extra.push(("kernel", "nl".to_string()));
                for lt in &l.tuples {
                    for rt in &r.tuples {
                        ctx.stats().inc(Counter::JoinProbes);
                        let joined = lt.concat(rt);
                        if cond.as_ref().is_none_or(|c| cond_holds(ctx, c, &joined)) {
                            out.tuples.push(joined);
                        }
                    }
                }
            }
            Ok(out)
        }
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => {
            let l = eval_table_profiled(left, ctx, env, profile, next)?;
            let r = eval_table_profiled(right, ctx, env, profile, next)?;
            let split = mix_algebra::split_equi(cond.as_ref(), &l.vars, &r.vars);
            let (kept, other) = match keep {
                Side::Left => (l, r),
                Side::Right => (r, l),
            };
            let (kept_side, other_side) = match keep {
                Side::Left => (Side::Left, Side::Right),
                Side::Right => (Side::Right, Side::Left),
            };
            let check = |kt: &LTuple, ot: &LTuple| {
                ctx.stats().inc(Counter::JoinProbes);
                let joined = match keep {
                    Side::Left => kt.concat(ot),
                    Side::Right => ot.concat(kt),
                };
                cond.as_ref().is_none_or(|c| cond_holds(ctx, c, &joined))
            };
            let tuples = if ctx.hash_joins && split.hashable() {
                ctx.stats().inc(Counter::HashBuilds);
                extra.push(("kernel", "hash".to_string()));
                let mut index: HashMap<Vec<crate::hashkey::KeyPart>, Vec<&LTuple>> = HashMap::new();
                for ot in &other.tuples {
                    if let Some(k) = crate::hashkey::tuple_key(ctx, ot, &split.pairs, other_side) {
                        index.entry(k).or_default().push(ot);
                    }
                }
                kept.tuples
                    .iter()
                    .filter(|kt| {
                        crate::hashkey::tuple_key(ctx, kt, &split.pairs, kept_side)
                            .and_then(|k| index.get(&k))
                            .is_some_and(|bucket| bucket.iter().any(|ot| check(kt, ot)))
                    })
                    .cloned()
                    .collect()
            } else {
                ctx.stats().inc(Counter::NlFallbacks);
                extra.push(("kernel", "nl".to_string()));
                kept.tuples
                    .iter()
                    .filter(|kt| other.tuples.iter().any(|ot| check(kt, ot)))
                    .cloned()
                    .collect()
            };
            Ok(BindingTable {
                vars: kept.vars,
                tuples,
            })
        }
        Op::CrElt {
            input,
            label,
            skolem,
            group,
            children,
            out,
            tag,
        } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let vars = extend_vars(&inp.vars, out);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for t in &inp.tuples {
                let elem = build_element(ctx, t, label, skolem, group, children, tag)?;
                let mut vals = t.vals.clone();
                vals.push(elem);
                table.tuples.push(LTuple::new(Arc::clone(&vars), vals));
            }
            Ok(table)
        }
        Op::Cat {
            input,
            left,
            right,
            out,
        } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let vars = extend_vars(&inp.vars, out);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for t in &inp.tuples {
                let list = cat_value(t, left, right)?;
                let mut vals = t.vals.clone();
                vals.push(list);
                table.tuples.push(LTuple::new(Arc::clone(&vars), vals));
            }
            Ok(table)
        }
        Op::GroupBy { input, group, out } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let mut order: Vec<Vec<Oid>> = Vec::new();
            let mut groups: HashMap<Vec<Oid>, Vec<LTuple>> = HashMap::new();
            for t in &inp.tuples {
                let key: Vec<Oid> = group
                    .iter()
                    .map(|g| {
                        t.get(g)
                            .map(|v| ctx.lval_key(v))
                            .ok_or_else(|| MixError::internal(format!("gBy var {g} missing")))
                    })
                    .collect::<Result<_>>()?;
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(t.clone());
            }
            let vars: Vec<Name> = group.iter().cloned().chain([out.clone()]).collect();
            let vars = Arc::new(vars);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for key in order {
                let tuples = groups.remove(&key).unwrap();
                let first = &tuples[0];
                let mut vals: Vec<LVal> = group
                    .iter()
                    .map(|g| {
                        first
                            .get(g)
                            .cloned()
                            .ok_or_else(|| MixError::plan("gBy var unbound"))
                    })
                    .collect::<Result<_>>()?;
                vals.push(LVal::Part(Partition::done(Arc::clone(&inp.vars), tuples)));
                table.tuples.push(LTuple::new(Arc::clone(&vars), vals));
            }
            Ok(table)
        }
        Op::Apply {
            input,
            plan,
            param,
            out,
        } => {
            let inp = eval_table_profiled(input, ctx, env, profile, next)?;
            // Reserve the nested plan's id range once; per-tuple
            // evaluations aggregate onto the same nodes.
            let nested_base = *next;
            *next += subtree_size(plan);
            let vars = extend_vars(&inp.vars, out);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            for t in &inp.tuples {
                let mut env2 = env.clone();
                if let Some(p) = param {
                    let part = match t.get(p) {
                        Some(LVal::Part(part)) => part.clone(),
                        _ => {
                            return Err(MixError::invalid(format!(
                                "apply parameter {} is not a partition",
                                p.display_var()
                            )))
                        }
                    };
                    env2.insert(
                        p.clone(),
                        BindingTable {
                            vars: Arc::clone(&part.vars),
                            tuples: part.force()?,
                        },
                    );
                }
                let result = eval_nested(plan, ctx, &env2, profile, nested_base)?;
                let mut vals = t.vals.clone();
                vals.push(result);
                table.tuples.push(LTuple::new(Arc::clone(&vars), vals));
            }
            Ok(table)
        }
        Op::NestedSrc { var } => env
            .get(var)
            .cloned()
            .ok_or_else(|| MixError::invalid(format!("nestedSrc({}) unbound", var.display_var()))),
        Op::RelQuery { server, sql, map } => {
            extra.push(("server", server.to_string()));
            extra.push(("sql", sql.to_string()));
            let db = ctx.catalog().database(server.as_str()).context(server)?;
            if let Some(s) = db.shards_attr(sql) {
                extra.push(("shards", s));
            }
            let mut cur = db.execute(sql).context(server)?;
            let vars: Vec<Name> = map.iter().map(|b| b.var.clone()).collect();
            let vars = Arc::new(vars);
            let mut table = BindingTable {
                vars: Arc::clone(&vars),
                tuples: vec![],
            };
            // Eager materialization fetches the whole result in blocks,
            // retrying transient backend faults under the context's
            // policy.
            let mut rows = Vec::new();
            cur.drain_retrying(&mut rows, &ctx.retry).context(server)?;
            for row in &rows {
                table.tuples.push(LTuple::new(
                    Arc::clone(&vars),
                    rq_row_to_vals(ctx, map, row),
                ));
            }
            Ok(table)
        }
        Op::OrderBy { input, vars } => {
            let mut inp = eval_table_profiled(input, ctx, env, profile, next)?;
            let keys: Vec<Name> = vars.clone();
            inp.tuples.sort_by(|a, b| {
                for k in &keys {
                    let (x, y) = (a.get(k), b.get(k));
                    let o = match (x, y) {
                        (Some(x), Some(y)) => ctx.lval_oid(x).total_cmp(&ctx.lval_oid(y)),
                        _ => std::cmp::Ordering::Equal,
                    };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(inp)
        }
        Op::Empty { vars } => Ok(BindingTable::new(vars.clone())),
        Op::TupleDestroy { .. } => Err(MixError::invalid(
            "tD may only appear as a plan (or nested plan) root",
        )),
    }
}

/// Evaluate a nested plan (rooted at `tD` without a root name) to the
/// list value `apply` binds. `nested_base` is the nested `tD`'s
/// reserved node id; the subplan numbers from `nested_base + 1` (the
/// nested `tD` itself stays unprofiled, matching the lazy engine).
fn eval_nested(
    plan: &Op,
    ctx: &EvalContext,
    env: &HashMap<Name, BindingTable>,
    profile: Option<&Arc<ExecProfile>>,
    nested_base: usize,
) -> Result<LVal> {
    match plan {
        Op::TupleDestroy { input, var, .. } => {
            let mut nid = nested_base + 1;
            let table = eval_table_profiled(input, ctx, env, profile, &mut nid)?;
            let mut vals = Vec::with_capacity(table.tuples.len());
            let mut seen = std::collections::HashSet::new();
            for t in &table.tuples {
                let v = t
                    .get(var)
                    .cloned()
                    .ok_or_else(|| MixError::internal(format!("nested tD var {var} missing")))?;
                if let Some(key) = dedup_key(ctx, &v) {
                    if !seen.insert(key) {
                        continue;
                    }
                }
                vals.push(v);
            }
            Ok(LVal::List(LList::fixed(vals)))
        }
        other => Err(MixError::invalid(format!(
            "nested plan root must be tD, found {}",
            other.name()
        ))),
    }
}

/// Construct one element for one tuple (shared with the lazy engine).
pub fn build_element(
    ctx: &EvalContext,
    t: &LTuple,
    label: &Name,
    skolem: &Name,
    group: &[Name],
    children: &ChildSpec,
    tag: &Name,
) -> Result<LVal> {
    let args: Vec<Oid> = group
        .iter()
        .map(|g| {
            t.get(g)
                .map(|v| ctx.lval_key(v))
                .ok_or_else(|| MixError::internal(format!("skolem arg {g} missing")))
        })
        .collect::<Result<_>>()?;
    let oid = Oid::skolem(skolem.clone(), tag.clone(), args);
    let kids = match children {
        ChildSpec::Single(v) => {
            let val = t
                .get(v)
                .cloned()
                .ok_or_else(|| MixError::internal(format!("crElt child var {v} missing")))?;
            LList::one(val)
        }
        ChildSpec::ListVar(v) => match t.get(v) {
            Some(LVal::List(l)) => l.clone(),
            Some(other) => LList::one(other.clone()),
            None => return Err(MixError::internal(format!("crElt child var {v} missing"))),
        },
    };
    ctx.stats().inc(Counter::NodesBuilt);
    Ok(LVal::Elem(Arc::new(LElem {
        label: label.clone(),
        oid,
        children: kids,
    })))
}

/// The `cat` value for one tuple (shared with the lazy engine).
pub fn cat_value(t: &LTuple, left: &ChildSpec, right: &ChildSpec) -> Result<LVal> {
    let part = |spec: &ChildSpec| -> Result<ChildPart> {
        let v = t
            .get(spec.var())
            .cloned()
            .ok_or_else(|| MixError::internal(format!("cat var {} missing", spec.var())))?;
        Ok(match spec {
            ChildSpec::Single(_) => ChildPart::One(v),
            ChildSpec::ListVar(_) => match v {
                LVal::List(l) => ChildPart::Splice(l),
                other => ChildPart::One(other),
            },
        })
    };
    Ok(LVal::List(LList::two(part(left)?, part(right)?)))
}

/// Does a condition hold on a tuple? Incomparable ⇒ false (paper
/// select semantics).
pub fn cond_holds(ctx: &EvalContext, cond: &Cond, t: &LTuple) -> bool {
    match cond {
        Cond::Cmp { l, op, r } => {
            let scalar = |arg: &CondArg| -> Option<Value> {
                match arg {
                    CondArg::Const(v) => Some(v.clone()),
                    CondArg::Var(v) => t.get(v).and_then(|lv| ctx.lval_scalar(lv)),
                }
            };
            match (scalar(l), scalar(r)) {
                (Some(a), Some(b)) => a.satisfies(*op, &b),
                _ => false,
            }
        }
        Cond::OidEq { var, oid } => t.get(var).map(|v| ctx.lval_oid(v) == *oid).unwrap_or(false),
        Cond::OidCmp { l, r } => match (t.get(l), t.get(r)) {
            (Some(a), Some(b)) => ctx.lval_key(a) == ctx.lval_key(b),
            _ => false,
        },
        Cond::And(cs) => cs.iter().all(|c| cond_holds(ctx, c, t)),
    }
}

/// The identity key a `tD` deduplicates on: the vertex id for nodes
/// and leaves; lists/partitions have no identity and are always kept.
pub(crate) fn dedup_key(ctx: &EvalContext, v: &LVal) -> Option<Oid> {
    match v {
        LVal::List(_) | LVal::Part(_) => None,
        _ => Some(ctx.lval_oid(v)),
    }
}

fn extend_vars(vars: &Arc<Vec<Name>>, extra: &Name) -> Arc<Vec<Name>> {
    let mut v = (**vars).clone();
    v.push(extra.clone());
    Arc::new(v)
}

/// A deduplication key for projected tuples (π̃ has set semantics).
fn tuple_key(ctx: &EvalContext, t: &LTuple) -> String {
    let mut s = String::new();
    for v in &t.vals {
        s.push_str(&ctx.lval_oid(v).to_string());
        s.push('\u{1}');
    }
    s
}

pub(crate) fn rq_row_to_vals(
    ctx: &EvalContext,
    map: &[mix_algebra::RqBinding],
    row: &[Value],
) -> Vec<LVal> {
    map.iter()
        .map(|b| match &b.kind {
            RqKind::Value { col } => LVal::Leaf(row.get(*col).cloned().unwrap_or(Value::Null)),
            RqKind::FieldElement { element, col, key } => {
                let key_text: Vec<String> = key
                    .iter()
                    .map(|&k| row.get(k).cloned().unwrap_or(Value::Null).to_string())
                    .collect();
                let key_text = key_text.join("|");
                let v = row.get(*col).cloned().unwrap_or(Value::Null);
                ctx.stats().inc(Counter::NodesBuilt);
                LVal::Elem(Arc::new(LElem {
                    label: element.clone(),
                    oid: Oid::key(format!("{key_text}.{element}")),
                    children: LList::one(LVal::Leaf(v)),
                }))
            }
            RqKind::Element { element, cols, key } => {
                let key_text: Vec<String> = key
                    .iter()
                    .map(|&k| row.get(k).cloned().unwrap_or(Value::Null).to_string())
                    .collect();
                let key_text = key_text.join("|");
                let kids: Vec<LVal> = cols
                    .iter()
                    .map(|(cname, pos)| {
                        let v = row.get(*pos).cloned().unwrap_or(Value::Null);
                        ctx.stats().inc(Counter::NodesBuilt);
                        LVal::Elem(Arc::new(LElem {
                            label: cname.clone(),
                            oid: Oid::key(format!("{key_text}.{cname}")),
                            children: LList::one(LVal::Leaf(v)),
                        }))
                    })
                    .collect();
                ctx.stats().inc(Counter::NodesBuilt);
                LVal::Elem(Arc::new(LElem {
                    label: element.clone(),
                    oid: Oid::key(key_text),
                    children: LList::fixed(kids),
                }))
            }
        })
        .collect()
}

/// Render a binding table in the Fig. 5 tree style.
pub fn render_binding_table(ctx: &EvalContext, table: &BindingTable) -> String {
    let mut out = String::new();
    out.push_str("list\n");
    for (i, t) in table.tuples.iter().enumerate() {
        out.push_str(&format!("  binding &b{i}\n"));
        render_tuple(ctx, t, &mut out, 2);
    }
    out
}

fn render_tuple(ctx: &EvalContext, t: &LTuple, out: &mut String, depth: usize) {
    for (var, val) in t.vars.iter().zip(&t.vals) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&var.display_var());
        out.push('\n');
        render_lval(ctx, val, out, depth + 1);
    }
}

fn render_lval(ctx: &EvalContext, v: &LVal, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    match v {
        LVal::Part(p) => {
            out.push_str(&pad);
            out.push_str("set\n");
            for (i, t) in p.force().unwrap_or_default().iter().enumerate() {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("binding &n{i}\n"));
                render_tuple(ctx, t, out, depth + 2);
            }
        }
        LVal::List(l) => {
            out.push_str(&pad);
            out.push_str("list\n");
            for e in force_list(l).unwrap_or_default() {
                render_lval(ctx, &e, out, depth + 1);
            }
        }
        other => {
            if let Some(val) = ctx.lval_value(other) {
                out.push_str(&format!("{pad}{val}\n"));
            } else if let Some(label) = ctx.lval_label(other) {
                out.push_str(&format!("{pad}{} {label}\n", ctx.lval_oid(other)));
                for c in ctx.lval_children(other).unwrap_or_default() {
                    render_lval(ctx, &c, out, depth + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AccessMode;
    use mix_algebra::{translate, Plan};
    use mix_wrapper::fig2_catalog;
    use mix_xml::NavDoc;
    use mix_xquery::parse_query;

    pub const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    fn ctx() -> EvalContext {
        EvalContext::new(fig2_catalog().0, AccessMode::Eager)
    }

    fn run(q: &str) -> Document {
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        evaluate(&plan, &ctx()).unwrap()
    }

    #[test]
    fn q1_produces_fig7_result() {
        let doc = run(Q1);
        let text = mix_xml::print::render_tree(&doc, doc.root());
        // Fig. 7: one CustRec per customer with matching orders, with
        // skolem ids; DEF345 sorts first (key order).
        assert!(text.starts_with("&rootv list\n"), "{text}");
        assert!(text.contains("&($V,f(&DEF345)) CustRec"), "{text}");
        assert!(text.contains("&($V,f(&XYZ123)) CustRec"), "{text}");
        assert!(text.contains("&($P,g(&28904)) OrderInfo"), "{text}");
        assert!(text.contains("&($P,g(&87456)) OrderInfo"), "{text}");
        assert!(text.contains("&XYZ123 customer"), "{text}");
        assert!(text.contains("value = 2400"), "{text}");
        // XYZ123 has two orders, DEF345 one.
        let custrec_count = text.matches("CustRec").count();
        assert_eq!(custrec_count, 2);
        assert_eq!(text.matches("OrderInfo").count(), 3);
    }

    #[test]
    fn selection_filters() {
        let doc = run(
            "FOR $O IN document(&root2)/order WHERE $O/value > 2000 RETURN <big> $O </big> {$O}",
        );
        assert_eq!(doc.child_count(doc.root()), 2);
    }

    #[test]
    fn bare_var_return() {
        let doc = run("FOR $C IN source(&root1)/customer RETURN $C");
        assert_eq!(doc.child_count(doc.root()), 2);
        let first = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.label(first).unwrap().as_str(), "customer");
        assert_eq!(doc.oid(first).to_string(), "&DEF345");
    }

    #[test]
    fn oid_eq_select_fixes_node() {
        use mix_algebra::Cond;
        let plan = translate(&parse_query("FOR $C IN source(&root1)/customer RETURN $C").unwrap())
            .unwrap();
        // Wrap the tD input with select($C = &XYZ123), like Fig. 10.
        let Op::TupleDestroy { input, var, root } = plan.root else {
            panic!()
        };
        let wrapped = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::Select {
                input,
                cond: Cond::OidEq {
                    var: Name::new("C"),
                    oid: Oid::key("XYZ123"),
                },
            }),
            var,
            root,
        });
        let doc = evaluate(&wrapped, &ctx()).unwrap();
        assert_eq!(doc.child_count(doc.root()), 1);
        let only = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.oid(only).to_string(), "&XYZ123");
    }

    #[test]
    fn binding_table_renders_fig5_style() {
        let c = ctx();
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        let Op::TupleDestroy { input, .. } = &plan.root else {
            panic!()
        };
        let table = eval_table(input, &c, &HashMap::new()).unwrap();
        let text = render_binding_table(&c, &table);
        assert!(text.starts_with("list\n"), "{text}");
        assert!(text.contains("binding &b0"), "{text}");
        assert!(text.contains("$C\n"), "{text}");
        assert!(text.contains("set\n"), "{text}");
    }

    #[test]
    fn rq_operator_reconstructs_tuples() {
        use mix_algebra::{RqBinding, RqKind};
        use mix_relational::parse_sql;
        let c = ctx();
        let plan = Op::RelQuery {
            server: Name::new("db1"),
            sql: parse_sql(
                "SELECT c.id, c.name, o.orid, o.value FROM customer c, orders o \
                            WHERE c.id = o.cid ORDER BY c.id, o.orid",
            )
            .unwrap(),
            map: vec![
                RqBinding {
                    var: Name::new("C"),
                    kind: RqKind::Element {
                        element: Name::new("customer"),
                        cols: vec![(Name::new("id"), 0), (Name::new("name"), 1)],
                        key: vec![0],
                    },
                },
                RqBinding {
                    var: Name::new("val"),
                    kind: RqKind::Value { col: 3 },
                },
            ],
        };
        let table = eval_table(&plan, &c, &HashMap::new()).unwrap();
        assert_eq!(table.len(), 3);
        let t = &table.tuples[0];
        let cust = t.get(&Name::new("C")).unwrap();
        assert_eq!(c.lval_label(cust).unwrap().as_str(), "customer");
        assert_eq!(c.lval_oid(cust).to_string(), "&DEF345");
        assert_eq!(
            c.lval_value(t.get(&Name::new("val")).unwrap()),
            Some(Value::Int(500))
        );
    }

    #[test]
    fn empty_plan_evaluates_to_empty_doc() {
        let plan = Plan::new(Op::Empty { vars: vec![] });
        let doc = evaluate(&plan, &ctx()).unwrap();
        assert_eq!(doc.child_count(doc.root()), 0);
    }
}
