//! Normalized hash keys for the equi-join/semi-join/groupBy kernels.
//!
//! The kernels bucket tuples by the values the extracted equi-conjuncts
//! compare ([`mix_algebra::split_equi`]). Bucketing must be *complete*
//! with respect to the condition semantics: whenever the predicate can
//! hold for a pair, both sides must land in the same bucket. It need
//! not be *exact* — every bucket candidate is re-verified against the
//! full original condition, so a collision merely costs one extra
//! probe.
//!
//! Completeness drives the normalization: [`Value::satisfies`] compares
//! `Int` and `Float` numerically (`3 = 3.0`), so both normalize to the
//! same f64 bit pattern (with `-0.0` folded into `0.0`). `Null` is
//! never equal to anything — a `Null` (or absent) key means the tuple
//! cannot match, so it gets no key at all and is dropped from the
//! build side / skipped on the probe side.

use crate::context::EvalContext;
use crate::lval::LTuple;
use mix_algebra::{EquiPair, KeyKind, Side};
use mix_common::{Name, Value};
use mix_xml::Oid;
use std::sync::Arc;

/// One normalized key component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    /// Numeric key: f64 bits after cross-type normalization.
    Num(u64),
    /// String key: shares the cell's allocation (refcount bump, no
    /// copy; `Arc<str>` hashes and compares by content).
    Str(std::sync::Arc<str>),
    /// Boolean key.
    Bool(bool),
    /// Node-identity key (`≐` conjuncts): the grouping oid.
    Node(Oid),
}

fn norm_bits(f: f64) -> u64 {
    // -0.0 == 0.0 under satisfies; fold to one bit pattern. NaN never
    // reaches here (Value::Float is NaN-free by construction).
    if f == 0.0 {
        0f64.to_bits()
    } else {
        f.to_bits()
    }
}

/// Normalize a scalar into a key part; `None` for `Null` (which no
/// equality can accept).
pub(crate) fn scalar_part(v: &Value) -> Option<KeyPart> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(KeyPart::Bool(*b)),
        Value::Int(i) => Some(KeyPart::Num(norm_bits(*i as f64))),
        Value::Float(f) => Some(KeyPart::Num(norm_bits(*f))),
        Value::Str(s) => Some(KeyPart::Str(s.clone())),
    }
}

/// The hash key of `t` for its side of the extracted pairs. `None`
/// means at least one component is `Null`/missing — the tuple cannot
/// satisfy the equi-conjuncts, so it joins nothing.
pub(crate) fn tuple_key(
    ctx: &EvalContext,
    t: &LTuple,
    pairs: &[EquiPair],
    side: Side,
) -> Option<Vec<KeyPart>> {
    pairs
        .iter()
        .map(|p| {
            let var = match side {
                Side::Left => &p.left,
                Side::Right => &p.right,
            };
            let lv = t.get(var)?;
            match p.kind {
                KeyKind::Scalar => ctx.lval_scalar(lv).as_ref().and_then(scalar_part),
                KeyKind::Node => Some(KeyPart::Node(ctx.lval_key(lv))),
            }
        })
        .collect()
}

/// Cached variable→position resolution for one side of an equi-key.
///
/// [`tuple_key`] resolves each pair's variable by a linear name search
/// in the tuple's schema — fine for one tuple, loop-invariant work for
/// a *stream*: every tuple a stream produces shares one
/// `Arc<Vec<Name>>`. The cache keys on that `Rc`'s identity and
/// re-resolves only when the schema pointer actually changes (in
/// practice: once per build/probe side), so the per-tuple cost is an
/// indexed load instead of `pairs × vars` name comparisons.
pub(crate) struct KeyCache {
    side: Side,
    vars: Option<Arc<Vec<Name>>>,
    pos: Vec<Option<usize>>,
}

impl KeyCache {
    pub(crate) fn new(side: Side) -> KeyCache {
        KeyCache {
            side,
            vars: None,
            pos: Vec::new(),
        }
    }

    /// Which join side this cache extracts keys for.
    pub(crate) fn side(&self) -> Side {
        self.side
    }

    /// The hash key of `t` — same result as [`tuple_key`] for this
    /// cache's side, with the name resolution amortized.
    pub(crate) fn key(
        &mut self,
        ctx: &EvalContext,
        t: &LTuple,
        pairs: &[EquiPair],
    ) -> Option<Vec<KeyPart>> {
        if !self.vars.as_ref().is_some_and(|v| Arc::ptr_eq(v, &t.vars)) {
            self.pos.clear();
            self.pos.extend(pairs.iter().map(|p| {
                let var = match self.side {
                    Side::Left => &p.left,
                    Side::Right => &p.right,
                };
                t.vars.iter().position(|n| n == var)
            }));
            self.vars = Some(Arc::clone(&t.vars));
        }
        pairs
            .iter()
            .zip(&self.pos)
            .map(|(p, pos)| {
                let lv = t.vals.get((*pos)?)?;
                match p.kind {
                    KeyKind::Scalar => ctx.lval_scalar(lv).as_ref().and_then(scalar_part),
                    KeyKind::Node => Some(KeyPart::Node(ctx.lval_key(lv))),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_keys_collide() {
        assert_eq!(scalar_part(&Value::Int(3)), scalar_part(&Value::Float(3.0)));
        assert_eq!(
            scalar_part(&Value::Float(-0.0)),
            scalar_part(&Value::Int(0))
        );
    }

    #[test]
    fn incomparable_types_get_distinct_keys() {
        // Int(3) and Str("3") are incomparable under satisfies — they
        // must not share a bucket's *match*, though sharing a bucket
        // would be harmless; here they don't even share one.
        assert_ne!(scalar_part(&Value::Int(3)), scalar_part(&Value::str("3")));
    }

    #[test]
    fn null_has_no_key() {
        assert_eq!(scalar_part(&Value::Null), None);
    }
}
