//! `EXPLAIN ANALYZE` for XMAS plans.
//!
//! The engine's builders number plan nodes in *pre-order* (the node
//! itself, then its children in build order: `join` builds left before
//! right, `apply` builds its input before its nested plan). The same
//! walk here joins an [`ExecProfile`]'s per-node metrics back onto the
//! plan tree, so a rendered physical plan shows what each operator
//! actually did: pulls, tuples produced, and the physical detail the
//! builder recorded (kernel choice, `gBy` mode, pushed SQL).

use mix_algebra::{Op, Plan};
use mix_obs::ExecProfile;

/// The children of `op` in build/numbering order. Unlike
/// [`Op::inputs`], this includes `apply`'s nested plan (which the
/// builders number even though it is compiled lazily per tuple).
pub(crate) fn walk_children(op: &Op) -> Vec<&Op> {
    match op {
        Op::Apply { input, plan, .. } => vec![input, plan],
        _ => op.inputs(),
    }
}

/// Number of plan nodes in the subtree rooted at `op` (including `op`).
/// Builders use this to reserve id ranges for subtrees they skip or
/// compile lazily.
pub(crate) fn subtree_size(op: &Op) -> usize {
    1 + walk_children(op)
        .iter()
        .map(|c| subtree_size(c))
        .sum::<usize>()
}

/// Render `plan` as an indented tree with per-node metrics from
/// `profile` appended to each line:
///
/// ```text
/// tD($V, rootv)  [pulls=3 tuples=2]
///   crElt(CustRec, f($C), $W -> $V)  [pulls=3 tuples=2]
///     ...
///       rQ(db1, "SELECT ...", {$C = {1,2}})  [pulls=3 tuples=2] {server=db1 ...}
/// ```
///
/// Nodes the execution never touched (short-circuited branches, the
/// unnavigated part of a lazy result) carry `[never pulled]` — the
/// laziness claim, visible per operator.
pub fn render_annotated(plan: &Plan, profile: &ExecProfile) -> String {
    let mut out = String::new();
    let mut next = 0usize;
    render_node(&plan.root, profile, 0, &mut next, &mut out);
    out
}

fn render_node(op: &Op, profile: &ExecProfile, depth: usize, next: &mut usize, out: &mut String) {
    let id = *next;
    *next += 1;
    out.push_str(&"  ".repeat(depth));
    out.push_str(&op.head());
    match profile.get(id) {
        Some(m) => {
            out.push_str(&format!("  [pulls={} tuples={}", m.pulls, m.tuples_out));
            if m.retries > 0 {
                out.push_str(&format!(" retries={}", m.retries));
            }
            // Approximate: columnar block footprints, charged by `rQ`.
            // Zero (row representation, or no blocks) renders nothing,
            // so row-mode trees stay byte-identical to earlier releases.
            if m.alloc_bytes > 0 {
                out.push_str(&format!(" alloc≈{}B", m.alloc_bytes));
            }
            out.push(']');
            if let Some(d) = &m.detail {
                out.push_str(&format!(" {{{d}}}"));
            }
        }
        None => out.push_str("  [never pulled]"),
    }
    out.push('\n');
    for c in walk_children(op) {
        render_node(c, profile, depth + 1, next, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::Name;

    fn mk(src: &str, var: &str) -> Op {
        Op::MkSrc {
            source: Name::new(src),
            var: Name::new(var),
        }
    }

    #[test]
    fn subtree_sizes_count_nested_plans() {
        let apply = Op::Apply {
            input: Box::new(mk("r", "X")),
            plan: Box::new(Op::TupleDestroy {
                input: Box::new(mk("r", "Y")),
                var: Name::new("Y"),
                root: None,
            }),
            param: None,
            out: Name::new("Z"),
        };
        assert_eq!(subtree_size(&apply), 4); // apply, input, tD, mksrc
        let join = Op::Join {
            left: Box::new(mk("a", "A")),
            right: Box::new(mk("b", "B")),
            cond: None,
        };
        assert_eq!(subtree_size(&join), 3);
    }

    #[test]
    fn annotation_marks_untouched_nodes() {
        let plan = Plan {
            root: Op::TupleDestroy {
                input: Box::new(mk("r", "X")),
                var: Name::new("X"),
                root: None,
            },
        };
        let profile = ExecProfile::new();
        profile.record_pull(1);
        profile.record_tuples(1, 2);
        profile.set_detail(1, "src=r");
        let text = render_annotated(&plan, &profile);
        assert!(text.contains("tD($X)  [never pulled]"), "{text}");
        assert!(
            text.contains("mksrc(r, $X)  [pulls=1 tuples=2] {src=r}"),
            "{text}"
        );
    }
}
