//! The MIX evaluation engine (paper Section 4).
//!
//! Two evaluators over the same value model:
//!
//! * [`eager`] — the conventional-mediator baseline: evaluates an XMAS
//!   plan to a fully materialized result document, shipping every
//!   source tuple. Direct transcription of the operator definitions of
//!   Section 3; also provides the Fig. 5 tree rendering of binding
//!   tables. Used both as the measurable "compute the full result"
//!   strawman and as an independent oracle for the lazy engine.
//! * [`stream`] + [`vdoc`] — *navigation-driven lazy evaluation*: every
//!   operator is a lazy stream over binding tuples, group-by partitions
//!   are consumed incrementally (the stateless presorted `gBy` of
//!   Table 1), relational sources are pulled through cursors one tuple
//!   at a time, and [`vdoc::VirtualResult`] exposes the plan's result
//!   as a virtual document: nothing is computed until `d`/`r`
//!   navigation commands demand it.
//!
//! The shared value model [`lval::LVal`] distinguishes source nodes
//! (navigated *in place* — copied lazily, never materialized at the
//! mediator), constructed elements with skolem oids, and lazy lists.
//! Constructed-node oids are exactly the Section 5 ids that "encode …
//! the values of the group-by attributes associated with the nodes that
//! enclose the given node, and the variable to which this node was
//! bound" — which is what makes queries-from-nodes decontextualizable.

pub mod context;
pub mod eager;
pub mod explain;
pub(crate) mod hashkey;
pub mod lval;
pub mod pathwalk;
pub mod stream;
pub mod vdoc;

pub use context::{AccessMode, EvalContext, GByMode};
pub use eager::{eval_table, evaluate, evaluate_profiled, render_binding_table};
pub use explain::render_annotated;
pub use lval::{BindingTable, LTuple, LVal};
pub use vdoc::{NodeContext, VirtualResult};
