//! The engine's value model.
//!
//! A binding list (tuple) binds variables to values; "each value can
//! either be a single element, a list of elements or a set of binding
//! lists" (Section 3). [`LVal`] covers those three, with two extras the
//! implementation needs: leaf values (for `data()`-bound variables and
//! `rQ` column bindings) and *lazy* lists/partitions, which is where
//! navigation-driven evaluation lives.

use mix_common::{Name, Value};
use mix_xml::{NodeRef, Oid};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A value bound to a variable in a binding list.
#[derive(Clone)]
pub enum LVal {
    /// A node inside a registered source document, navigated in place.
    Src { doc: Name, node: NodeRef },
    /// A leaf value (typed text). Its oid is the literal itself.
    Leaf(Value),
    /// An element constructed by `crElt` (or reconstructed by `rQ`).
    Elem(Rc<LElem>),
    /// A list of elements (`cat`/`apply` outputs), possibly lazy.
    List(LList),
    /// A set of binding lists: a `groupBy` partition.
    Part(Partition),
}

/// A constructed element: label, skolem oid, and its children as an
/// ordered sequence of parts (single values and possibly-lazy
/// sublists).
pub struct LElem {
    pub label: Name,
    pub oid: Oid,
    pub children: LList,
}

/// One segment of a list's content.
#[derive(Clone)]
pub enum ChildPart {
    /// A single value.
    One(LVal),
    /// Another list spliced in (its elements, not a list node).
    Splice(LList),
    /// A lazily produced run of values.
    Lazy(LazyList),
}

/// A list value: an ordered sequence of parts.
#[derive(Clone)]
pub struct LList {
    pub parts: Rc<Vec<ChildPart>>,
}

impl LList {
    /// The empty list.
    pub fn empty() -> LList {
        LList {
            parts: Rc::new(Vec::new()),
        }
    }

    /// A fully materialized list.
    pub fn fixed(vals: Vec<LVal>) -> LList {
        LList {
            parts: Rc::new(vals.into_iter().map(ChildPart::One).collect()),
        }
    }

    /// A list backed by one lazy producer.
    pub fn lazy(producer: LazyList) -> LList {
        LList {
            parts: Rc::new(vec![ChildPart::Lazy(producer)]),
        }
    }

    /// A list from explicit parts.
    pub fn from_parts(parts: Vec<ChildPart>) -> LList {
        LList {
            parts: Rc::new(parts),
        }
    }

    /// Random access with lazy forcing up to `index` only.
    pub fn get(&self, index: usize) -> Option<LVal> {
        let mut remaining = index;
        for part in self.parts.iter() {
            match part {
                ChildPart::One(v) => {
                    if remaining == 0 {
                        return Some(v.clone());
                    }
                    remaining -= 1;
                }
                ChildPart::Splice(sub) => match sub.get(remaining) {
                    Some(v) => return Some(v),
                    None => remaining -= sub.len_forced(),
                },
                ChildPart::Lazy(ll) => match ll.get(remaining) {
                    Some(v) => return Some(v),
                    None => remaining -= ll.produced_len(),
                },
            }
        }
        None
    }

    /// Length, forcing everything.
    pub fn len_forced(&self) -> usize {
        let mut n = 0;
        while self.get(n).is_some() {
            n += 1;
        }
        n
    }
}

/// Flatten a list into a vector (forces lazy parts).
pub fn force_list(list: &LList) -> Vec<LVal> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(v) = list.get(i) {
        out.push(v);
        i += 1;
    }
    out
}

/// A lazily produced sequence of values: a cache of what has been
/// produced plus an optional producer for the rest.
#[derive(Clone)]
pub struct LazyList {
    inner: Rc<RefCell<LazyListState>>,
}

struct LazyListState {
    produced: Vec<LVal>,
    producer: Option<Box<dyn FnMut() -> Option<LVal>>>,
}

impl LazyList {
    /// Wrap a producer closure (`None` = exhausted).
    pub fn new(producer: Box<dyn FnMut() -> Option<LVal>>) -> LazyList {
        LazyList {
            inner: Rc::new(RefCell::new(LazyListState {
                produced: Vec::new(),
                producer: Some(producer),
            })),
        }
    }

    /// An already-exhausted lazy list over the given values.
    pub fn done(vals: Vec<LVal>) -> LazyList {
        LazyList {
            inner: Rc::new(RefCell::new(LazyListState {
                produced: vals,
                producer: None,
            })),
        }
    }

    /// The value at `index`, producing up to it on demand.
    pub fn get(&self, index: usize) -> Option<LVal> {
        let mut st = self.inner.borrow_mut();
        while st.produced.len() <= index {
            let Some(p) = st.producer.as_mut() else { break };
            match p() {
                Some(v) => st.produced.push(v),
                None => {
                    st.producer = None;
                    break;
                }
            }
        }
        st.produced.get(index).cloned()
    }

    /// Force the entire list.
    pub fn force(&self) -> Vec<LVal> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(v) = self.get(i) {
            out.push(v);
            i += 1;
        }
        out
    }

    /// How many values have been produced so far (laziness metric).
    pub fn produced_len(&self) -> usize {
        self.inner.borrow().produced.len()
    }
}

/// A `groupBy` partition: the set of binding lists of one group.
///
/// Backed by a lazily filled shared buffer — the stateless presorted
/// `gBy` appends tuples as the shared input stream is consumed
/// (Table 1's behaviour: a group's members are discovered by `r`
/// commands on the underlying stream until the key changes).
#[derive(Clone)]
pub struct Partition {
    pub vars: Rc<Vec<Name>>,
    inner: Rc<RefCell<PartitionState>>,
}

struct PartitionState {
    tuples: Vec<LTuple>,
    /// Pulls the next tuple of this group from the shared stream;
    /// `None` once the group is complete.
    producer: Option<Box<dyn FnMut() -> Option<LTuple>>>,
}

impl Partition {
    pub fn new(vars: Rc<Vec<Name>>, producer: Box<dyn FnMut() -> Option<LTuple>>) -> Partition {
        Partition {
            vars,
            inner: Rc::new(RefCell::new(PartitionState {
                tuples: Vec::new(),
                producer: Some(producer),
            })),
        }
    }

    pub fn done(vars: Rc<Vec<Name>>, tuples: Vec<LTuple>) -> Partition {
        Partition {
            vars,
            inner: Rc::new(RefCell::new(PartitionState {
                tuples,
                producer: None,
            })),
        }
    }

    /// Tuple at `index`, pulling from the shared stream on demand.
    pub fn get(&self, index: usize) -> Option<LTuple> {
        let mut st = self.inner.borrow_mut();
        while st.tuples.len() <= index {
            let Some(p) = st.producer.as_mut() else { break };
            match p() {
                Some(t) => st.tuples.push(t),
                None => {
                    st.producer = None;
                    break;
                }
            }
        }
        st.tuples.get(index).cloned()
    }

    /// Force the whole partition.
    pub fn force(&self) -> Vec<LTuple> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(t) = self.get(i) {
            out.push(t);
            i += 1;
        }
        out
    }
}

/// A binding list: one tuple of variable bindings. The variable schema
/// is shared across a stream's tuples.
#[derive(Clone)]
pub struct LTuple {
    pub vars: Rc<Vec<Name>>,
    pub vals: Vec<LVal>,
}

impl LTuple {
    pub fn new(vars: Rc<Vec<Name>>, vals: Vec<LVal>) -> LTuple {
        debug_assert_eq!(vars.len(), vals.len());
        LTuple { vars, vals }
    }

    /// The value bound to `var`.
    pub fn get(&self, var: &Name) -> Option<&LVal> {
        self.vars
            .iter()
            .position(|v| v == var)
            .map(|i| &self.vals[i])
    }

    /// Extend with one more binding (`bᵢ + ($v = w)` in the paper).
    pub fn extended(&self, var: Name, val: LVal) -> LTuple {
        let mut vars = (*self.vars).clone();
        let mut vals = self.vals.clone();
        vars.push(var);
        vals.push(val);
        LTuple {
            vars: Rc::new(vars),
            vals,
        }
    }

    /// Concatenate two tuples (`bₖ = bᵢ + bⱼ`).
    pub fn concat(&self, other: &LTuple) -> LTuple {
        let mut vars = (*self.vars).clone();
        vars.extend(other.vars.iter().cloned());
        let mut vals = self.vals.clone();
        vals.extend(other.vals.iter().cloned());
        LTuple {
            vars: Rc::new(vars),
            vals,
        }
    }

    /// Keep only `keep` variables, in `keep` order.
    pub fn project(&self, keep: &[Name]) -> LTuple {
        let vals = keep
            .iter()
            .map(|k| self.get(k).cloned().expect("projection var present"))
            .collect();
        LTuple {
            vars: Rc::new(keep.to_vec()),
            vals,
        }
    }
}

/// A fully materialized set of binding lists (the eager engine's
/// currency, and the payload of forced partitions).
#[derive(Clone)]
pub struct BindingTable {
    pub vars: Rc<Vec<Name>>,
    pub tuples: Vec<LTuple>,
}

impl BindingTable {
    pub fn new(vars: Vec<Name>) -> BindingTable {
        BindingTable {
            vars: Rc::new(vars),
            tuples: Vec::new(),
        }
    }

    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl fmt::Debug for LVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LVal::Src { doc, node } => write!(f, "Src({doc}:{})", node.0),
            LVal::Leaf(v) => write!(f, "Leaf({v})"),
            LVal::Elem(e) => write!(f, "Elem({}, {})", e.label, e.oid),
            LVal::List(_) => write!(f, "List(..)"),
            LVal::Part(_) => write!(f, "Part(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: i64) -> LVal {
        LVal::Leaf(Value::Int(i))
    }

    fn as_int(v: &LVal) -> i64 {
        match v {
            LVal::Leaf(Value::Int(i)) => *i,
            other => panic!("not an int leaf: {other:?}"),
        }
    }

    #[test]
    fn lazy_list_produces_on_demand() {
        let mut n = 0;
        let ll = LazyList::new(Box::new(move || {
            if n < 3 {
                n += 1;
                Some(leaf(n))
            } else {
                None
            }
        }));
        assert_eq!(ll.produced_len(), 0);
        assert_eq!(as_int(&ll.get(1).unwrap()), 2);
        assert_eq!(ll.produced_len(), 2);
        assert!(ll.get(5).is_none());
        assert_eq!(ll.force().len(), 3);
    }

    #[test]
    fn list_random_access_flattens_parts() {
        let sub = LList::fixed(vec![leaf(2), leaf(3)]);
        let mut n = 0;
        let lazy = LazyList::new(Box::new(move || {
            if n < 2 {
                n += 1;
                Some(leaf(4 + n - 1))
            } else {
                None
            }
        }));
        let list = LList::from_parts(vec![
            ChildPart::One(leaf(1)),
            ChildPart::Splice(sub),
            ChildPart::Lazy(lazy),
            ChildPart::One(leaf(6)),
        ]);
        let vals: Vec<i64> = force_list(&list).iter().map(as_int).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(as_int(&list.get(3).unwrap()), 4);
        assert!(list.get(6).is_none());
        assert_eq!(list.len_forced(), 6);
    }

    #[test]
    fn empty_list() {
        assert!(LList::empty().get(0).is_none());
        assert_eq!(LList::empty().len_forced(), 0);
    }

    #[test]
    fn tuple_operations() {
        let vars = Rc::new(vec![Name::new("A"), Name::new("B")]);
        let t = LTuple::new(vars, vec![leaf(1), leaf(2)]);
        assert_eq!(as_int(t.get(&Name::new("B")).unwrap()), 2);
        let t2 = t.extended(Name::new("C"), leaf(3));
        assert_eq!(t2.vars.len(), 3);
        let p = t2.project(&[Name::new("C"), Name::new("A")]);
        assert_eq!(p.vars.as_slice(), &[Name::new("C"), Name::new("A")]);
        assert_eq!(as_int(&p.vals[0]), 3);
        let u = t.concat(&LTuple::new(Rc::new(vec![Name::new("D")]), vec![leaf(9)]));
        assert_eq!(u.vars.len(), 3);
    }

    #[test]
    fn partition_pulls_incrementally() {
        let vars = Rc::new(vec![Name::new("X")]);
        let mut n = 0;
        let vclone = Rc::clone(&vars);
        let p = Partition::new(
            vars,
            Box::new(move || {
                if n < 2 {
                    n += 1;
                    Some(LTuple::new(Rc::clone(&vclone), vec![leaf(n)]))
                } else {
                    None
                }
            }),
        );
        assert!(p.get(0).is_some());
        assert!(p.get(1).is_some());
        assert!(p.get(2).is_none());
        assert_eq!(p.force().len(), 2);
    }
}
