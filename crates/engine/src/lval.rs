//! The engine's value model.
//!
//! A binding list (tuple) binds variables to values; "each value can
//! either be a single element, a list of elements or a set of binding
//! lists" (Section 3). [`LVal`] covers those three, with two extras the
//! implementation needs: leaf values (for `data()`-bound variables and
//! `rQ` column bindings) and *lazy* lists/partitions, which is where
//! navigation-driven evaluation lives.

use mix_common::{MixError, Name, Result, Value};
use mix_xml::{NodeRef, Oid};
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// A value bound to a variable in a binding list.
#[derive(Clone)]
pub enum LVal {
    /// A node inside a registered source document, navigated in place.
    Src { doc: Name, node: NodeRef },
    /// A leaf value (typed text). Its oid is the literal itself.
    Leaf(Value),
    /// An element constructed by `crElt` (or reconstructed by `rQ`).
    Elem(Arc<LElem>),
    /// A list of elements (`cat`/`apply` outputs), possibly lazy.
    List(LList),
    /// A set of binding lists: a `groupBy` partition.
    Part(Partition),
}

/// A constructed element: label, skolem oid, and its children as an
/// ordered sequence of parts (single values and possibly-lazy
/// sublists).
pub struct LElem {
    pub label: Name,
    pub oid: Oid,
    pub children: LList,
}

/// One segment of a list's content.
#[derive(Clone)]
pub enum ChildPart {
    /// A single value.
    One(LVal),
    /// Another list spliced in (its elements, not a list node).
    Splice(LList),
    /// A lazily produced run of values.
    Lazy(LazyList),
    /// A fixed-arity run built on demand by a shared, stateless
    /// generator — the children of an `rQ`-reconstructed element,
    /// backed by the block (or row) it was decoded from. One generator
    /// is shared by every element of the same block, so a deferred
    /// child list costs no per-element producer state; rebuilding on
    /// re-access is sound because the generated elements are
    /// identified structurally (derived key oids).
    Gen {
        gen: Arc<dyn KidGen>,
        row: u32,
        parent: Oid,
    },
}

/// A stateless child generator (see [`ChildPart::Gen`]).
pub trait KidGen: Send + Sync {
    /// Children per element (every element of one generator has the
    /// same arity).
    fn count(&self) -> usize;
    /// Build child `i` of the element decoded from `row`, whose id is
    /// `parent`.
    fn kid(&self, row: usize, i: usize, parent: &Oid) -> LVal;
}

/// A list value: an ordered sequence of parts.
///
/// The parts live in a shared slice (`Arc<[ChildPart]>`): one
/// allocation per list, and the single-part constructors below build
/// it directly without an intermediate `Vec`.
#[derive(Clone)]
pub struct LList {
    pub parts: Arc<[ChildPart]>,
}

impl LList {
    /// The empty list.
    pub fn empty() -> LList {
        LList {
            parts: Arc::new([]),
        }
    }

    /// A fully materialized list.
    pub fn fixed(vals: Vec<LVal>) -> LList {
        LList {
            parts: vals.into_iter().map(ChildPart::One).collect(),
        }
    }

    /// A one-value list, built without an intermediate `Vec<LVal>`.
    pub fn one(val: LVal) -> LList {
        LList {
            parts: Arc::new([ChildPart::One(val)]),
        }
    }

    /// A two-part list (the `cat` shape), one allocation.
    pub fn two(a: ChildPart, b: ChildPart) -> LList {
        LList {
            parts: Arc::new([a, b]),
        }
    }

    /// A list backed by one shared stateless generator run.
    pub fn generated(gen: Arc<dyn KidGen>, row: u32, parent: Oid) -> LList {
        LList {
            parts: Arc::new([ChildPart::Gen { gen, row, parent }]),
        }
    }

    /// A list backed by one lazy producer.
    pub fn lazy(producer: LazyList) -> LList {
        LList {
            parts: Arc::new([ChildPart::Lazy(producer)]),
        }
    }

    /// A list from explicit parts.
    pub fn from_parts(parts: Vec<ChildPart>) -> LList {
        LList {
            parts: parts.into(),
        }
    }

    /// Random access with lazy forcing up to `index` only. `Err` when a
    /// lazy part's producer hit a backend failure while forcing.
    pub fn get(&self, index: usize) -> Result<Option<LVal>> {
        let mut remaining = index;
        for part in self.parts.iter() {
            match part {
                ChildPart::One(v) => {
                    if remaining == 0 {
                        return Ok(Some(v.clone()));
                    }
                    remaining -= 1;
                }
                ChildPart::Splice(sub) => match sub.get(remaining)? {
                    Some(v) => return Ok(Some(v)),
                    None => remaining -= sub.len_forced()?,
                },
                ChildPart::Lazy(ll) => match ll.get(remaining)? {
                    Some(v) => return Ok(Some(v)),
                    None => remaining -= ll.produced_len(),
                },
                ChildPart::Gen { gen, row, parent } => {
                    let n = gen.count();
                    if remaining < n {
                        return Ok(Some(gen.kid(*row as usize, remaining, parent)));
                    }
                    remaining -= n;
                }
            }
        }
        Ok(None)
    }

    /// Length, forcing everything.
    pub fn len_forced(&self) -> Result<usize> {
        let mut n = 0;
        while self.get(n)?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

/// Flatten a list into a vector (forces lazy parts).
pub fn force_list(list: &LList) -> Result<Vec<LVal>> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(v) = list.get(i)? {
        out.push(v);
        i += 1;
    }
    Ok(out)
}

/// A lazily produced sequence of values: a cache of what has been
/// produced plus an optional producer for the rest.
#[derive(Clone)]
pub struct LazyList {
    inner: Arc<Mutex<LazyListState>>,
}

struct LazyListState {
    produced: Vec<LVal>,
    producer: Option<Box<dyn FnMut() -> Result<Option<LVal>> + Send>>,
    /// A producer failure, latched: the produced prefix stays
    /// readable, asking for more re-reports the error.
    error: Option<MixError>,
}

impl LazyList {
    /// Wrap a producer closure (`Ok(None)` = exhausted; `Err` latches).
    pub fn new(producer: Box<dyn FnMut() -> Result<Option<LVal>> + Send>) -> LazyList {
        LazyList {
            inner: Arc::new(Mutex::new(LazyListState {
                produced: Vec::new(),
                producer: Some(producer),
                error: None,
            })),
        }
    }

    /// An already-exhausted lazy list over the given values.
    pub fn done(vals: Vec<LVal>) -> LazyList {
        LazyList {
            inner: Arc::new(Mutex::new(LazyListState {
                produced: vals,
                producer: None,
                error: None,
            })),
        }
    }

    /// The value at `index`, producing up to it on demand.
    pub fn get(&self, index: usize) -> Result<Option<LVal>> {
        let mut st = self.inner.lock().unwrap();
        while st.produced.len() <= index {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            let Some(p) = st.producer.as_mut() else { break };
            match p() {
                Ok(Some(v)) => st.produced.push(v),
                Ok(None) => {
                    st.producer = None;
                    break;
                }
                Err(e) => {
                    st.producer = None;
                    st.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(st.produced.get(index).cloned())
    }

    /// Force the entire list.
    pub fn force(&self) -> Result<Vec<LVal>> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(v) = self.get(i)? {
            out.push(v);
            i += 1;
        }
        Ok(out)
    }

    /// How many values have been produced so far (laziness metric).
    pub fn produced_len(&self) -> usize {
        self.inner.lock().unwrap().produced.len()
    }
}

/// A `groupBy` partition: the set of binding lists of one group.
///
/// Backed by a lazily filled shared buffer — the stateless presorted
/// `gBy` appends tuples as the shared input stream is consumed
/// (Table 1's behaviour: a group's members are discovered by `r`
/// commands on the underlying stream until the key changes).
#[derive(Clone)]
pub struct Partition {
    pub vars: Arc<Vec<Name>>,
    inner: Arc<Mutex<PartitionState>>,
}

struct PartitionState {
    tuples: Vec<LTuple>,
    /// Pulls the next tuple of this group from the shared stream;
    /// `None` once the group is complete.
    producer: Option<Box<dyn FnMut() -> Result<Option<LTuple>> + Send>>,
    /// A producer failure, latched (see [`LazyList`]).
    error: Option<MixError>,
}

impl Partition {
    pub fn new(
        vars: Arc<Vec<Name>>,
        producer: Box<dyn FnMut() -> Result<Option<LTuple>> + Send>,
    ) -> Partition {
        Partition {
            vars,
            inner: Arc::new(Mutex::new(PartitionState {
                tuples: Vec::new(),
                producer: Some(producer),
                error: None,
            })),
        }
    }

    pub fn done(vars: Arc<Vec<Name>>, tuples: Vec<LTuple>) -> Partition {
        Partition {
            vars,
            inner: Arc::new(Mutex::new(PartitionState {
                tuples,
                producer: None,
                error: None,
            })),
        }
    }

    /// Tuple at `index`, pulling from the shared stream on demand.
    pub fn get(&self, index: usize) -> Result<Option<LTuple>> {
        let mut st = self.inner.lock().unwrap();
        while st.tuples.len() <= index {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            let Some(p) = st.producer.as_mut() else { break };
            match p() {
                Ok(Some(t)) => st.tuples.push(t),
                Ok(None) => {
                    st.producer = None;
                    break;
                }
                Err(e) => {
                    st.producer = None;
                    st.error = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(st.tuples.get(index).cloned())
    }

    /// Force the whole partition.
    pub fn force(&self) -> Result<Vec<LTuple>> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(t) = self.get(i)? {
            out.push(t);
            i += 1;
        }
        Ok(out)
    }
}

/// A binding list: one tuple of variable bindings. The variable schema
/// is shared across a stream's tuples.
#[derive(Clone)]
pub struct LTuple {
    pub vars: Arc<Vec<Name>>,
    pub vals: Vec<LVal>,
}

impl LTuple {
    pub fn new(vars: Arc<Vec<Name>>, vals: Vec<LVal>) -> LTuple {
        debug_assert_eq!(vars.len(), vals.len());
        LTuple { vars, vals }
    }

    /// The value bound to `var`.
    pub fn get(&self, var: &Name) -> Option<&LVal> {
        self.vars
            .iter()
            .position(|v| v == var)
            .map(|i| &self.vals[i])
    }

    /// Extend with one more binding (`bᵢ + ($v = w)` in the paper).
    pub fn extended(&self, var: Name, val: LVal) -> LTuple {
        let mut vars = (*self.vars).clone();
        let mut vals = self.vals.clone();
        vars.push(var);
        vals.push(val);
        LTuple {
            vars: Arc::new(vars),
            vals,
        }
    }

    /// Concatenate two tuples (`bₖ = bᵢ + bⱼ`).
    pub fn concat(&self, other: &LTuple) -> LTuple {
        let mut vars = (*self.vars).clone();
        vars.extend(other.vars.iter().cloned());
        let mut vals = self.vals.clone();
        vals.extend(other.vals.iter().cloned());
        LTuple {
            vars: Arc::new(vars),
            vals,
        }
    }

    /// Keep only `keep` variables, in `keep` order. A variable missing
    /// from the tuple is a plan-invariant violation (the rewriter
    /// validated the projection list), reported as an error rather than
    /// a panic.
    pub fn project(&self, keep: &[Name]) -> Result<LTuple> {
        let vals = keep
            .iter()
            .map(|k| {
                self.get(k)
                    .cloned()
                    .ok_or_else(|| MixError::plan(format!("projection var {k} not bound")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(LTuple {
            vars: Arc::new(keep.to_vec()),
            vals,
        })
    }
}

/// A fully materialized set of binding lists (the eager engine's
/// currency, and the payload of forced partitions).
#[derive(Clone)]
pub struct BindingTable {
    pub vars: Arc<Vec<Name>>,
    pub tuples: Vec<LTuple>,
}

impl BindingTable {
    pub fn new(vars: Vec<Name>) -> BindingTable {
        BindingTable {
            vars: Arc::new(vars),
            tuples: Vec::new(),
        }
    }

    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl fmt::Debug for LVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LVal::Src { doc, node } => write!(f, "Src({doc}:{})", node.0),
            LVal::Leaf(v) => write!(f, "Leaf({v})"),
            LVal::Elem(e) => write!(f, "Elem({}, {})", e.label, e.oid),
            LVal::List(_) => write!(f, "List(..)"),
            LVal::Part(_) => write!(f, "Part(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: i64) -> LVal {
        LVal::Leaf(Value::Int(i))
    }

    fn as_int(v: &LVal) -> i64 {
        match v {
            LVal::Leaf(Value::Int(i)) => *i,
            other => panic!("not an int leaf: {other:?}"),
        }
    }

    #[test]
    fn lazy_list_produces_on_demand() {
        let mut n = 0;
        let ll = LazyList::new(Box::new(move || {
            if n < 3 {
                n += 1;
                Ok(Some(leaf(n)))
            } else {
                Ok(None)
            }
        }));
        assert_eq!(ll.produced_len(), 0);
        assert_eq!(as_int(&ll.get(1).unwrap().unwrap()), 2);
        assert_eq!(ll.produced_len(), 2);
        assert!(ll.get(5).unwrap().is_none());
        assert_eq!(ll.force().unwrap().len(), 3);
    }

    #[test]
    fn lazy_list_latches_producer_errors() {
        let mut n = 0;
        let ll = LazyList::new(Box::new(move || {
            if n < 2 {
                n += 1;
                Ok(Some(leaf(n)))
            } else {
                Err(MixError::internal("backing store died"))
            }
        }));
        assert_eq!(as_int(&ll.get(1).unwrap().unwrap()), 2);
        // Asking past the failure reports the error...
        assert!(ll.get(2).is_err());
        assert!(ll.get(2).is_err());
        // ...but the produced prefix stays readable.
        assert_eq!(as_int(&ll.get(0).unwrap().unwrap()), 1);
    }

    #[test]
    fn list_random_access_flattens_parts() {
        let sub = LList::fixed(vec![leaf(2), leaf(3)]);
        let mut n = 0;
        let lazy = LazyList::new(Box::new(move || {
            if n < 2 {
                n += 1;
                Ok(Some(leaf(4 + n - 1)))
            } else {
                Ok(None)
            }
        }));
        let list = LList::from_parts(vec![
            ChildPart::One(leaf(1)),
            ChildPart::Splice(sub),
            ChildPart::Lazy(lazy),
            ChildPart::One(leaf(6)),
        ]);
        let vals: Vec<i64> = force_list(&list).unwrap().iter().map(as_int).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(as_int(&list.get(3).unwrap().unwrap()), 4);
        assert!(list.get(6).unwrap().is_none());
        assert_eq!(list.len_forced().unwrap(), 6);
    }

    #[test]
    fn empty_list() {
        assert!(LList::empty().get(0).unwrap().is_none());
        assert_eq!(LList::empty().len_forced().unwrap(), 0);
    }

    #[test]
    fn tuple_operations() {
        let vars = Arc::new(vec![Name::new("A"), Name::new("B")]);
        let t = LTuple::new(vars, vec![leaf(1), leaf(2)]);
        assert_eq!(as_int(t.get(&Name::new("B")).unwrap()), 2);
        let t2 = t.extended(Name::new("C"), leaf(3));
        assert_eq!(t2.vars.len(), 3);
        let p = t2.project(&[Name::new("C"), Name::new("A")]).unwrap();
        assert_eq!(p.vars.as_slice(), &[Name::new("C"), Name::new("A")]);
        assert_eq!(as_int(&p.vals[0]), 3);
        // A missing projection var is a plan error, not a panic.
        let Err(e) = t2.project(&[Name::new("Z")]) else {
            panic!("projection of unbound var must fail");
        };
        assert!(matches!(e, MixError::Plan(_)), "{e}");
        let u = t.concat(&LTuple::new(Arc::new(vec![Name::new("D")]), vec![leaf(9)]));
        assert_eq!(u.vars.len(), 3);
    }

    #[test]
    fn partition_pulls_incrementally() {
        let vars = Arc::new(vec![Name::new("X")]);
        let mut n = 0;
        let vclone = Arc::clone(&vars);
        let p = Partition::new(
            vars,
            Box::new(move || {
                if n < 2 {
                    n += 1;
                    Ok(Some(LTuple::new(Arc::clone(&vclone), vec![leaf(n)])))
                } else {
                    Ok(None)
                }
            }),
        );
        assert!(p.get(0).unwrap().is_some());
        assert!(p.get(1).unwrap().is_some());
        assert!(p.get(2).unwrap().is_none());
        assert_eq!(p.force().unwrap().len(), 2);
    }
}
