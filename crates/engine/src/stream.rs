//! Lazy tuple streams — the pipelined operator implementations of
//! Section 4.
//!
//! Every XMAS operator compiles to a [`TStream`] that produces binding
//! tuples strictly on demand; "when an operator … receives a navigation
//! command from an operator that is above it in the plan, it sends
//! navigation commands to the operators below, and combines the results
//! it receives". Highlights:
//!
//! * `mksrc` pulls source children one at a time (one relational tuple
//!   per pull on wrapped relations);
//! * the presorted `gBy` is the *stateless* implementation of Table 1:
//!   it holds only a one-tuple lookahead, discovers a group's members
//!   by advancing the shared input until the key changes, and skipping
//!   a group drains exactly that group (the `repeat r(bs) until key
//!   changes` loop of Table 1);
//! * `apply` materializes nothing: the collected list is a lazy view
//!   over the group partition;
//! * `rQ` holds a live SQL cursor and pulls one row per tuple.
//!
//! Plans must be validated before compilation
//! ([`mix_algebra::validate()`]); streams report violated invariants as
//! [`MixError::Plan`] errors (a bad plan fails the query, never the
//! process). Backend failures propagate through every operator as
//! `Err`: the navigation command that needed the missing data sees the
//! typed [`MixError::Backend`], while tuples produced before the
//! failure remain valid.

use crate::context::{EvalContext, GByMode};
use crate::eager::{build_element, cat_value, cond_holds, rq_row_to_vals};
use crate::explain::subtree_size;
use crate::hashkey::{KeyCache, KeyPart};
use crate::lval::LElem;
use crate::lval::{KidGen, LList, LTuple, LVal, LazyList, Partition};
use crate::pathwalk::eval_path;
use mix_algebra::{Op, Side};
use mix_common::{ColumnBlock, Counter, MixError, Name, Result, ResultContext, Value};
use mix_obs::{ExecProfile, SpanId, TracerHandle};
use mix_relational::Cursor;
use mix_xml::{NavDoc, NodeRef, Oid};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::sync::Mutex;

/// A lazy stream of binding tuples.
pub trait TStream: Send {
    /// The variable schema of produced tuples.
    fn vars(&self) -> Arc<Vec<Name>>;
    /// Produce the next tuple, doing only the work it requires.
    /// `Ok(None)` is exhaustion; `Err` is a source/backend failure at
    /// exactly the pull that needed the missing data.
    fn next(&mut self) -> Result<Option<LTuple>>;

    /// Append up to `n` tuples to `out`; returns how many were
    /// produced. Fewer than `n` (in particular `0`) is returned only
    /// on exhaustion — overrides must uphold this, it is what lets
    /// drain loops skip the final empty pull. The default loops over
    /// [`TStream::next`] (one virtual dispatch total — already cheaper
    /// than `n` boxed calls from outside); hot operators override it to
    /// pull blocks from their own inputs, so a block demanded at the
    /// top propagates down the pipeline.
    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut k = 0;
        while k < n {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    k += 1;
                }
                None => break,
            }
        }
        Ok(k)
    }

    /// Hint that this stream is about to be drained to exhaustion: an
    /// `rQ` stream starts its armed prefetcher now (laziness is moot
    /// for a consumer committed to a full drain), overlapping its
    /// backend fetch with whatever the caller does first. Default
    /// no-op; pass-through operators forward to their input.
    fn prime(&mut self) {}
}

/// Drain `s` to exhaustion into `out`, block at a time (the shared
/// barrier loop: join/semi-join build sides, sorts, stateful `gBy`).
/// Relies on the [`TStream::pull_block`] contract — a short block
/// means exhaustion — to avoid a final empty pull.
pub(crate) fn drain_stream(s: &mut dyn TStream, out: &mut Vec<LTuple>) -> Result<()> {
    while s.pull_block(out, mix_common::MAX_AUTO_BLOCK)? == mix_common::MAX_AUTO_BLOCK {}
    Ok(())
}

/// A buffered adapter between a per-tuple consumer and a blockwise
/// producer: refills from `pull_block` on the policy's ramp, handing
/// out one tuple at a time. Under [`BlockPolicy::Off`] it degenerates
/// to plain `next()` — the paper-faithful path stays untouched.
struct BlockBuf {
    buf: VecDeque<LTuple>,
    ramp: mix_common::BlockRamp,
    off: bool,
    done: bool,
    scratch: Vec<LTuple>,
}

impl BlockBuf {
    /// `ramp` is the context's (session-floored) ramp for the policy —
    /// see [`EvalContext::block_ramp`].
    fn new(policy: mix_common::BlockPolicy, ramp: mix_common::BlockRamp) -> BlockBuf {
        BlockBuf {
            buf: VecDeque::new(),
            off: policy == mix_common::BlockPolicy::Off,
            ramp,
            done: false,
            scratch: Vec::new(),
        }
    }

    fn pull(&mut self, input: &mut dyn TStream) -> Result<Option<LTuple>> {
        if let Some(t) = self.buf.pop_front() {
            return Ok(Some(t));
        }
        if self.off {
            return input.next();
        }
        if self.done {
            return Ok(None);
        }
        let want = self.ramp.next_size();
        self.scratch.clear();
        if input.pull_block(&mut self.scratch, want)? == 0 {
            self.done = true;
            return Ok(None);
        }
        self.buf.extend(self.scratch.drain(..));
        Ok(self.buf.pop_front())
    }
}

/// Nested-plan environment: partition bindings for `nestedSrc`.
pub type Env = Arc<HashMap<Name, Partition>>;

/// Compile a tuple-producing operator into a stream.
///
/// Fails on unresolvable sources/servers; runtime invariants assume a
/// validated plan.
pub fn build_stream(op: &Op, ctx: &Arc<EvalContext>, env: &Env) -> Result<Box<dyn TStream>> {
    let mut next = 1;
    build_stream_profiled(op, ctx, env, None, &mut next)
}

/// [`build_stream`] with per-node accounting: nodes get pre-order ids
/// starting at `*next` (the session reserves id 0 for the plan-root
/// `tD`), and — when `profile` is given or the context's tracer is
/// enabled — each stream is wrapped to record pulls/tuples and emit an
/// operator span ([`crate::explain::render_annotated`] joins the
/// profile back onto the plan).
pub(crate) fn build_stream_profiled(
    op: &Op,
    ctx: &Arc<EvalContext>,
    env: &Env,
    profile: Option<&Arc<ExecProfile>>,
    next: &mut usize,
) -> Result<Box<dyn TStream>> {
    ctx.stats().inc(Counter::MediatorOps);
    let id = *next;
    *next += 1;
    let mut extra: Vec<(&'static str, String)> = Vec::new();
    let raw: Box<dyn TStream> = match op {
        Op::MkSrc { source, var } => {
            extra.push(("src", source.to_string()));
            let doc = ctx.doc(source)?;
            Box::new(MkSrcStream {
                doc,
                source: source.clone(),
                vars: Arc::new(vec![var.clone()]),
                cur: None,
                started: false,
            })
        }
        Op::MkSrcOver { input, var } => {
            let Op::TupleDestroy {
                input: view_input,
                var: view_var,
                ..
            } = &**input
            else {
                // Keep ids aligned with the renderer's walk even though
                // this subtree is never compiled.
                *next += subtree_size(input);
                return Ok(Box::new(EmptyStream {
                    vars: Arc::new(vec![var.clone()]),
                }));
            };
            *next += 1; // the view's tD node
            let inner = build_stream_profiled(view_input, ctx, env, profile, next)?;
            Box::new(MkSrcOverStream {
                inner,
                view_var: view_var.clone(),
                vars: Arc::new(vec![var.clone()]),
            })
        }
        Op::GetD {
            input,
            from,
            path,
            to,
        } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            let mut vars = (*input.vars()).clone();
            vars.push(to.clone());
            Box::new(GetDStream {
                ctx: Arc::clone(ctx),
                input,
                from: from.clone(),
                path: path.clone(),
                vars: Arc::new(vars),
                pending: VecDeque::new(),
            })
        }
        Op::Select { input, cond } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            Box::new(SelectStream {
                ctx: Arc::clone(ctx),
                input,
                cond: cond.clone(),
                buf: Vec::new(),
            })
        }
        Op::Project { input, vars } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            Box::new(ProjectStream {
                input,
                keep: Arc::new(vars.clone()),
                buf: Vec::new(),
            })
        }
        Op::Join { left, right, cond } => {
            let left = build_stream_profiled(left, ctx, env, profile, next)?;
            let right = build_stream_profiled(right, ctx, env, profile, next)?;
            let mut vars = (*left.vars()).clone();
            vars.extend(right.vars().iter().cloned());
            let split = mix_algebra::split_equi(cond.as_ref(), &left.vars(), &right.vars());
            if ctx.hash_joins && split.hashable() {
                extra.push(("kernel", "hash".to_string()));
                Box::new(HashJoinStream {
                    ctx: Arc::clone(ctx),
                    left,
                    right: Some(right),
                    index: HashMap::new(),
                    pairs: split.pairs,
                    cur_left: None,
                    cur_key: None,
                    idx: 0,
                    cond: cond.clone(),
                    vars: Arc::new(vars),
                    lkeys: KeyCache::new(Side::Left),
                    rkeys: KeyCache::new(Side::Right),
                })
            } else {
                ctx.stats().inc(Counter::NlFallbacks);
                extra.push(("kernel", "nl".to_string()));
                Box::new(JoinStream {
                    ctx: Arc::clone(ctx),
                    left,
                    right: Some(right),
                    right_rows: Vec::new(),
                    cur_left: None,
                    idx: 0,
                    cond: cond.clone(),
                    vars: Arc::new(vars),
                })
            }
        }
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => {
            let left = build_stream_profiled(left, ctx, env, profile, next)?;
            let right = build_stream_profiled(right, ctx, env, profile, next)?;
            let split = mix_algebra::split_equi(cond.as_ref(), &left.vars(), &right.vars());
            let (kept, other) = match keep {
                Side::Left => (left, right),
                Side::Right => (right, left),
            };
            if ctx.hash_joins && split.hashable() {
                extra.push(("kernel", "hash".to_string()));
                Box::new(HashSemiJoinStream {
                    ctx: Arc::clone(ctx),
                    kept,
                    other: Some(other),
                    index: HashMap::new(),
                    pairs: split.pairs,
                    cond: cond.clone(),
                    keep: *keep,
                    kept_keys: KeyCache::new(*keep),
                    other_keys: KeyCache::new(match keep {
                        Side::Left => Side::Right,
                        Side::Right => Side::Left,
                    }),
                })
            } else {
                ctx.stats().inc(Counter::NlFallbacks);
                extra.push(("kernel", "nl".to_string()));
                Box::new(SemiJoinStream {
                    ctx: Arc::clone(ctx),
                    kept,
                    other: Some(other),
                    other_rows: Vec::new(),
                    cond: cond.clone(),
                    keep: *keep,
                })
            }
        }
        Op::CrElt {
            input,
            label,
            skolem,
            group,
            children,
            out,
            tag,
        } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            let mut vars = (*input.vars()).clone();
            vars.push(out.clone());
            Box::new(MapStream {
                ctx: Arc::clone(ctx),
                input,
                vars: Arc::new(vars),
                buf: Vec::new(),
                f: MapKind::CrElt {
                    label: label.clone(),
                    skolem: skolem.clone(),
                    group: group.clone(),
                    children: children.clone(),
                    tag: tag.clone(),
                },
            })
        }
        Op::Cat {
            input,
            left,
            right,
            out,
        } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            let mut vars = (*input.vars()).clone();
            vars.push(out.clone());
            Box::new(MapStream {
                ctx: Arc::clone(ctx),
                input,
                vars: Arc::new(vars),
                buf: Vec::new(),
                f: MapKind::Cat {
                    left: left.clone(),
                    right: right.clone(),
                },
            })
        }
        Op::GroupBy {
            input: input_op,
            group,
            out,
        } => {
            let input = build_stream_profiled(input_op, ctx, env, profile, next)?;
            let mode = match ctx.gby_mode {
                GByMode::Auto => {
                    if mix_rewrite::key_contiguous(input_op, group) {
                        GByMode::StatelessPresorted
                    } else {
                        GByMode::Hash
                    }
                }
                m => m,
            };
            extra.push((
                "mode",
                match mode {
                    GByMode::StatelessPresorted => "presorted",
                    GByMode::Stateful => "stateful",
                    GByMode::Hash | GByMode::Auto => "hash",
                }
                .to_string(),
            ));
            match mode {
                GByMode::StatelessPresorted => Box::new(GByStream::new(
                    Arc::clone(ctx),
                    input,
                    group.clone(),
                    out.clone(),
                )),
                GByMode::Stateful => Box::new(GByStatefulStream::new(
                    Arc::clone(ctx),
                    input,
                    group.clone(),
                    out.clone(),
                )),
                GByMode::Hash => Box::new(GByHashStream::new(
                    Arc::clone(ctx),
                    input,
                    group.clone(),
                    out.clone(),
                )),
                GByMode::Auto => unreachable!("resolved above"),
            }
        }
        Op::Apply {
            input,
            plan,
            param,
            out,
        } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            let mut vars = (*input.vars()).clone();
            vars.push(out.clone());
            // The nested plan is compiled per activation; reserve its id
            // range now so the renderer's pre-order walk lines up and
            // activations aggregate onto the same nodes.
            let nested_base = *next;
            *next += subtree_size(plan);
            let Op::TupleDestroy {
                input: nested_input,
                var: nested_var,
                ..
            } = &**plan
            else {
                return Err(MixError::plan("nested plans must end in tD"));
            };
            Box::new(ApplyStream {
                ctx: Arc::clone(ctx),
                input,
                nested_input: Arc::new((**nested_input).clone()),
                nested_var: nested_var.clone(),
                param: param.clone(),
                env: Arc::clone(env),
                vars: Arc::new(vars),
                profile: profile.cloned(),
                nested_base,
            })
        }
        Op::NestedSrc { var } => {
            let part = env.get(var).cloned().ok_or_else(|| {
                MixError::invalid(format!("nestedSrc({}) unbound", var.display_var()))
            })?;
            Box::new(NestedSrcStream {
                vars: Arc::clone(&part.vars),
                part,
                idx: 0,
            })
        }
        Op::RelQuery { server, sql, map } => {
            extra.push(("server", server.to_string()));
            extra.push(("sql", sql.to_string()));
            extra.push(("block", ctx.block.label()));
            if ctx.prefetch.enabled() {
                // Only when on, so pinned span/EXPLAIN trees for the
                // default configuration stay byte-identical.
                extra.push(("prefetch", ctx.prefetch.label()));
            }
            let db = ctx.catalog().database(server.as_str()).context(server)?;
            // `shards=` appears only for sharded backends ("1/4" routed,
            // "4/4" scatter, "whole" fallback); single-backend EXPLAIN
            // trees stay byte-identical.
            if let Some(s) = db.shards_attr(sql) {
                extra.push(("shards", s));
            }
            let mut cursor = db.execute(sql).context(server)?;
            let ramp = ctx.block_ramp();
            if ctx.prefetch.enabled() {
                // The clone predates every next_size() call on `ramp`,
                // so the prefetcher replays this stream's exact pull
                // schedule (the cursor advances the mirror past the one
                // pull it serves synchronously).
                cursor.enable_prefetch(ctx.prefetch, ramp.clone(), ctx.retry);
            }
            let decoder = match ctx.block {
                mix_common::BlockPolicy::Off => None,
                _ => Some(RqDecoder::new(map)),
            };
            // Typed column vectors only make sense for block pulls; the
            // per-row protocol under `Off` keeps the row representation.
            let columnar = decoder.is_some() && ctx.columnar;
            extra.push(("repr", if columnar { "col" } else { "row" }.to_string()));
            Box::new(RelQueryStream {
                ctx: Arc::clone(ctx),
                cursor,
                map: map.clone(),
                vars: Arc::new(map.iter().map(|b| b.var.clone()).collect()),
                pending: VecDeque::new(),
                ramp,
                rbuf: Vec::new(),
                decoder,
                columnar,
                profile: profile.cloned(),
                id,
                counted_retries: 0,
            })
        }
        Op::OrderBy { input, vars } => {
            let input = build_stream_profiled(input, ctx, env, profile, next)?;
            Box::new(OrderByStream {
                ctx: Arc::clone(ctx),
                input: Some(input),
                keys: vars.clone(),
                sorted: Vec::new(),
                idx: 0,
            })
        }
        Op::Empty { vars } => Box::new(EmptyStream {
            vars: Arc::new(vars.clone()),
        }),
        Op::TupleDestroy { .. } => {
            return Err(MixError::invalid(
                "tD is handled by the virtual-result layer, not as a stream",
            ))
        }
    };
    Ok(instrument(raw, op.name(), extra, ctx, profile, id))
}

/// Wrap `inner` so pulls/tuples are counted into `profile` and an
/// operator span is emitted on the context's tracer. On the default
/// path (no profile, tracer disabled) the stream is returned untouched
/// — observability costs nothing when off.
fn instrument(
    inner: Box<dyn TStream>,
    kind: &'static str,
    extra: Vec<(&'static str, String)>,
    ctx: &Arc<EvalContext>,
    profile: Option<&Arc<ExecProfile>>,
    id: usize,
) -> Box<dyn TStream> {
    if let Some(p) = profile {
        if !extra.is_empty() {
            let detail = extra
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            p.set_detail(id, detail);
        }
    }
    if profile.is_none() && !ctx.tracer.enabled() {
        return inner;
    }
    Box::new(TracedStream {
        inner,
        tracer: ctx.tracer.clone(),
        profile: profile.cloned(),
        id,
        kind,
        extra,
        span: None,
        started: false,
        pulls: 0,
        tuples: 0,
    })
}

/// The wrapper [`instrument`] installs: opens a span at the first pull
/// (so unnavigated operators leave no trace), counts pulls and tuples,
/// and closes the span with the totals when the pipeline is dropped.
/// During each pull the span is pushed as the tracer's current parent,
/// so work demanded from operators below (and source `sql`/`row`
/// events) nests under it.
struct TracedStream {
    inner: Box<dyn TStream>,
    tracer: TracerHandle,
    profile: Option<Arc<ExecProfile>>,
    id: usize,
    kind: &'static str,
    extra: Vec<(&'static str, String)>,
    span: Option<SpanId>,
    started: bool,
    pulls: u64,
    tuples: u64,
}

impl TStream for TracedStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        self.inner.vars()
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        if !self.started {
            self.started = true;
            if self.tracer.enabled() {
                let mut attrs: Vec<(&'static str, String)> = vec![
                    ("node", self.id.to_string()),
                    ("depth", self.tracer.depth().to_string()),
                ];
                attrs.extend(self.extra.iter().cloned());
                self.span = self.tracer.start_span(self.kind, &attrs);
            }
        }
        self.pulls += 1;
        if let Some(p) = &self.profile {
            p.record_pull(self.id);
        }
        if let Some(s) = self.span {
            self.tracer.push(s);
        }
        let t = self.inner.next();
        if self.span.is_some() {
            self.tracer.pop();
        }
        if let Ok(Some(_)) = &t {
            self.tuples += 1;
            if let Some(p) = &self.profile {
                p.record_tuples(self.id, 1);
            }
        }
        t
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        if self.tracer.enabled() {
            // Spans and per-tuple events must nest exactly as in the
            // tuple-at-a-time path: fall back to per-tuple pulls so
            // traced output is independent of the block size.
            let mut k = 0;
            while k < n {
                match self.next()? {
                    Some(t) => {
                        out.push(t);
                        k += 1;
                    }
                    None => break,
                }
            }
            return Ok(k);
        }
        self.started = true;
        self.pulls += 1;
        if let Some(p) = &self.profile {
            p.record_pull(self.id);
        }
        let k = self.inner.pull_block(out, n)?;
        if k > 0 {
            self.tuples += k as u64;
            if let Some(p) = &self.profile {
                p.record_tuples(self.id, k as u64);
            }
        }
        Ok(k)
    }

    fn prime(&mut self) {
        self.inner.prime();
    }
}

impl Drop for TracedStream {
    fn drop(&mut self) {
        if let Some(s) = self.span.take() {
            self.tracer.end_span(
                s,
                &[
                    ("pulls", self.pulls.to_string()),
                    ("tuples", self.tuples.to_string()),
                ],
            );
        }
    }
}

// ---------------------------------------------------------------------

struct MkSrcStream {
    doc: Arc<dyn NavDoc>,
    source: Name,
    vars: Arc<Vec<Name>>,
    cur: Option<NodeRef>,
    started: bool,
}

impl TStream for MkSrcStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        self.cur = if !self.started {
            self.started = true;
            self.doc.try_first_child(self.doc.root())?
        } else {
            match self.cur {
                Some(c) => self.doc.try_next_sibling(c)?,
                None => None,
            }
        };
        let Some(n) = self.cur else {
            return Ok(None);
        };
        Ok(Some(LTuple::new(
            Arc::clone(&self.vars),
            vec![LVal::Src {
                doc: self.source.clone(),
                node: n,
            }],
        )))
    }
}

/// `mksrc` over an inline view plan: one binding per inner tuple's
/// tD-variable value — lazily, so naive composition still evaluates
/// navigation-driven.
struct MkSrcOverStream {
    inner: Box<dyn TStream>,
    view_var: Name,
    vars: Arc<Vec<Name>>,
}

impl TStream for MkSrcOverStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let Some(t) = self.inner.next()? else {
            return Ok(None);
        };
        let v = t
            .get(&self.view_var)
            .ok_or_else(|| MixError::plan("view tD var unbound in mksrcOver"))?
            .clone();
        Ok(Some(LTuple::new(Arc::clone(&self.vars), vec![v])))
    }
}

struct GetDStream {
    ctx: Arc<EvalContext>,
    input: Box<dyn TStream>,
    from: Name,
    path: mix_xml::LabelPath,
    vars: Arc<Vec<Name>>,
    pending: VecDeque<LTuple>,
}

impl GetDStream {
    /// Expand one input tuple into `pending` (0..m output tuples).
    fn expand(&mut self, t: LTuple) -> Result<()> {
        let base = t
            .get(&self.from)
            .ok_or_else(|| MixError::plan("getD source var unbound"))?
            .clone();
        let hits = eval_path(&self.ctx, &base, &self.path)?;
        for hit in hits {
            let mut vals = t.vals.clone();
            vals.push(hit);
            self.pending
                .push_back(LTuple::new(Arc::clone(&self.vars), vals));
        }
        Ok(())
    }
}

impl TStream for GetDStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Ok(Some(t));
            }
            let Some(t) = self.input.next()? else {
                return Ok(None);
            };
            self.expand(t)?;
        }
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut k = 0;
        let mut buf = Vec::new();
        loop {
            while k < n {
                match self.pending.pop_front() {
                    Some(t) => {
                        out.push(t);
                        k += 1;
                    }
                    None => break,
                }
            }
            if k >= n {
                return Ok(k);
            }
            buf.clear();
            if self.input.pull_block(&mut buf, n - k)? == 0 {
                return Ok(k);
            }
            for t in buf.drain(..) {
                self.expand(t)?;
            }
        }
    }

    fn prime(&mut self) {
        self.input.prime();
    }
}

struct SelectStream {
    ctx: Arc<EvalContext>,
    input: Box<dyn TStream>,
    cond: mix_algebra::Cond,
    buf: Vec<LTuple>,
}

impl TStream for SelectStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        self.input.vars()
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            let Some(t) = self.input.next()? else {
                return Ok(None);
            };
            if cond_holds(&self.ctx, &self.cond, &t) {
                return Ok(Some(t));
            }
        }
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut k = 0;
        while k < n {
            self.buf.clear();
            if self.input.pull_block(&mut self.buf, n - k)? == 0 {
                break;
            }
            for t in self.buf.drain(..) {
                if cond_holds(&self.ctx, &self.cond, &t) {
                    out.push(t);
                    k += 1;
                }
            }
        }
        Ok(k)
    }

    fn prime(&mut self) {
        self.input.prime();
    }
}

/// Projection. Note: unlike the eager π̃, the streaming projection does
/// not eliminate duplicates (stateless operators cannot); rewritten
/// plans rely on `DISTINCT` in the pushed SQL instead.
struct ProjectStream {
    input: Box<dyn TStream>,
    keep: Arc<Vec<Name>>,
    buf: Vec<LTuple>,
}

impl TStream for ProjectStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.keep)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let Some(t) = self.input.next()? else {
            return Ok(None);
        };
        Ok(Some(t.project(&self.keep)?))
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        self.buf.clear();
        let got = self.input.pull_block(&mut self.buf, n)?;
        out.reserve(got);
        for t in self.buf.drain(..) {
            out.push(t.project(&self.keep)?);
        }
        Ok(got)
    }

    fn prime(&mut self) {
        self.input.prime();
    }
}

/// Nested-loop join, lazy in its left (driver) input; the right input
/// is drained when the first left tuple arrives, like the relational
/// executor's build side — but *not* before: an empty driver does zero
/// work on the inner input.
struct JoinStream {
    ctx: Arc<EvalContext>,
    left: Box<dyn TStream>,
    right: Option<Box<dyn TStream>>,
    right_rows: Vec<LTuple>,
    cur_left: Option<LTuple>,
    idx: usize,
    cond: Option<mix_algebra::Cond>,
    vars: Arc<Vec<Name>>,
}

impl TStream for JoinStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if self.cur_left.is_none() {
                if let Some(r) = self.right.as_mut() {
                    // The build side will be drained as soon as a left
                    // tuple arrives; let its prefetcher fetch while the
                    // left pull does mediator work. An empty driver
                    // still never *drains* the inner input.
                    r.prime();
                }
                let Some(l) = self.left.next()? else {
                    return Ok(None);
                };
                self.cur_left = Some(l);
                self.idx = 0;
                if let Some(mut right) = self.right.take() {
                    drain_stream(&mut *right, &mut self.right_rows)?;
                }
            }
            let l = self.cur_left.as_ref().unwrap();
            while self.idx < self.right_rows.len() {
                let r = &self.right_rows[self.idx];
                self.idx += 1;
                self.ctx.stats().inc(Counter::JoinProbes);
                let joined = l.concat(r);
                if self
                    .cond
                    .as_ref()
                    .is_none_or(|c| cond_holds(&self.ctx, c, &joined))
                {
                    return Ok(Some(joined));
                }
            }
            self.cur_left = None;
        }
    }
}

/// Hash equi-join: same contract as [`JoinStream`] (lazy driver,
/// build side drained on first demand, output in left-major order with
/// matches in right-input order), but candidate pairs come from a hash
/// index over the extracted equi-keys instead of the full cross
/// product. The full condition is still re-verified per candidate, so
/// residual conjuncts and hash-normalization collisions are handled
/// uniformly.
struct HashJoinStream {
    ctx: Arc<EvalContext>,
    left: Box<dyn TStream>,
    right: Option<Box<dyn TStream>>,
    index: HashMap<Vec<KeyPart>, Vec<LTuple>>,
    pairs: Vec<mix_algebra::EquiPair>,
    cur_left: Option<LTuple>,
    cur_key: Option<Vec<KeyPart>>,
    idx: usize,
    cond: Option<mix_algebra::Cond>,
    vars: Arc<Vec<Name>>,
    /// Per-side variable→position caches: key extraction is an indexed
    /// load per tuple, not a name search ([`KeyCache`]).
    lkeys: KeyCache,
    rkeys: KeyCache,
}

impl HashJoinStream {
    fn build(&mut self) -> Result<()> {
        let Some(mut right) = self.right.take() else {
            return Ok(());
        };
        self.ctx.stats().inc(Counter::HashBuilds);
        let mut buf = Vec::new();
        drain_stream(&mut *right, &mut buf)?;
        for t in buf {
            // A keyless (Null) tuple can never satisfy the equi-conjuncts.
            if let Some(k) = self.rkeys.key(&self.ctx, &t, &self.pairs) {
                self.index.entry(k).or_default().push(t);
            }
        }
        Ok(())
    }
}

impl TStream for HashJoinStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if self.cur_left.is_none() {
                if let Some(r) = self.right.as_mut() {
                    r.prime();
                }
                let Some(l) = self.left.next()? else {
                    return Ok(None);
                };
                self.build()?;
                self.cur_key = self.lkeys.key(&self.ctx, &l, &self.pairs);
                self.cur_left = Some(l);
                self.idx = 0;
            }
            let l = self.cur_left.as_ref().unwrap();
            if let Some(bucket) = self.cur_key.as_ref().and_then(|k| self.index.get(k)) {
                while self.idx < bucket.len() {
                    let r = &bucket[self.idx];
                    self.idx += 1;
                    self.ctx.stats().inc(Counter::JoinProbes);
                    let joined = l.concat(r);
                    if self
                        .cond
                        .as_ref()
                        .is_none_or(|c| cond_holds(&self.ctx, c, &joined))
                    {
                        return Ok(Some(joined));
                    }
                }
            }
            self.cur_left = None;
        }
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        // Vectorized probe: emit every surviving match of the current
        // left tuple before advancing, so left-major order (and the
        // per-left match order) is preserved exactly.
        let mut k = 0;
        while k < n {
            if self.cur_left.is_none() {
                if let Some(r) = self.right.as_mut() {
                    r.prime();
                }
                let Some(l) = self.left.next()? else { break };
                self.build()?;
                self.cur_key = self.lkeys.key(&self.ctx, &l, &self.pairs);
                self.cur_left = Some(l);
                self.idx = 0;
            }
            let l = self.cur_left.as_ref().unwrap();
            let mut exhausted = true;
            if let Some(bucket) = self.cur_key.as_ref().and_then(|key| self.index.get(key)) {
                while self.idx < bucket.len() {
                    if k >= n {
                        exhausted = false;
                        break;
                    }
                    let r = &bucket[self.idx];
                    self.idx += 1;
                    self.ctx.stats().inc(Counter::JoinProbes);
                    let joined = l.concat(r);
                    if self
                        .cond
                        .as_ref()
                        .is_none_or(|c| cond_holds(&self.ctx, c, &joined))
                    {
                        out.push(joined);
                        k += 1;
                    }
                }
            }
            if exhausted {
                self.cur_left = None;
            }
        }
        Ok(k)
    }
}

struct SemiJoinStream {
    ctx: Arc<EvalContext>,
    kept: Box<dyn TStream>,
    other: Option<Box<dyn TStream>>,
    other_rows: Vec<LTuple>,
    cond: Option<mix_algebra::Cond>,
    keep: Side,
}

impl TStream for SemiJoinStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        self.kept.vars()
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if let Some(o) = self.other.as_mut() {
                o.prime();
            }
            let Some(t) = self.kept.next()? else {
                return Ok(None);
            };
            if let Some(mut other) = self.other.take() {
                drain_stream(&mut *other, &mut self.other_rows)?;
            }
            let stats = self.ctx.stats();
            let matched = self.other_rows.iter().any(|o| {
                stats.inc(Counter::JoinProbes);
                let joined = match self.keep {
                    Side::Left => t.concat(o),
                    Side::Right => o.concat(&t),
                };
                self.cond
                    .as_ref()
                    .is_none_or(|c| cond_holds(&self.ctx, c, &joined))
            });
            if matched {
                return Ok(Some(t));
            }
        }
    }
}

/// Hash semi-join: the kept side streams through; the other side is
/// hashed on first demand and each kept tuple is admitted iff its
/// bucket holds a candidate satisfying the full condition.
struct HashSemiJoinStream {
    ctx: Arc<EvalContext>,
    kept: Box<dyn TStream>,
    other: Option<Box<dyn TStream>>,
    index: HashMap<Vec<KeyPart>, Vec<LTuple>>,
    pairs: Vec<mix_algebra::EquiPair>,
    cond: Option<mix_algebra::Cond>,
    keep: Side,
    kept_keys: KeyCache,
    other_keys: KeyCache,
}

impl HashSemiJoinStream {
    /// Join-side roles: the extracted pairs are oriented by the
    /// *operator's* left/right inputs, while `kept`/`other` are chosen
    /// by `keep`.
    fn kept_side(&self) -> Side {
        self.keep
    }

    fn other_side(&self) -> Side {
        match self.keep {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    fn build(&mut self) -> Result<()> {
        let Some(mut other) = self.other.take() else {
            return Ok(());
        };
        self.ctx.stats().inc(Counter::HashBuilds);
        debug_assert_eq!(self.other_keys.side(), self.other_side());
        let mut buf = Vec::new();
        drain_stream(&mut *other, &mut buf)?;
        for t in buf {
            if let Some(k) = self.other_keys.key(&self.ctx, &t, &self.pairs) {
                self.index.entry(k).or_default().push(t);
            }
        }
        Ok(())
    }
}

impl TStream for HashSemiJoinStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        self.kept.vars()
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if let Some(o) = self.other.as_mut() {
                o.prime();
            }
            let Some(t) = self.kept.next()? else {
                return Ok(None);
            };
            self.build()?;
            debug_assert_eq!(self.kept_keys.side(), self.kept_side());
            let Some(key) = self.kept_keys.key(&self.ctx, &t, &self.pairs) else {
                continue;
            };
            let Some(bucket) = self.index.get(&key) else {
                continue;
            };
            let stats = self.ctx.stats();
            let matched = bucket.iter().any(|o| {
                stats.inc(Counter::JoinProbes);
                let joined = match self.keep {
                    Side::Left => t.concat(o),
                    Side::Right => o.concat(&t),
                };
                self.cond
                    .as_ref()
                    .is_none_or(|c| cond_holds(&self.ctx, c, &joined))
            });
            if matched {
                return Ok(Some(t));
            }
        }
    }
}

enum MapKind {
    CrElt {
        label: Name,
        skolem: Name,
        group: Vec<Name>,
        children: mix_algebra::ChildSpec,
        tag: Name,
    },
    Cat {
        left: mix_algebra::ChildSpec,
        right: mix_algebra::ChildSpec,
    },
}

struct MapStream {
    ctx: Arc<EvalContext>,
    input: Box<dyn TStream>,
    vars: Arc<Vec<Name>>,
    f: MapKind,
    /// Scratch for [`TStream::pull_block`], reused across pulls.
    buf: Vec<LTuple>,
}

impl MapStream {
    fn apply(&self, t: LTuple) -> Result<LTuple> {
        let val = match &self.f {
            MapKind::CrElt {
                label,
                skolem,
                group,
                children,
                tag,
            } => build_element(&self.ctx, &t, label, skolem, group, children, tag)?,
            MapKind::Cat { left, right } => cat_value(&t, left, right)?,
        };
        let mut vals = t.vals;
        vals.push(val);
        Ok(LTuple::new(Arc::clone(&self.vars), vals))
    }
}

impl TStream for MapStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let Some(t) = self.input.next()? else {
            return Ok(None);
        };
        Ok(Some(self.apply(t)?))
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let got = self.input.pull_block(&mut buf, n)?;
        out.reserve(got);
        for t in buf.drain(..) {
            out.push(self.apply(t)?);
        }
        self.buf = buf;
        Ok(got)
    }

    fn prime(&mut self) {
        self.input.prime();
    }
}

// ---------------------------------------------------------------------
// The stateless presorted groupBy (Table 1).
// ---------------------------------------------------------------------

struct GByShared {
    input: Box<dyn TStream>,
    block: BlockBuf,
    lookahead: Option<LTuple>,
    done: bool,
}

impl GByShared {
    fn pull(&mut self) -> Result<Option<LTuple>> {
        if let Some(t) = self.lookahead.take() {
            return Ok(Some(t));
        }
        if self.done {
            return Ok(None);
        }
        match self.block.pull(&mut *self.input)? {
            Some(t) => Ok(Some(t)),
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }
}

struct GByStream {
    ctx: Arc<EvalContext>,
    shared: Arc<Mutex<GByShared>>,
    group: Vec<Name>,
    /// `group[i]`'s slot in the input tuple layout, resolved once —
    /// the per-tuple key checks index `vals` directly instead of
    /// searching the name list for every tuple.
    positions: Vec<Option<usize>>,
    /// `positions` fully resolved and shared: every group's producer
    /// closure clones the `Rc` instead of collecting its own vector.
    pos: Option<Arc<[usize]>>,
    in_vars: Arc<Vec<Name>>,
    vars: Arc<Vec<Name>>,
    /// The group currently being (lazily) exposed; drained before the
    /// next group starts — exactly Table 1's `repeat b0s = r(bs) until
    /// keys differ` skip loop.
    current: Option<Partition>,
}

impl GByStream {
    fn new(
        ctx: Arc<EvalContext>,
        input: Box<dyn TStream>,
        group: Vec<Name>,
        out: Name,
    ) -> GByStream {
        let in_vars = input.vars();
        let vars: Vec<Name> = group.iter().cloned().chain([out]).collect();
        let positions = group
            .iter()
            .map(|g| in_vars.iter().position(|v| v == g))
            .collect();
        let block = BlockBuf::new(ctx.block, ctx.block_ramp());
        GByStream {
            ctx,
            shared: Arc::new(Mutex::new(GByShared {
                input,
                block,
                lookahead: None,
                done: false,
            })),
            group,
            positions,
            pos: None,
            in_vars,
            vars: Arc::new(vars),
            current: None,
        }
    }
}

fn group_key(ctx: &EvalContext, t: &LTuple, group: &[Name]) -> Result<Vec<Oid>> {
    group
        .iter()
        .map(|g| {
            t.get(g)
                .map(|v| ctx.lval_key(v))
                .ok_or_else(|| MixError::plan(format!("group var {} unbound", g.display_var())))
        })
        .collect()
}

impl TStream for GByStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        // Finish the previous group first (skipping forward drains it).
        if let Some(prev) = self.current.take() {
            prev.force()?;
        }
        let Some(seed) = self.shared.lock().unwrap().pull()? else {
            return Ok(None);
        };
        let pos: Arc<[usize]> = match &self.pos {
            Some(p) => Arc::clone(p),
            None => {
                let resolved: Vec<usize> = self
                    .positions
                    .iter()
                    .zip(&self.group)
                    .map(|(p, g)| {
                        p.ok_or_else(|| {
                            MixError::plan(format!("group var {} unbound", g.display_var()))
                        })
                    })
                    .collect::<Result<_>>()?;
                let p: Arc<[usize]> = Arc::from(resolved);
                self.pos = Some(Arc::clone(&p));
                p
            }
        };
        let key: Vec<Oid> = pos
            .iter()
            .map(|&i| self.ctx.lval_key(&seed.vals[i]))
            .collect();
        // Room for the trailing partition binding pushed below.
        let mut group_vals: Vec<LVal> = Vec::with_capacity(pos.len() + 1);
        group_vals.extend(pos.iter().map(|&i| seed.vals[i].clone()));
        // The partition producer: first the seed, then shared tuples
        // while the key matches (compared slot-wise, no per-tuple key
        // vector); a mismatching tuple is pushed back into the
        // lookahead slot.
        let shared = Arc::clone(&self.shared);
        let ctx = Arc::clone(&self.ctx);
        let my_key = key;
        let mut seed = Some(seed);
        let producer = Box::new(move || {
            if let Some(s) = seed.take() {
                return Ok(Some(s));
            }
            let mut sh = shared.lock().unwrap();
            let Some(t) = sh.pull()? else {
                return Ok(None);
            };
            let same = pos
                .iter()
                .zip(&my_key)
                .all(|(&i, k)| ctx.lval_key(&t.vals[i]) == *k);
            if same {
                Ok(Some(t))
            } else {
                sh.lookahead = Some(t);
                Ok(None)
            }
        });
        let part = Partition::new(Arc::clone(&self.in_vars), producer);
        self.current = Some(part.clone());
        let mut vals = group_vals;
        vals.push(LVal::Part(part));
        Ok(Some(LTuple::new(Arc::clone(&self.vars), vals)))
    }
}

/// The buffering (stateful) groupBy: drains and hash-partitions its
/// input up front. Correct on unsorted input; pays full
/// materialization.
struct GByStatefulStream {
    ctx: Arc<EvalContext>,
    input: Option<Box<dyn TStream>>,
    group: Vec<Name>,
    in_vars: Arc<Vec<Name>>,
    vars: Arc<Vec<Name>>,
    groups: Vec<(Vec<LVal>, Vec<LTuple>)>,
    idx: usize,
}

impl GByStatefulStream {
    fn new(
        ctx: Arc<EvalContext>,
        input: Box<dyn TStream>,
        group: Vec<Name>,
        out: Name,
    ) -> GByStatefulStream {
        let in_vars = input.vars();
        let vars: Vec<Name> = group.iter().cloned().chain([out]).collect();
        GByStatefulStream {
            ctx,
            input: Some(input),
            group,
            in_vars,
            vars: Arc::new(vars),
            groups: Vec::new(),
            idx: 0,
        }
    }
}

impl TStream for GByStatefulStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        if let Some(mut input) = self.input.take() {
            let mut map: HashMap<Vec<Oid>, usize> = HashMap::new();
            let mut buf = Vec::new();
            drain_stream(&mut *input, &mut buf)?;
            for t in buf {
                let key = group_key(&self.ctx, &t, &self.group)?;
                let next_slot = self.groups.len();
                let slot = *map.entry(key).or_insert_with(|| next_slot);
                if slot == self.groups.len() {
                    let vals: Vec<LVal> = self
                        .group
                        .iter()
                        .map(|g| {
                            t.get(g)
                                .cloned()
                                .ok_or_else(|| MixError::plan("group var unbound"))
                        })
                        .collect::<Result<_>>()?;
                    self.groups.push((vals, Vec::new()));
                }
                self.groups[slot].1.push(t);
            }
        }
        let Some((vals, tuples)) = self.groups.get(self.idx) else {
            return Ok(None);
        };
        self.idx += 1;
        let part = Partition::done(Arc::clone(&self.in_vars), tuples.clone());
        let mut vals = vals.clone();
        vals.push(LVal::Part(part));
        Ok(Some(LTuple::new(Arc::clone(&self.vars), vals)))
    }
}

/// The hash `gBy`: hash-partitions like [`GByStatefulStream`] (groups
/// in first-seen order, correct on unsorted input) but spools its
/// input *on demand*. Producing the n-th group tuple pulls only until
/// the n-th distinct key appears; forcing a partition drains the rest
/// of the input, since a later tuple may still belong to the group.
/// On key-contiguous input the output is identical to the presorted
/// stream's.
struct GByHashShared {
    ctx: Arc<EvalContext>,
    input: Box<dyn TStream>,
    done: bool,
    group: Vec<Name>,
    groups: Vec<(Vec<LVal>, Vec<LTuple>)>,
    index: HashMap<Vec<Oid>, usize>,
}

impl GByHashShared {
    /// Spool one more input tuple into its group; `false` on
    /// exhaustion.
    fn advance(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        let Some(t) = self.input.next()? else {
            self.done = true;
            return Ok(false);
        };
        let key = group_key(&self.ctx, &t, &self.group)?;
        let slot = match self.index.get(&key) {
            Some(s) => *s,
            None => {
                let s = self.groups.len();
                self.index.insert(key, s);
                let vals: Vec<LVal> = self
                    .group
                    .iter()
                    .map(|g| {
                        t.get(g)
                            .cloned()
                            .ok_or_else(|| MixError::plan("group var unbound"))
                    })
                    .collect::<Result<_>>()?;
                self.groups.push((vals, Vec::new()));
                s
            }
        };
        self.groups[slot].1.push(t);
        Ok(true)
    }
}

struct GByHashStream {
    shared: Arc<Mutex<GByHashShared>>,
    in_vars: Arc<Vec<Name>>,
    vars: Arc<Vec<Name>>,
    next_group: usize,
}

impl GByHashStream {
    fn new(
        ctx: Arc<EvalContext>,
        input: Box<dyn TStream>,
        group: Vec<Name>,
        out: Name,
    ) -> GByHashStream {
        ctx.stats().inc(Counter::HashBuilds);
        let in_vars = input.vars();
        let vars: Vec<Name> = group.iter().cloned().chain([out]).collect();
        GByHashStream {
            shared: Arc::new(Mutex::new(GByHashShared {
                ctx,
                input,
                done: false,
                group,
                groups: Vec::new(),
                index: HashMap::new(),
            })),
            in_vars,
            vars: Arc::new(vars),
            next_group: 0,
        }
    }
}

impl TStream for GByHashStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let g = self.next_group;
        loop {
            let mut sh = self.shared.lock().unwrap();
            if sh.groups.len() > g {
                break;
            }
            if !sh.advance()? {
                return Ok(None);
            }
        }
        self.next_group += 1;
        let group_vals = self.shared.lock().unwrap().groups[g].0.clone();
        let shared = Arc::clone(&self.shared);
        let mut i = 0;
        let producer = Box::new(move || loop {
            let mut sh = shared.lock().unwrap();
            if i < sh.groups[g].1.len() {
                let t = sh.groups[g].1[i].clone();
                i += 1;
                return Ok(Some(t));
            }
            if !sh.advance()? {
                return Ok(None);
            }
        });
        let part = Partition::new(Arc::clone(&self.in_vars), producer);
        let mut vals = group_vals;
        vals.push(LVal::Part(part));
        Ok(Some(LTuple::new(Arc::clone(&self.vars), vals)))
    }
}

// ---------------------------------------------------------------------

struct ApplyStream {
    ctx: Arc<EvalContext>,
    input: Box<dyn TStream>,
    /// The nested plan below its `tD` (destructured at build time).
    nested_input: Arc<Op>,
    nested_var: Name,
    param: Option<Name>,
    env: Env,
    vars: Arc<Vec<Name>>,
    profile: Option<Arc<ExecProfile>>,
    /// Pre-order id of the nested plan's `tD`; every activation numbers
    /// its streams from `nested_base + 1`, so metrics aggregate across
    /// activations.
    nested_base: usize,
}

impl ApplyStream {
    /// Attach the (lazy) collected list to one input tuple. The nested
    /// plan is not compiled until the list is first forced, so
    /// navigation that skips a group's list — counting result elements,
    /// jumping over groups — never pays for the activation.
    fn activate(&self, t: LTuple) -> Result<LTuple> {
        let param = match &self.param {
            Some(p) => {
                let v = t
                    .get(p)
                    .ok_or_else(|| MixError::plan("apply param unbound"))?
                    .clone();
                let LVal::Part(part) = v else {
                    return Err(MixError::plan(format!(
                        "apply parameter {} must be a partition",
                        p.display_var()
                    )));
                };
                Some((p.clone(), part))
            }
            None => None,
        };
        let ctx = Arc::clone(&self.ctx);
        let env = Arc::clone(&self.env);
        let nested_input = Arc::clone(&self.nested_input);
        let nvar = self.nested_var.clone();
        let profile = self.profile.clone();
        let nested_base = self.nested_base;
        let mut state: Option<(Box<dyn TStream>, std::collections::HashSet<mix_xml::Oid>)> = None;
        let lazy = LazyList::new(Box::new(move || {
            // Compile on first demand; a compile failure surfaces as the
            // list's error (get_or_insert_with cannot propagate it).
            if state.is_none() {
                let mut env2 = (*env).clone();
                if let Some((p, part)) = &param {
                    env2.insert(p.clone(), part.clone());
                }
                let mut nid = nested_base + 1;
                let s = build_stream_profiled(
                    &nested_input,
                    &ctx,
                    &Arc::new(env2),
                    profile.as_ref(),
                    &mut nid,
                )?;
                state = Some((s, std::collections::HashSet::new()));
            }
            let (nested, seen) = state.as_mut().expect("just initialized");
            loop {
                let Some(t) = nested.next()? else {
                    return Ok(None);
                };
                let v = t
                    .get(&nvar)
                    .ok_or_else(|| MixError::plan("nested tD var unbound"))?
                    .clone();
                // Set semantics at the nested-tD boundary (see
                // eager::dedup_key).
                if let Some(key) = crate::eager::dedup_key(&ctx, &v) {
                    if !seen.insert(key) {
                        continue;
                    }
                }
                return Ok(Some(v));
            }
        }));
        let mut vals = t.vals;
        vals.push(LVal::List(LList::lazy(lazy)));
        Ok(LTuple::new(Arc::clone(&self.vars), vals))
    }
}

impl TStream for ApplyStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let Some(t) = self.input.next()? else {
            return Ok(None);
        };
        Ok(Some(self.activate(t)?))
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut buf = Vec::with_capacity(n.min(mix_common::MAX_AUTO_BLOCK));
        let got = self.input.pull_block(&mut buf, n)?;
        for t in buf {
            out.push(self.activate(t)?);
        }
        Ok(got)
    }
}

struct NestedSrcStream {
    part: Partition,
    vars: Arc<Vec<Name>>,
    idx: usize,
}

impl TStream for NestedSrcStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        let Some(t) = self.part.get(self.idx)? else {
            return Ok(None);
        };
        self.idx += 1;
        Ok(Some(t))
    }
}

/// Per-binding decode state for the vectorized `rQ` path.
///
/// The tuple-at-a-time decoder ([`rq_row_to_vals`]) rebuilds every
/// wrapper element eagerly, one row at a time. Decoding a whole block
/// at once amortizes three costs the one-row protocol cannot:
///
/// * bindings that rebuild the *same* element from the same columns
///   (`$K`/`$C` after a pushed-down join) share one allocation per row;
/// * consecutive rows with an unchanged element key — runs produced by
///   the pushed `ORDER BY`, e.g. one customer's orders — share the
///   element across the whole run;
/// * an element's child elements materialize on first navigation
///   instead of at decode time, so a drain that never descends into the
///   element allocates one node instead of `1 + cols`.
///
/// Counters are charged exactly as the per-tuple decoder would charge
/// them, so `Off`/`Fixed`/`Auto` report identical totals.
enum RqSlot {
    /// Bind the leaf value at one column.
    Value { col: usize },
    /// Bit-identical to an earlier Element slot: share its value.
    Dup { of: usize, nodes: u64 },
    /// Rebuild a single field element `<col>value</col>`.
    FieldElement {
        element: Name,
        col: usize,
        key: Vec<usize>,
    },
    /// Rebuild a wrapper element, caching the last run.
    Element {
        element: Name,
        cols: Arc<Vec<(Name, usize)>>,
        key: Vec<usize>,
        /// The `NodesBuilt` charge per row: the element plus its
        /// (deferred) children, matching [`rq_row_to_vals`].
        nodes: u64,
        last_key: String,
        last: Option<LVal>,
    },
}

/// Stateless child generator for elements decoded from one column
/// block, shared by every fresh element the block yields — a deferred
/// child list carries no per-element producer state (see
/// [`ChildPart::Gen`]).
///
/// [`ChildPart::Gen`]: crate::lval::ChildPart::Gen
struct BlockKids {
    block: Arc<ColumnBlock>,
    cols: Arc<Vec<(Name, usize)>>,
}

impl KidGen for BlockKids {
    fn count(&self) -> usize {
        self.cols.len()
    }

    fn kid(&self, row: usize, i: usize, parent: &Oid) -> LVal {
        let (cname, pos) = &self.cols[i];
        let v = if *pos < self.block.arity() {
            self.block.value_at(row, *pos)
        } else {
            Value::Null
        };
        let key_text = parent.as_key().unwrap_or("");
        LVal::Elem(Arc::new(LElem {
            label: cname.clone(),
            oid: Oid::key(format!("{key_text}.{cname}")),
            children: LList::one(LVal::Leaf(v)),
        }))
    }
}

/// Row-shaped twin of [`BlockKids`] for the per-row decode path.
struct RowKids {
    row: Arc<[Value]>,
    cols: Arc<Vec<(Name, usize)>>,
}

impl KidGen for RowKids {
    fn count(&self) -> usize {
        self.cols.len()
    }

    fn kid(&self, _row: usize, i: usize, parent: &Oid) -> LVal {
        let (cname, pos) = &self.cols[i];
        let v = self.row.get(*pos).cloned().unwrap_or(Value::Null);
        let key_text = parent.as_key().unwrap_or("");
        LVal::Elem(Arc::new(LElem {
            label: cname.clone(),
            oid: Oid::key(format!("{key_text}.{cname}")),
            children: LList::one(LVal::Leaf(v)),
        }))
    }
}

struct RqDecoder {
    slots: Vec<RqSlot>,
    /// Scratch for key rendering (reused across rows).
    keybuf: String,
}

impl RqDecoder {
    fn new(map: &[mix_algebra::RqBinding]) -> RqDecoder {
        use mix_algebra::RqKind;
        let mut slots: Vec<RqSlot> = Vec::with_capacity(map.len());
        for (i, b) in map.iter().enumerate() {
            let slot = match &b.kind {
                RqKind::Value { col } => RqSlot::Value { col: *col },
                RqKind::FieldElement { element, col, key } => RqSlot::FieldElement {
                    element: element.clone(),
                    col: *col,
                    key: key.clone(),
                },
                RqKind::Element { element, cols, key } => {
                    let dup = map[..i].iter().position(|e| e.kind == b.kind);
                    let nodes = 1 + cols.len() as u64;
                    match dup {
                        Some(of) => RqSlot::Dup { of, nodes },
                        None => RqSlot::Element {
                            element: element.clone(),
                            cols: Arc::new(cols.clone()),
                            key: key.clone(),
                            nodes,
                            last_key: String::new(),
                            last: None,
                        },
                    }
                }
            };
            slots.push(slot);
        }
        RqDecoder {
            slots,
            keybuf: String::new(),
        }
    }

    fn decode(&mut self, ctx: &EvalContext, row: &Arc<[Value]>) -> Vec<LVal> {
        use std::fmt::Write as _;
        // Headroom: downstream `crElt`/`cat` stages extend the binding
        // list in place (one push per stage), so an exact-capacity Vec
        // is guaranteed one realloc per tuple.
        let mut out: Vec<LVal> = Vec::with_capacity(self.slots.len() + 2);
        for slot in &mut self.slots {
            let v = match slot {
                RqSlot::Value { col } => LVal::Leaf(row.get(*col).cloned().unwrap_or(Value::Null)),
                RqSlot::FieldElement { element, col, key } => {
                    self.keybuf.clear();
                    for (i, &k) in key.iter().enumerate() {
                        if i > 0 {
                            self.keybuf.push('|');
                        }
                        match row.get(k) {
                            Some(v) => write!(self.keybuf, "{v}").expect("write to String"),
                            None => {
                                write!(self.keybuf, "{}", Value::Null).expect("write to String")
                            }
                        }
                    }
                    let v = row.get(*col).cloned().unwrap_or(Value::Null);
                    ctx.stats().inc(Counter::NodesBuilt);
                    LVal::Elem(Arc::new(LElem {
                        label: element.clone(),
                        oid: Oid::key(format!("{}.{element}", self.keybuf)),
                        children: LList::one(LVal::Leaf(v)),
                    }))
                }
                RqSlot::Dup { of, nodes } => {
                    ctx.stats().add(Counter::NodesBuilt, *nodes);
                    out[*of].clone()
                }
                RqSlot::Element {
                    element,
                    cols,
                    key,
                    nodes,
                    last_key,
                    last,
                } => {
                    self.keybuf.clear();
                    for (i, &k) in key.iter().enumerate() {
                        if i > 0 {
                            self.keybuf.push('|');
                        }
                        match row.get(k) {
                            Some(v) => write!(self.keybuf, "{v}").expect("write to String"),
                            None => {
                                write!(self.keybuf, "{}", Value::Null).expect("write to String")
                            }
                        }
                    }
                    ctx.stats().add(Counter::NodesBuilt, *nodes);
                    match last {
                        Some(v) if *last_key == self.keybuf => v.clone(),
                        _ => {
                            // One key-string allocation per fresh
                            // element: the oid owns it, and the child
                            // generator reads it back through the
                            // shared parent oid; the run cache takes
                            // the scratch buffer by swap.
                            let oid = Oid::key(self.keybuf.clone());
                            let kids: Arc<dyn KidGen> = Arc::new(RowKids {
                                row: Arc::clone(row),
                                cols: Arc::clone(cols),
                            });
                            let v = LVal::Elem(Arc::new(LElem {
                                label: element.clone(),
                                oid: oid.clone(),
                                children: LList::generated(kids, 0, oid),
                            }));
                            std::mem::swap(last_key, &mut self.keybuf);
                            *last = Some(v.clone());
                            v
                        }
                    }
                }
            };
            out.push(v);
        }
        out
    }

    /// Decode a whole typed column block without materializing rows.
    ///
    /// Identical output and counter charges to calling [`Self::decode`]
    /// on each row, plus two batch-only savings: element run detection
    /// compares adjacent key *cells* ([`ColumnBlock::cell_eq`], no
    /// `Display` rendering on the fast path), and each element's lazy
    /// children borrow the shared block (`Arc<ColumnBlock>`) instead of
    /// a per-row `Arc<[Value]>` — one skolem oid minted per run, one
    /// block allocation per `cols.len()` children closures.
    ///
    /// Cell equality is stricter than rendered-key equality, so a false
    /// negative only builds a fresh element with the same oid, label
    /// and children — observationally identical, just unshared.
    fn decode_block(
        &mut self,
        ctx: &EvalContext,
        block: &Arc<ColumnBlock>,
        vars: &Arc<Vec<Name>>,
        out: &mut VecDeque<LTuple>,
    ) {
        use std::fmt::Write as _;
        let arity = block.arity();
        // One shared child generator per `Element` slot for this whole
        // block: every fresh element clones the `Rc` instead of
        // carrying its own producer.
        let mut gens: Vec<Option<Arc<dyn KidGen>>> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            gens.push(match slot {
                RqSlot::Element { cols, .. } => Some(Arc::new(BlockKids {
                    block: Arc::clone(block),
                    cols: Arc::clone(cols),
                })),
                _ => None,
            });
        }
        for r in 0..block.len() {
            // Same extension headroom as `decode`.
            let mut vals: Vec<LVal> = Vec::with_capacity(self.slots.len() + 2);
            for (s, slot) in self.slots.iter_mut().enumerate() {
                let v = match slot {
                    RqSlot::Value { col } => LVal::Leaf(if *col < arity {
                        block.value_at(r, *col)
                    } else {
                        Value::Null
                    }),
                    RqSlot::FieldElement { element, col, key } => {
                        self.keybuf.clear();
                        for (i, &k) in key.iter().enumerate() {
                            if i > 0 {
                                self.keybuf.push('|');
                            }
                            let kv = if k < arity {
                                block.value_at(r, k)
                            } else {
                                Value::Null
                            };
                            write!(self.keybuf, "{kv}").expect("write to String");
                        }
                        let v = if *col < arity {
                            block.value_at(r, *col)
                        } else {
                            Value::Null
                        };
                        ctx.stats().inc(Counter::NodesBuilt);
                        LVal::Elem(Arc::new(LElem {
                            label: element.clone(),
                            oid: Oid::key(format!("{}.{element}", self.keybuf)),
                            children: LList::one(LVal::Leaf(v)),
                        }))
                    }
                    RqSlot::Dup { of, nodes } => {
                        ctx.stats().add(Counter::NodesBuilt, *nodes);
                        vals[*of].clone()
                    }
                    RqSlot::Element {
                        element,
                        cols: _,
                        key,
                        nodes,
                        last_key,
                        last,
                    } => {
                        ctx.stats().add(Counter::NodesBuilt, *nodes);
                        let run = r > 0
                            && last.is_some()
                            && key.iter().all(|&k| k < arity && block.cell_eq(r - 1, r, k));
                        if run {
                            last.clone().expect("cached run element")
                        } else {
                            self.keybuf.clear();
                            for (i, &k) in key.iter().enumerate() {
                                if i > 0 {
                                    self.keybuf.push('|');
                                }
                                let kv = if k < arity {
                                    block.value_at(r, k)
                                } else {
                                    Value::Null
                                };
                                write!(self.keybuf, "{kv}").expect("write to String");
                            }
                            match last {
                                // Run continues across a block seam:
                                // the cached key text still matches.
                                Some(v) if *last_key == self.keybuf => v.clone(),
                                _ => {
                                    // Single key-string allocation per
                                    // fresh element, as in `decode`.
                                    let oid = Oid::key(self.keybuf.clone());
                                    let gen = Arc::clone(
                                        gens[s].as_ref().expect("element slot generator"),
                                    );
                                    let v = LVal::Elem(Arc::new(LElem {
                                        label: element.clone(),
                                        oid: oid.clone(),
                                        children: LList::generated(gen, r as u32, oid),
                                    }));
                                    std::mem::swap(last_key, &mut self.keybuf);
                                    *last = Some(v.clone());
                                    v
                                }
                            }
                        }
                    }
                };
                vals.push(v);
            }
            out.push_back(LTuple::new(Arc::clone(vars), vals));
        }
    }
}

struct RelQueryStream {
    ctx: Arc<EvalContext>,
    cursor: Cursor,
    map: Vec<mix_algebra::RqBinding>,
    vars: Arc<Vec<Name>>,
    /// Converted tuples fetched ahead of consumption (empty under
    /// [`mix_common::BlockPolicy::Off`], where the ramp pins fetches
    /// to one row).
    pending: VecDeque<LTuple>,
    ramp: mix_common::BlockRamp,
    rbuf: Vec<mix_relational::Row>,
    /// Vectorized decoder; `None` under `Off`, which keeps the
    /// paper-faithful per-row decode path untouched.
    decoder: Option<RqDecoder>,
    /// Pull typed column blocks from the cursor and decode them
    /// column-aware (`false` = boxed-row ablation; implies a decoder).
    columnar: bool,
    /// Profile + node id so retry attempts are attributed to this `rQ`
    /// node in EXPLAIN ANALYZE output.
    profile: Option<Arc<ExecProfile>>,
    id: usize,
    /// Cursor retries already recorded into the profile.
    counted_retries: u64,
}

impl RelQueryStream {
    /// Fetch the next ramp-sized block from the server cursor and
    /// convert it; `false` on exhaustion. Transient backend faults are
    /// retried under the context's [`mix_common::RetryPolicy`] —
    /// re-requesting the same block, so the ramp is undisturbed.
    fn refill(&mut self) -> Result<bool> {
        let want = self.ramp.next_size();
        // The cursor knows how many rows can still come; cap the
        // preallocation so a nearly-drained cursor doesn't reserve a
        // full ramp block it will never fill.
        let (_, hi) = self.cursor.size_hint();
        let cap = hi.map_or(want, |h| want.min(h.max(1)));
        if self.columnar {
            let mut block = ColumnBlock::new(self.cursor.arity());
            block.reserve(cap);
            let got = self
                .cursor
                .next_cblock_retrying(&mut block, want, &self.ctx.retry);
            self.note_retries();
            let got = got?;
            if got == 0 {
                return Ok(false);
            }
            self.ctx.note_block(got);
            self.ctx
                .stats()
                .add(Counter::CellsDecoded, (got * block.arity()) as u64);
            if let Some(p) = &self.profile {
                p.record_alloc(self.id, block.byte_size());
            }
            self.pending.reserve(got);
            // The block is shared with every element's lazy children,
            // so each refill adopts a fresh one — no buffer reuse.
            let block = Arc::new(block);
            self.decoder
                .as_mut()
                .expect("columnar rQ implies a block decoder")
                .decode_block(&self.ctx, &block, &self.vars, &mut self.pending);
            return Ok(true);
        }
        self.rbuf.clear();
        self.rbuf.reserve(cap);
        let got = self
            .cursor
            .next_block_retrying(&mut self.rbuf, want, &self.ctx.retry);
        self.note_retries();
        let got = got?;
        if got == 0 {
            return Ok(false);
        }
        // Lift the session's Auto-ramp floor: a later cursor in this
        // session skips the warm-up this drain already paid for.
        self.ctx.note_block(got);
        // Cell accounting is representation-independent: both paths
        // charge one cell per column per decoded row.
        self.ctx
            .stats()
            .add(Counter::CellsDecoded, (got * self.cursor.arity()) as u64);
        self.pending.reserve(got);
        match &mut self.decoder {
            Some(dec) => {
                for row in self.rbuf.drain(..) {
                    let row: Arc<[Value]> = Arc::from(row);
                    self.pending.push_back(LTuple::new(
                        Arc::clone(&self.vars),
                        dec.decode(&self.ctx, &row),
                    ));
                }
            }
            None => {
                for row in &self.rbuf {
                    self.pending.push_back(LTuple::new(
                        Arc::clone(&self.vars),
                        rq_row_to_vals(&self.ctx, &self.map, row),
                    ));
                }
            }
        }
        Ok(true)
    }

    /// Record newly observed cursor retries into the profile, once.
    fn note_retries(&mut self) {
        if let Some(p) = &self.profile {
            let total = self.cursor.retries();
            if total > self.counted_retries {
                p.record_retries(self.id, total - self.counted_retries);
                self.counted_retries = total;
            }
        }
    }
}

impl TStream for RelQueryStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Ok(Some(t));
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        let mut k = 0;
        while k < n {
            match self.pending.pop_front() {
                Some(t) => {
                    out.push(t);
                    k += 1;
                }
                None => {
                    if !self.refill()? {
                        break;
                    }
                }
            }
        }
        Ok(k)
    }

    fn prime(&mut self) {
        self.cursor.prime_prefetch();
    }
}

/// `orderBy` is inherently blocking: it drains its input and sorts by
/// the node ids of the listed variables.
struct OrderByStream {
    ctx: Arc<EvalContext>,
    input: Option<Box<dyn TStream>>,
    keys: Vec<Name>,
    sorted: Vec<LTuple>,
    idx: usize,
}

impl TStream for OrderByStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        match &self.input {
            Some(i) => i.vars(),
            None => self
                .sorted
                .first()
                .map(|t| Arc::clone(&t.vars))
                .unwrap_or_else(|| Arc::new(Vec::new())),
        }
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        self.force()?;
        let Some(t) = self.sorted.get(self.idx) else {
            return Ok(None);
        };
        self.idx += 1;
        Ok(Some(t.clone()))
    }

    fn pull_block(&mut self, out: &mut Vec<LTuple>, n: usize) -> Result<usize> {
        self.force()?;
        let end = (self.idx + n).min(self.sorted.len());
        let k = end - self.idx;
        out.extend_from_slice(&self.sorted[self.idx..end]);
        self.idx = end;
        Ok(k)
    }
}

impl OrderByStream {
    /// Drain and sort the input (once, in blocks).
    fn force(&mut self) -> Result<()> {
        if let Some(mut input) = self.input.take() {
            drain_stream(&mut *input, &mut self.sorted)?;
            let ctx = Arc::clone(&self.ctx);
            let keys = self.keys.clone();
            self.sorted.sort_by(|a, b| {
                for k in &keys {
                    let (x, y) = (a.get(k), b.get(k));
                    let o = match (x, y) {
                        (Some(x), Some(y)) => ctx.lval_oid(x).total_cmp(&ctx.lval_oid(y)),
                        _ => std::cmp::Ordering::Equal,
                    };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        Ok(())
    }
}

struct EmptyStream {
    vars: Arc<Vec<Name>>,
}

impl TStream for EmptyStream {
    fn vars(&self) -> Arc<Vec<Name>> {
        Arc::clone(&self.vars)
    }

    fn next(&mut self) -> Result<Option<LTuple>> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AccessMode;
    use mix_algebra::translate;
    use mix_wrapper::fig2_catalog;
    use mix_xquery::parse_query;

    fn lazy_ctx() -> Arc<EvalContext> {
        Arc::new(EvalContext::new(fig2_catalog().0, AccessMode::Lazy))
    }

    fn plan_input(q: &str) -> Op {
        let plan = translate(&parse_query(q).unwrap()).unwrap();
        match plan.root {
            Op::TupleDestroy { input, .. } => *input,
            other => other,
        }
    }

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    #[test]
    fn mksrc_pulls_one_tuple_per_next() {
        // Paper-faithful mode: the source ships exactly one tuple per
        // navigation pull (Auto would prefetch ahead after the first).
        let mut c = EvalContext::new(fig2_catalog().0, AccessMode::Lazy);
        c.block = mix_common::BlockPolicy::Off;
        let ctx = Arc::new(c);
        let op = Op::MkSrc {
            source: Name::new("root2"),
            var: Name::new("O"),
        };
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let stats = ctx.catalog().database("db1").unwrap().stats().clone();
        assert_eq!(stats.get(Counter::TuplesShipped), 0);
        assert!(s.next().unwrap().is_some());
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        assert!(s.next().unwrap().is_some());
        assert_eq!(stats.get(Counter::TuplesShipped), 2);
        assert!(s.next().unwrap().is_some());
        assert!(s.next().unwrap().is_none());
        assert_eq!(stats.get(Counter::TuplesShipped), 3);
    }

    #[test]
    fn select_filters_lazily() {
        let ctx = lazy_ctx();
        let op = plan_input("FOR $O IN document(root2)/order WHERE $O/value > 2000 RETURN $O");
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let mut n = 0;
        while s.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn q1_stream_produces_custrec_per_customer() {
        let ctx = lazy_ctx();
        let op = plan_input(Q1);
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let t1 = s.next().unwrap().unwrap();
        let v1 = t1.get(&Name::new("V")).unwrap();
        assert_eq!(ctx.lval_oid(v1).to_string(), "&($V,f(&DEF345))");
        let t2 = s.next().unwrap().unwrap();
        let v2 = t2.get(&Name::new("V")).unwrap();
        assert_eq!(ctx.lval_oid(v2).to_string(), "&($V,f(&XYZ123))");
        assert!(s.next().unwrap().is_none());
    }

    #[test]
    fn stateless_gby_partitions_by_group() {
        let ctx = lazy_ctx();
        let op = plan_input(Q1);
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let a = s.next().unwrap().unwrap();
        let LVal::Part(pa) = a.get(&Name::new("X")).unwrap().clone() else {
            panic!()
        };
        assert_eq!(pa.force().unwrap().len(), 1); // DEF345 has one order
        let b = s.next().unwrap().unwrap();
        let LVal::Part(pb) = b.get(&Name::new("X")).unwrap().clone() else {
            panic!()
        };
        assert_eq!(pb.force().unwrap().len(), 2); // XYZ123 has two
    }

    /// A catalog whose order stream interleaves customer ids
    /// (XYZ123, DEF345, XYZ123 in orid order) — unsorted group keys.
    fn interleaved_catalog() -> mix_wrapper::Catalog {
        let mut db = mix_relational::fixtures::sample_db();
        // orid 90000 sorts after DEF345's 99111? No: 90000 < 99111, so
        // the orid order is 28904(XYZ), 87456(XYZ), 90000(DEF), 99111(XYZ).
        db.insert(
            "orders",
            vec![
                mix_common::Value::Int(90000),
                mix_common::Value::str("DEF345"),
                mix_common::Value::Int(7),
            ],
        )
        .unwrap();
        db.insert(
            "orders",
            vec![
                mix_common::Value::Int(99999),
                mix_common::Value::str("XYZ123"),
                mix_common::Value::Int(8),
            ],
        )
        .unwrap();
        mix_wrapper::wrap_customers_orders(db)
    }

    #[test]
    fn stateful_gby_handles_unsorted_input() {
        let ctx = Arc::new({
            let mut c = EvalContext::new(interleaved_catalog(), AccessMode::Lazy);
            c.gby_mode = GByMode::Stateful;
            c
        });
        // Group orders by the cid *value* (data() leaf): keys run
        // XYZ123, XYZ123, DEF345, XYZ123 — not presorted.
        let op = plan_input(
            "FOR $O IN document(root2)/order $B IN $O/cid/data() \
                             RETURN <g> $O </g> {$B}",
        );
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let mut groups = 0;
        while s.next().unwrap().is_some() {
            groups += 1;
        }
        assert_eq!(groups, 2);
    }

    #[test]
    fn stateless_gby_fragments_unsorted_input() {
        // The presorted stateless gBy on unsorted keys fragments groups
        // (Section 4: it *assumes* sorted input) — the documented
        // trade-off the E7 ablation measures. Forced explicitly:
        // `Auto` would refuse this plan (the group key comes from a
        // data() path) and pick the hash implementation.
        let ctx = Arc::new({
            let mut c = EvalContext::new(interleaved_catalog(), AccessMode::Lazy);
            c.gby_mode = GByMode::StatelessPresorted;
            c
        });
        let op = plan_input(
            "FOR $O IN document(root2)/order $B IN $O/cid/data() \
                             RETURN <g> $O </g> {$B}",
        );
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let mut groups = 0;
        while s.next().unwrap().is_some() {
            groups += 1;
        }
        assert_eq!(groups, 3);
    }

    #[test]
    fn hash_gby_handles_unsorted_input() {
        // Default mode is Auto; the group key comes from a data()
        // path, so the analysis refuses presorted and picks hash —
        // which groups the interleaved keys correctly.
        let ctx = Arc::new(EvalContext::new(interleaved_catalog(), AccessMode::Lazy));
        let op = plan_input(
            "FOR $O IN document(root2)/order $B IN $O/cid/data() \
                             RETURN <g> $O </g> {$B}",
        );
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let a = s.next().unwrap().unwrap();
        let LVal::Part(pa) = a.get(&Name::new("X")).unwrap().clone() else {
            panic!()
        };
        let b = s.next().unwrap().unwrap();
        let LVal::Part(pb) = b.get(&Name::new("X")).unwrap().clone() else {
            panic!()
        };
        assert!(s.next().unwrap().is_none());
        // First-seen order: XYZ123 (28904, 87456, 99999), then
        // DEF345 (90000, 99111).
        assert_eq!(pa.force().unwrap().len(), 3);
        assert_eq!(pb.force().unwrap().len(), 2);
    }

    #[test]
    fn hash_gby_first_group_is_lazy() {
        let ctx = Arc::new({
            let mut c = EvalContext::new(interleaved_catalog(), AccessMode::Lazy);
            c.gby_mode = GByMode::Hash;
            c
        });
        let stats = ctx.catalog().database("db1").unwrap().stats().clone();
        stats.reset();
        let op = plan_input(
            "FOR $O IN document(root2)/order $B IN $O/cid/data() \
                             RETURN <g> $O </g> {$B}",
        );
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let _first = s.next().unwrap().unwrap();
        let after_first = stats.get(Counter::TuplesShipped);
        while s.next().unwrap().is_some() {}
        // The first group tuple must not drain the order source.
        assert!(
            stats.get(Counter::TuplesShipped) > after_first,
            "first={after_first}, total={}",
            stats.get(Counter::TuplesShipped)
        );
    }

    #[test]
    fn apply_collection_is_lazy() {
        let ctx = lazy_ctx();
        let op = plan_input(Q1);
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let t = s.next().unwrap().unwrap();
        let LVal::List(l) = t.get(&Name::new("Z")).unwrap().clone() else {
            panic!()
        };
        let first = l.get(0).unwrap().unwrap();
        assert_eq!(ctx.lval_label(&first).unwrap().as_str(), "OrderInfo");
        assert!(l.get(1).unwrap().is_none()); // DEF345 has exactly one order
    }

    #[test]
    fn q1_first_custrec_does_not_drain_sources() {
        // The laziness claim: producing the first CustRec tuple must not
        // ship the whole join input.
        let ctx = lazy_ctx();
        let stats = ctx.catalog().database("db1").unwrap().stats().clone();
        stats.reset();
        let op = plan_input(Q1);
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let _first = s.next().unwrap().unwrap();
        let after_first = stats.get(Counter::TuplesShipped);
        while s.next().unwrap().is_some() {}
        // Draining the rest pulls at least one more customer tuple.
        assert!(
            stats.get(Counter::TuplesShipped) > after_first,
            "first={after_first}, total={}",
            stats.get(Counter::TuplesShipped)
        );
    }

    #[test]
    fn empty_and_project_streams() {
        let ctx = lazy_ctx();
        let mut s = build_stream(
            &Op::Empty {
                vars: vec![Name::new("X")],
            },
            &ctx,
            &Arc::new(HashMap::new()),
        )
        .unwrap();
        assert!(s.next().unwrap().is_none());

        let op = Op::Project {
            input: Box::new(Op::MkSrc {
                source: Name::new("root1"),
                var: Name::new("C"),
            }),
            vars: vec![Name::new("C")],
        };
        let mut s = build_stream(&op, &ctx, &Arc::new(HashMap::new())).unwrap();
        let t = s.next().unwrap().unwrap();
        assert_eq!(t.vars.len(), 1);
    }
}
