//! The virtual result document.
//!
//! "The client receives a virtual answer document (QDOM object) in
//! response to his query. This document is not really computed or
//! transferred into the client memory until navigation commands request
//! a part of it." — [`VirtualResult`] is that object. It implements
//! [`NavDoc`], so the client navigates it exactly like a main-memory
//! document, while every `d`/`r` step expands at most one node:
//!
//! * a step among the root's children pulls one tuple from the plan's
//!   top stream;
//! * a step into a source-copied subtree delegates to the (lazy)
//!   source view;
//! * a step among a constructed element's children forces its child
//!   list one element further (which may pull group-partition tuples,
//!   which may pull source tuples, …).
//!
//! Expanded nodes are kept in an arena so node ids stay valid for the
//! whole session; the arena size is therefore the *navigation
//! high-watermark*, the memory metric of experiment E1.

use crate::context::EvalContext;
use crate::lval::{LList, LVal};
use crate::stream::{build_stream_profiled, TStream};
use mix_algebra::Op;
use mix_common::{Counter, MixError, Name, Result, Value};
use mix_obs::ExecProfile;
use mix_xml::{NavDoc, NodeRef, Oid};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// A lazily materialized view of an XMAS plan's result.
pub struct VirtualResult {
    ctx: Arc<EvalContext>,
    name: Name,
    profile: Arc<ExecProfile>,
    inner: Mutex<Inner>,
}

struct Inner {
    nodes: Vec<VNode>,
    /// The plan's top stream; `None` once exhausted (or for `Empty`).
    stream: Option<Box<dyn TStream>>,
    td_var: Name,
    /// Vertex ids already exported at the root (tD set semantics).
    seen_root: std::collections::HashSet<mix_xml::Oid>,
    /// Tuples prefetched ahead of root navigation (adaptive block
    /// fetching; empty under [`mix_common::BlockPolicy::Off`]).
    pending: std::collections::VecDeque<crate::lval::LTuple>,
    ramp: mix_common::BlockRamp,
    /// A backend/plan failure that stopped expansion. Nodes
    /// materialized before it stay navigable; asking for more past the
    /// failure point re-reports it.
    error: Option<MixError>,
}

struct VNode {
    parent: Option<u32>,
    /// Index among the parent's children.
    index: usize,
    kind: VKind,
    kids: Vec<u32>,
    kids_done: bool,
}

enum VKind {
    /// The result root (`list`, id `&rootv`).
    Root,
    /// A source node, navigated in place.
    Src { doc: Name, node: NodeRef },
    /// A constructed element; children come from its (lazy) list.
    Built { label: Name, oid: Oid, list: LList },
    /// A list value exported as a `list`-labeled node.
    ListNode { list: LList },
    /// A text leaf.
    Leaf { value: Value },
}

impl VirtualResult {
    /// Build the virtual result of `plan` (rooted at `tD`). No source
    /// work happens yet beyond compiling the streams.
    pub fn new(plan: &mix_algebra::Plan, ctx: Arc<EvalContext>) -> Result<VirtualResult> {
        let profile = Arc::new(ExecProfile::new());
        let (stream, td_var, name) = match &plan.root {
            Op::TupleDestroy { input, var, root } => {
                // The plan-root tD is node 0; the stream tree numbers
                // from 1 in the same pre-order as the EXPLAIN renderer.
                let mut next = 1usize;
                let s = build_stream_profiled(
                    input,
                    &ctx,
                    &Arc::new(HashMap::new()),
                    Some(&profile),
                    &mut next,
                )?;
                (
                    Some(s),
                    var.clone(),
                    root.clone().unwrap_or_else(|| Name::new("result")),
                )
            }
            Op::Empty { .. } => (None, Name::new("_"), Name::new("rootv")),
            other => {
                return Err(MixError::invalid(format!(
                    "plan root must be tD, found {}",
                    other.name()
                )))
            }
        };
        let root = VNode {
            parent: None,
            index: 0,
            kind: VKind::Root,
            kids: Vec::new(),
            kids_done: false,
        };
        let ramp = ctx.block_ramp();
        Ok(VirtualResult {
            ctx,
            name,
            profile,
            inner: Mutex::new(Inner {
                nodes: vec![root],
                stream,
                td_var,
                seen_root: std::collections::HashSet::new(),
                pending: std::collections::VecDeque::new(),
                ramp,
                error: None,
            }),
        })
    }

    /// The evaluation context (shared stats, sources).
    pub fn ctx(&self) -> &Arc<EvalContext> {
        &self.ctx
    }

    /// Per-node execution metrics, accumulated as navigation drives the
    /// plan ([`crate::explain::render_annotated`] joins them back onto
    /// the plan tree).
    pub fn profile(&self) -> &Arc<ExecProfile> {
        &self.profile
    }

    /// Number of arena nodes materialized so far — the navigation
    /// high-watermark.
    pub fn nodes_materialized(&self) -> usize {
        self.inner.lock().unwrap().nodes.len()
    }

    /// The failure that stopped result expansion, if one occurred.
    /// Already-materialized nodes remain navigable regardless.
    pub fn last_error(&self) -> Option<MixError> {
        self.inner.lock().unwrap().error.clone()
    }

    /// The decontextualization payload for a node: its oid plus the
    /// oids of its ancestors (nearest first, excluding the root).
    /// Skolem oids in this chain carry the bound variable and the
    /// group-by keys (Section 5).
    pub fn context(&self, n: NodeRef) -> NodeContext {
        let inner = self.inner.lock().unwrap();
        let oid = self.oid_inner(&inner, n);
        let mut ancestors = Vec::new();
        let mut cur = inner.nodes[n.0 as usize].parent;
        while let Some(p) = cur {
            if p == 0 {
                break;
            }
            ancestors.push(self.oid_inner(&inner, NodeRef(p)));
            cur = inner.nodes[p as usize].parent;
        }
        NodeContext { oid, ancestors }
    }

    fn oid_inner(&self, inner: &Inner, n: NodeRef) -> Oid {
        match &inner.nodes[n.0 as usize].kind {
            VKind::Root => Oid::root(self.name.clone()),
            VKind::Src { doc, node } => match self.ctx.doc(doc) {
                Ok(d) => d.oid(*node),
                Err(_) => Oid::surrogate(u64::MAX),
            },
            VKind::Built { oid, .. } => oid.clone(),
            VKind::ListNode { .. } => Oid::surrogate(n.0 as u64),
            VKind::Leaf { value } => Oid::lit(value.clone()),
        }
    }

    fn wrap(&self, inner: &mut Inner, val: LVal, parent: u32, index: usize) -> u32 {
        self.ctx.stats().inc(Counter::NodesBuilt);
        let kind = match val {
            LVal::Src { doc, node } => VKind::Src { doc, node },
            LVal::Leaf(v) => VKind::Leaf { value: v },
            LVal::Elem(e) => VKind::Built {
                label: e.label.clone(),
                oid: e.oid.clone(),
                list: e.children.clone(),
            },
            LVal::List(l) => VKind::ListNode { list: l },
            LVal::Part(_) => {
                // Partitions never survive tD in validated plans.
                VKind::ListNode {
                    list: LList::empty(),
                }
            }
        };
        let id = inner.nodes.len() as u32;
        inner.nodes.push(VNode {
            parent: Some(parent),
            index,
            kind,
            kids: Vec::new(),
            kids_done: false,
        });
        inner.nodes[parent as usize].kids.push(id);
        id
    }

    /// Produce (and cache) the parent's `i`-th child. A backend
    /// failure is latched by the producer that hit it: cached children
    /// stay reachable, subtrees whose producers are unaffected keep
    /// expanding, and only asking past the failed producer's
    /// materialized prefix re-reports the error.
    fn kid(&self, parent: u32, i: usize) -> Result<Option<NodeRef>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let node = &inner.nodes[parent as usize];
            if let Some(&k) = node.kids.get(i) {
                return Ok(Some(NodeRef(k)));
            }
            if node.kids_done {
                return Ok(None);
            }
            let next_index = node.kids.len();
            // Produce one more child, depending on the node's kind.
            match &node.kind {
                VKind::Root => {
                    let td_var = inner.td_var.clone();
                    if inner.pending.is_empty() {
                        if inner.stream.is_none() {
                            // A stream torn down by a backend failure
                            // re-reports it; a drained stream is done.
                            if let Some(e) = &inner.error {
                                return Err(e.clone());
                            }
                            inner.nodes[parent as usize].kids_done = true;
                            continue;
                        }
                        // Prefetch a ramp-sized block of result tuples.
                        // Traced sessions pull one tuple per step so
                        // recorded span/event sequences stay identical
                        // to the paper's one-tuple-per-pull model.
                        let want = if self.ctx.tracer.enabled() {
                            1
                        } else {
                            inner.ramp.next_size()
                        };
                        let stream = inner.stream.as_mut().expect("checked above");
                        self.profile.record_pull(0);
                        let mut buf = Vec::new();
                        let got = match stream.pull_block(&mut buf, want) {
                            Ok(g) => g,
                            Err(e) => {
                                inner.stream = None;
                                inner.error = Some(e.clone());
                                return Err(e);
                            }
                        };
                        if got == 0 {
                            inner.stream = None;
                            inner.nodes[parent as usize].kids_done = true;
                            continue;
                        }
                        inner.pending.extend(buf);
                    }
                    let t = inner.pending.pop_front().expect("pending refilled above");
                    let val = t
                        .get(&td_var)
                        .ok_or_else(|| MixError::plan("tD var unbound"))?
                        .clone();
                    // tD set semantics: skip values whose vertex id was
                    // already exported.
                    if let Some(key) = crate::eager::dedup_key(&self.ctx, &val) {
                        if !inner.seen_root.insert(key) {
                            continue;
                        }
                    }
                    self.profile.record_tuples(0, 1);
                    self.wrap(&mut inner, val, parent, next_index);
                }
                VKind::Src { doc, node } => {
                    let d = self.ctx.doc(doc)?;
                    let doc_name = doc.clone();
                    // The next source child: sibling of the last kid's
                    // source node, or the first child.
                    let next_src = if next_index == 0 {
                        d.try_first_child(*node)
                    } else {
                        let last = inner.nodes[parent as usize].kids[next_index - 1];
                        match &inner.nodes[last as usize].kind {
                            VKind::Src { node, .. } => d.try_next_sibling(*node),
                            _ => Ok(None),
                        }
                    };
                    let next_src = match next_src {
                        Ok(s) => s,
                        Err(e) => {
                            inner.error = Some(e.clone());
                            return Err(e);
                        }
                    };
                    match next_src {
                        None => inner.nodes[parent as usize].kids_done = true,
                        Some(s) => {
                            let val = match d.value(s) {
                                Some(v) => LVal::Leaf(v),
                                None => LVal::Src {
                                    doc: doc_name,
                                    node: s,
                                },
                            };
                            self.wrap(&mut inner, val, parent, next_index);
                        }
                    }
                }
                VKind::Built { list, .. } | VKind::ListNode { list } => {
                    let list = list.clone();
                    match list.get(next_index) {
                        Ok(None) => inner.nodes[parent as usize].kids_done = true,
                        Ok(Some(v)) => {
                            self.wrap(&mut inner, v, parent, next_index);
                        }
                        Err(e) => {
                            inner.error = Some(e.clone());
                            return Err(e);
                        }
                    }
                }
                VKind::Leaf { .. } => {
                    inner.nodes[parent as usize].kids_done = true;
                }
            }
        }
    }
}

impl NavDoc for VirtualResult {
    fn doc_name(&self) -> &Name {
        &self.name
    }

    fn root(&self) -> NodeRef {
        NodeRef(0)
    }

    fn first_child(&self, n: NodeRef) -> Option<NodeRef> {
        self.try_first_child(n).unwrap_or(None)
    }

    fn next_sibling(&self, n: NodeRef) -> Option<NodeRef> {
        self.try_next_sibling(n).unwrap_or(None)
    }

    fn try_first_child(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        self.ctx.stats().inc(Counter::NavCommands);
        self.kid(n.0, 0)
    }

    fn try_next_sibling(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        self.ctx.stats().inc(Counter::NavCommands);
        let (parent, index) = {
            let inner = self.inner.lock().unwrap();
            let node = &inner.nodes[n.0 as usize];
            match node.parent {
                Some(p) => (p, node.index),
                None => return Ok(None),
            }
        };
        self.kid(parent, index + 1)
    }

    fn label(&self, n: NodeRef) -> Option<Name> {
        self.ctx.stats().inc(Counter::NavCommands);
        let inner = self.inner.lock().unwrap();
        match &inner.nodes[n.0 as usize].kind {
            VKind::Root => Some(Name::new("list")),
            VKind::Src { doc, node } => self.ctx.doc(doc).ok()?.label(*node),
            VKind::Built { label, .. } => Some(label.clone()),
            VKind::ListNode { .. } => Some(Name::new("list")),
            VKind::Leaf { .. } => None,
        }
    }

    fn value(&self, n: NodeRef) -> Option<Value> {
        self.ctx.stats().inc(Counter::NavCommands);
        let inner = self.inner.lock().unwrap();
        match &inner.nodes[n.0 as usize].kind {
            VKind::Leaf { value } => Some(value.clone()),
            VKind::Src { doc, node } => self.ctx.doc(doc).ok()?.value(*node),
            _ => None,
        }
    }

    fn oid(&self, n: NodeRef) -> Oid {
        let inner = self.inner.lock().unwrap();
        self.oid_inner(&inner, n)
    }
}

/// What Section 5 decodes from a node id: the node's oid and the oids
/// of its enclosing nodes.
#[derive(Debug, Clone)]
pub struct NodeContext {
    pub oid: Oid,
    /// Enclosing nodes' oids, nearest first (root excluded).
    pub ancestors: Vec<Oid>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AccessMode;
    use crate::eager;
    use mix_algebra::translate;
    use mix_wrapper::fig2_catalog;
    use mix_xml::print::render_tree;
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    fn virtual_q1() -> VirtualResult {
        let ctx = Arc::new(EvalContext::new(fig2_catalog().0, AccessMode::Lazy));
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        VirtualResult::new(&plan, ctx).unwrap()
    }

    #[test]
    fn lazy_result_equals_eager_result() {
        let v = virtual_q1();
        let lazy_text = render_tree(&v, v.root());
        let ctx = EvalContext::new(fig2_catalog().0, AccessMode::Eager);
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        let eager_doc = eager::evaluate(&plan, &ctx).unwrap();
        let eager_text = render_tree(&eager_doc, eager_doc.root());
        assert_eq!(lazy_text, eager_text);
    }

    #[test]
    fn nothing_computed_until_navigation() {
        let ctx = Arc::new(EvalContext::new(fig2_catalog().0, AccessMode::Lazy));
        let db_stats = ctx.catalog().database("db1").unwrap().stats().clone();
        db_stats.reset();
        let plan = translate(&parse_query(Q1).unwrap()).unwrap();
        let v = VirtualResult::new(&plan, Arc::clone(&ctx)).unwrap();
        // Creating the virtual document issues no SQL.
        assert_eq!(db_stats.get(Counter::SqlQueries), 0);
        let _root = v.root();
        assert_eq!(db_stats.get(Counter::SqlQueries), 0);
        // The first descent starts pulling.
        let first = v.first_child(v.root()).unwrap();
        assert!(db_stats.get(Counter::SqlQueries) > 0);
        let shipped_after_first = db_stats.get(Counter::TuplesShipped);
        // Walking the rest ships more.
        let mut cur = Some(first);
        while let Some(n) = cur {
            cur = v.next_sibling(n);
        }
        assert!(db_stats.get(Counter::TuplesShipped) > shipped_after_first);
    }

    #[test]
    fn example_2_1_navigation_session() {
        // p1 = d(p0); p2 = r(p1); p3 = d(p1) — Section 2, Example 2.1.
        let v = virtual_q1();
        let p0 = v.root();
        let p1 = v.first_child(p0).unwrap();
        assert_eq!(v.label(p1).unwrap().as_str(), "CustRec");
        let p2 = v.next_sibling(p1).unwrap();
        assert_eq!(v.label(p2).unwrap().as_str(), "CustRec");
        assert!(v.next_sibling(p2).is_none());
        let p3 = v.first_child(p1).unwrap();
        assert_eq!(v.label(p3).unwrap().as_str(), "customer");
        // and into OrderInfo
        let oi = v.next_sibling(p3).unwrap();
        assert_eq!(v.label(oi).unwrap().as_str(), "OrderInfo");
    }

    #[test]
    fn node_ids_stay_valid_after_navigation() {
        let v = virtual_q1();
        let p1 = v.first_child(v.root()).unwrap();
        let label_before = v.label(p1);
        let _p2 = v.next_sibling(p1);
        let _p3 = v.first_child(p1);
        assert_eq!(v.label(p1), label_before);
        // revisiting children returns the same node ids
        assert_eq!(v.first_child(p1), v.first_child(p1));
    }

    #[test]
    fn context_decodes_skolem_chain() {
        let v = virtual_q1();
        let p1 = v.first_child(v.root()).unwrap(); // CustRec f(&DEF345)
        let ctx1 = v.context(p1);
        let (func, var, args) = ctx1.oid.as_skolem().unwrap();
        assert_eq!(func.as_str(), "f");
        assert_eq!(var.as_str(), "V");
        assert_eq!(args[0].to_string(), "&DEF345");
        assert!(ctx1.ancestors.is_empty());
        // Descend into OrderInfo: ancestors include the CustRec skolem.
        let cust = v.first_child(p1).unwrap();
        let oi = v.next_sibling(cust).unwrap();
        let ctx2 = v.context(oi);
        assert_eq!(ctx2.oid.as_skolem().unwrap().0.as_str(), "g");
        assert_eq!(ctx2.ancestors[0], ctx1.oid);
    }

    #[test]
    fn value_fetch_on_leaves() {
        let v = virtual_q1();
        let p1 = v.first_child(v.root()).unwrap();
        let cust = v.first_child(p1).unwrap();
        let id_field = v.first_child(cust).unwrap();
        assert_eq!(v.label(id_field).unwrap().as_str(), "id");
        let leaf = v.first_child(id_field).unwrap();
        assert_eq!(v.value(leaf), Some(Value::str("DEF345")));
        assert!(v.first_child(leaf).is_none());
    }

    #[test]
    fn materialization_watermark_tracks_navigation() {
        let v = virtual_q1();
        let before = v.nodes_materialized();
        let _ = v.first_child(v.root());
        let after = v.nodes_materialized();
        assert!(after > before);
        // Only one CustRec was materialized, not both.
        let full = {
            let v2 = virtual_q1();
            let t = render_tree(&v2, v2.root());
            let _ = t;
            v2.nodes_materialized()
        };
        assert!(after < full, "partial={after} full={full}");
    }
}
