//! `getD` path evaluation over engine values.
//!
//! Works uniformly over source nodes, constructed elements and list
//! values (a list value acts as a virtual node labeled `list`, which is
//! how rewritten paths like `$W.list.orderInfo` address the outputs of
//! `cat`).

use crate::context::EvalContext;
use crate::lval::LVal;
use mix_common::Result;
use mix_xml::{LabelPath, Step};

fn step_matches(ctx: &EvalContext, step: &Step, v: &LVal) -> bool {
    match step {
        Step::Label(l) => ctx.lval_label(v).as_ref() == Some(l),
        Step::Wild => ctx.lval_label(v).is_some(),
        Step::Data => ctx.lval_value(v).is_some(),
    }
}

/// All nodes reachable from `start` by `path` (first step matches
/// `start` itself), in document order.
pub fn eval_path(ctx: &EvalContext, start: &LVal, path: &LabelPath) -> Result<Vec<LVal>> {
    let steps = path.steps();
    if !step_matches(ctx, &steps[0], start) {
        return Ok(Vec::new());
    }
    let mut frontier = vec![start.clone()];
    for step in &steps[1..] {
        let mut next = Vec::new();
        for v in &frontier {
            for child in ctx.lval_children(v)? {
                if step_matches(ctx, step, &child) {
                    next.push(child);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    Ok(frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AccessMode;
    use crate::lval::{LElem, LList};
    use mix_common::{Name, Value};
    use mix_wrapper::fig2_catalog;
    use mix_xml::Oid;
    use std::sync::Arc;

    fn ctx() -> EvalContext {
        EvalContext::new(fig2_catalog().0, AccessMode::Eager)
    }

    #[test]
    fn walks_source_paths() {
        let c = ctx();
        let d = c.doc(&Name::new("root2")).unwrap();
        let root = LVal::Src {
            doc: Name::new("root2"),
            node: d.root(),
        };
        let hits = eval_path(
            &c,
            &root,
            &LabelPath::parse("list.order.value.data()").unwrap(),
        )
        .unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(c.lval_value(&hits[0]), Some(Value::Int(2400)));
        // first-label mismatch ⇒ empty
        let none = eval_path(&c, &root, &LabelPath::parse("order.value").unwrap()).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn walks_constructed_and_list_values() {
        let c = ctx();
        let d = c.doc(&Name::new("root1")).unwrap();
        let cust = d.first_child(d.root()).unwrap();
        let custv = LVal::Src {
            doc: Name::new("root1"),
            node: cust,
        };
        let elem = LVal::Elem(Arc::new(LElem {
            label: Name::new("CustRec"),
            oid: Oid::skolem("f", "V", vec![]),
            children: LList::fixed(vec![custv]),
        }));
        let hits = eval_path(
            &c,
            &elem,
            &LabelPath::parse("CustRec.customer.name").unwrap(),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.lval_scalar(&hits[0]), Some(Value::str("DEFCorp.")));
        // list values match the virtual `list` label
        let listv = LVal::List(LList::fixed(vec![elem.clone()]));
        let hits = eval_path(&c, &listv, &LabelPath::parse("list.CustRec").unwrap()).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn wildcard_and_data_steps() {
        let c = ctx();
        let d = c.doc(&Name::new("root1")).unwrap();
        let root = LVal::Src {
            doc: Name::new("root1"),
            node: d.root(),
        };
        let hits = eval_path(&c, &root, &LabelPath::parse("list.customer.*").unwrap()).unwrap();
        assert_eq!(hits.len(), 6); // 3 fields × 2 customers
        let hits = eval_path(
            &c,
            &root,
            &LabelPath::parse("list.customer.id.data()").unwrap(),
        )
        .unwrap();
        assert_eq!(hits.len(), 2);
        assert!(c.lval_value(&hits[0]).is_some());
    }
}
