//! Evaluation context: sources, counters, engine options.

use crate::lval::{force_list, LList, LVal};
use mix_common::{
    BlockPolicy, BlockRamp, MixError, Name, PrefetchPolicy, Result, ResultContext, RetryPolicy,
    Stats, Value, MAX_AUTO_BLOCK,
};
use mix_obs::TracerHandle;
use mix_wrapper::Catalog;
use mix_xml::{NavDoc, Oid};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// How source views are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Fetch tuples on demand (navigation-driven evaluation).
    Lazy,
    /// Materialize each source view up front (the conventional
    /// mediator baseline).
    Eager,
}

/// Which `groupBy` implementation the lazy engine uses (Section 4:
/// "the stateless gBy assumes that its input is sorted along the
/// group-by variables; the stateful gBy makes no such assumptions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GByMode {
    /// Table 1's presorted stateless implementation: constant operator
    /// state, groups discovered by scanning until the key changes.
    StatelessPresorted,
    /// Buffering implementation: drains and hash-partitions its input.
    Stateful,
    /// Hash implementation: correct on unsorted input like
    /// [`GByMode::Stateful`], but spools lazily — the first group is
    /// available after one input pull.
    Hash,
    /// Pick per `groupBy` node: presorted when the rewriter's
    /// sortedness analysis proves the input key-contiguous
    /// ([`mix_rewrite::key_contiguous`]), hash otherwise.
    Auto,
}

/// Shared state for one plan evaluation (or one QDOM session).
pub struct EvalContext {
    catalog: Catalog,
    mode: AccessMode,
    pub gby_mode: GByMode,
    /// Use the hash join/semi-join kernels when an equi-key is
    /// extractable (`false` forces the nested-loop kernels — an
    /// ablation/testing knob; both produce identical tuple sequences).
    pub hash_joins: bool,
    /// Where operator spans and source events go (defaults to the
    /// disabled null tracer).
    pub tracer: TracerHandle,
    /// Block-at-a-time execution policy: how many tuples lazy cursors
    /// and vectorized operators may fetch per pull
    /// ([`BlockPolicy::Off`] = the paper's one-tuple-per-pull model).
    pub block: BlockPolicy,
    /// How transient backend faults are retried on every source fetch
    /// (lazy cursors and `rQ` drains alike).
    pub retry: RetryPolicy,
    /// Pipelined prefetch at the backend cursor boundary
    /// ([`PrefetchPolicy::Off`] = the paper's strictly demand-driven
    /// model; `Depth(n)`/`Auto` overlap backend latency with mediator
    /// work once a cursor's first block has been demanded).
    pub prefetch: PrefetchPolicy,
    /// Ship source blocks as typed column vectors (`false` keeps the
    /// boxed row representation — an ablation knob; both produce
    /// identical tuples and identical `TuplesShipped`/`BlocksShipped`).
    /// Only block pulls are affected: under [`BlockPolicy::Off`] the
    /// per-row protocol runs regardless.
    pub columnar: bool,
    /// Session high-water mark for `BlockPolicy::Auto` restarts: once a
    /// drain in this session has ramped up, later cursors skip the
    /// small-block warm-up below this floor (see
    /// [`EvalContext::block_ramp`]).
    ramp_floor: AtomicUsize,
    stats: Stats,
    docs: Mutex<HashMap<Name, Arc<dyn NavDoc>>>,
}

impl EvalContext {
    /// A context over `catalog` in the given access mode.
    pub fn new(catalog: Catalog, mode: AccessMode) -> EvalContext {
        EvalContext {
            catalog,
            mode,
            gby_mode: GByMode::Auto,
            hash_joins: true,
            tracer: TracerHandle::null(),
            block: BlockPolicy::default(),
            retry: RetryPolicy::default(),
            prefetch: PrefetchPolicy::default(),
            columnar: true,
            ramp_floor: AtomicUsize::new(1),
            stats: Stats::new(),
            docs: Mutex::new(HashMap::new()),
        }
    }

    /// A fresh block ramp for one cursor, floored at the session's
    /// high-water mark (affects `BlockPolicy::Auto` only — `Off` and
    /// `Fixed` ramps are returned unchanged). A repeated drain in the
    /// same session thus skips the 1→2→4… warm-up that made small
    /// fixed blocks beat `Auto` on short re-drains.
    pub fn block_ramp(&self) -> BlockRamp {
        self.block
            .ramp()
            .with_floor(self.ramp_floor.load(Ordering::Relaxed))
    }

    /// Record an observed block size, lifting the session ramp floor.
    /// Blocks below 8 rows are ignored: warm-up steps and final partial
    /// blocks must not drag the floor around, and tiny floors save
    /// nothing anyway.
    pub fn note_block(&self, rows: usize) {
        if rows >= 8 && rows > self.ramp_floor.load(Ordering::Relaxed) {
            self.ramp_floor
                .store(rows.min(MAX_AUTO_BLOCK), Ordering::Relaxed);
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mediator-side counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// The navigable view of a source, cached so all `mksrc` operators
    /// on the same source share one fetch cursor (and node refs stay
    /// stable across the session).
    pub fn doc(&self, name: &Name) -> Result<Arc<dyn NavDoc>> {
        if let Some(d) = self.docs.lock().unwrap().get(name) {
            return Ok(Arc::clone(d));
        }
        let d = match self.mode {
            AccessMode::Lazy => self
                .catalog
                .lazy_with_policies(name.as_str(), self.block, self.retry, self.prefetch)
                .context(name)?,
            AccessMode::Eager => self.catalog.materialized(name.as_str()).context(name)?,
        };
        self.docs
            .lock()
            .unwrap()
            .insert(name.clone(), Arc::clone(&d));
        Ok(d)
    }

    /// Register an in-memory document under its name (used to splice a
    /// materialized intermediate result in as a source — the
    /// "materialize then re-query" baseline of experiment E3).
    pub fn register_doc(&self, doc: Arc<dyn NavDoc>) {
        self.docs
            .lock()
            .unwrap()
            .insert(doc.doc_name().clone(), doc);
    }

    // ---- generic LVal navigation ------------------------------------

    /// The element label of a value (`list` for list values, Fig. 5's
    /// convention for the tree representation of binding lists).
    pub fn lval_label(&self, v: &LVal) -> Option<Name> {
        match v {
            LVal::Src { doc, node } => self.doc(doc).ok()?.label(*node),
            LVal::Leaf(_) => None,
            LVal::Elem(e) => Some(e.label.clone()),
            LVal::List(_) => Some(Name::new("list")),
            LVal::Part(_) => Some(Name::new("list")),
        }
    }

    /// The leaf value of a value node, if it is one.
    pub fn lval_value(&self, v: &LVal) -> Option<Value> {
        match v {
            LVal::Src { doc, node } => self.doc(doc).ok()?.value(*node),
            LVal::Leaf(x) => Some(x.clone()),
            _ => None,
        }
    }

    /// The vertex id of a value.
    pub fn lval_oid(&self, v: &LVal) -> Oid {
        match v {
            LVal::Src { doc, node } => match self.doc(doc) {
                Ok(d) => d.oid(*node),
                Err(_) => Oid::surrogate(u64::MAX),
            },
            LVal::Leaf(x) => Oid::lit(x.clone()),
            LVal::Elem(e) => e.oid.clone(),
            LVal::List(_) | LVal::Part(_) => Oid::surrogate(u64::MAX - 1),
        }
    }

    /// The children of a value, as values (forces lazy lists only when
    /// iterated by the caller — here materialized for simplicity of
    /// path walking; bounded by one element's subtree).
    pub fn lval_children(&self, v: &LVal) -> Result<Vec<LVal>> {
        Ok(match v {
            LVal::Src { doc, node } => {
                let d = self.doc(doc)?;
                let mut out = Vec::new();
                let mut c = d.try_first_child(*node)?;
                while let Some(n) = c {
                    out.push(LVal::Src {
                        doc: doc.clone(),
                        node: n,
                    });
                    c = d.try_next_sibling(n)?;
                }
                out
            }
            LVal::Leaf(_) => Vec::new(),
            LVal::Elem(e) => force_list(&e.children)?,
            LVal::List(l) => force_list(l)?,
            LVal::Part(_) => {
                return Err(MixError::invalid(
                    "cannot navigate into a group partition with a path",
                ))
            }
        })
    }

    /// The child of a value at `index`, forcing lazily only up to it.
    pub fn lval_child_at(&self, v: &LVal, index: usize) -> Result<Option<LVal>> {
        Ok(match v {
            LVal::Src { doc, node } => {
                let d = self.doc(doc)?;
                let mut c = d.try_first_child(*node)?;
                let mut i = 0;
                while let Some(n) = c {
                    if i == index {
                        return Ok(Some(LVal::Src {
                            doc: doc.clone(),
                            node: n,
                        }));
                    }
                    i += 1;
                    c = d.try_next_sibling(n)?;
                }
                None
            }
            LVal::Leaf(_) => None,
            LVal::Elem(e) => e.children.get(index)?,
            LVal::List(l) => l.get(index)?,
            LVal::Part(_) => None,
        })
    }

    /// The scalar a condition sees for a value: a leaf's value, or the
    /// value of an element's single text child (the wrapper's
    /// `<id>XYZ123</id>` shape). `None` (⇒ condition false) otherwise.
    pub fn lval_scalar(&self, v: &LVal) -> Option<Value> {
        if let Some(x) = self.lval_value(v) {
            return Some(x);
        }
        match v {
            LVal::Src { doc, node } => {
                let d = self.doc(doc).ok()?;
                mix_xml::node_scalar(&*d, *node)
            }
            LVal::Elem(e) => {
                // Forcing failures degrade to "no scalar" (⇒ condition
                // false) here; the navigation path reports them.
                let first = e.children.get(0).ok().flatten()?;
                if e.children.get(1).ok().flatten().is_some() {
                    return None;
                }
                self.lval_value(&first)
            }
            _ => None,
        }
    }

    /// The grouping/skolem key of a value: its oid for element nodes,
    /// the *value* for leaves (a leaf's label is its value in the data
    /// model, so two equal-valued leaves group together). This is what
    /// `crElt` puts into constructed ids ("the constructed id's include
    /// all information necessary for tracing the ancestry of an
    /// object").
    pub fn lval_key(&self, v: &LVal) -> Oid {
        match self.lval_value(v) {
            Some(x) => Oid::lit(x),
            None => self.lval_oid(v),
        }
    }

    /// An empty list value (convenience).
    pub fn empty_list() -> LVal {
        LVal::List(LList::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lval::LElem;
    use mix_wrapper::fig2_catalog;

    fn ctx(mode: AccessMode) -> EvalContext {
        EvalContext::new(fig2_catalog().0, mode)
    }

    #[test]
    fn doc_cache_shares_views() {
        let c = ctx(AccessMode::Lazy);
        let a = c.doc(&Name::new("root1")).unwrap();
        let b = c.doc(&Name::new("root1")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(c.doc(&Name::new("nope")).is_err());
    }

    #[test]
    fn lval_navigation_over_sources() {
        let c = ctx(AccessMode::Eager);
        let d = c.doc(&Name::new("root1")).unwrap();
        let root = LVal::Src {
            doc: Name::new("root1"),
            node: d.root(),
        };
        assert_eq!(c.lval_label(&root).unwrap().as_str(), "list");
        let kids = c.lval_children(&root).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(c.lval_oid(&kids[0]).to_string(), "&DEF345");
        // scalar of the id field
        let id_field = &c.lval_children(&kids[0]).unwrap()[0];
        assert_eq!(c.lval_scalar(id_field), Some(Value::str("DEF345")));
        assert_eq!(
            c.lval_child_at(&root, 1)
                .unwrap()
                .map(|v| c.lval_oid(&v).to_string()),
            Some("&XYZ123".to_string())
        );
        assert!(c.lval_child_at(&root, 2).unwrap().is_none());
    }

    #[test]
    fn lval_navigation_over_constructed() {
        let c = ctx(AccessMode::Eager);
        let e = LVal::Elem(Arc::new(LElem {
            label: Name::new("CustRec"),
            oid: Oid::skolem("f", "V", vec![Oid::key("X")]),
            children: LList::fixed(vec![LVal::Leaf(Value::Int(7))]),
        }));
        assert_eq!(c.lval_label(&e).unwrap().as_str(), "CustRec");
        assert_eq!(c.lval_scalar(&e), Some(Value::Int(7)));
        assert_eq!(c.lval_oid(&e).to_string(), "&($V,f(&X))");
        assert_eq!(c.lval_children(&e).unwrap().len(), 1);
        // leaves
        let leaf = LVal::Leaf(Value::str("x"));
        assert!(c.lval_label(&leaf).is_none());
        assert_eq!(c.lval_value(&leaf), Some(Value::str("x")));
        assert_eq!(c.lval_oid(&leaf).to_string(), "x");
    }
}
