//! A small XML text parser for file sources.
//!
//! MIX "accesses XML files and relational database sources". File
//! sources need only the labeled-ordered-tree subset: elements and
//! character content. Attributes are parsed and ignored (the paper's
//! model "excludes attributes for simplicity"), with one exception: an
//! `oid="…"` attribute becomes the node's [`Oid::key`], letting test
//! fixtures pin semantic ids. Comments, processing instructions and the
//! XML declaration are skipped; the five predefined entities are
//! decoded.

use crate::oid::Oid;
use crate::tree::Document;
use mix_common::{MixError, Name, Result, Value};

/// Parse an XML document. `name` becomes the source/root id (`&name`).
///
/// The root element's label becomes the document root's label.
pub fn parse_document(name: impl Into<Name>, text: &str) -> Result<Document> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let (label, oid, selfclose) = p.parse_open_tag()?;
    let mut doc = Document::new(name, label.clone());
    if oid.is_some() {
        // The root oid is always &name; a root oid attribute is ignored.
    }
    if !selfclose {
        let root = doc.root_ref();
        p.parse_content(&mut doc, root, &label)?;
    }
    p.skip_misc();
    if p.pos < p.bytes.len() {
        return Err(MixError::parse(
            "xml",
            p.pos,
            "trailing content after root element",
        ));
    }
    Ok(doc)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match find(self.bytes, self.pos + 2, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<!DOCTYPE") {
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'>' {
                        break;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(MixError::parse("xml", start, "expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Parse `<name attr="v" ...>` or `<name ... />`. Assumes the caller
    /// positioned us at `<`. Returns (label, oid-attribute, self-closed).
    fn parse_open_tag(&mut self) -> Result<(Name, Option<String>, bool)> {
        if self.peek() != Some(b'<') {
            return Err(MixError::parse("xml", self.pos, "expected '<'"));
        }
        self.pos += 1;
        let label = self.parse_name()?;
        let mut oid = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((Name::new(label), oid, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(MixError::parse("xml", self.pos, "expected '/>'"));
                    }
                    self.pos += 1;
                    return Ok((Name::new(label), oid, true));
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(MixError::parse(
                            "xml",
                            self.pos,
                            "expected '=' in attribute",
                        ));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(MixError::parse(
                            "xml",
                            self.pos,
                            "expected quoted attribute",
                        ));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == q {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(MixError::parse("xml", vstart, "unterminated attribute"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    if attr == "oid" {
                        oid = Some(decode_entities(&raw));
                    }
                    // other attributes: parsed and ignored (model excludes them)
                }
                None => return Err(MixError::parse("xml", self.pos, "unterminated tag")),
            }
        }
    }

    /// Parse element content until the matching `</label>`.
    fn parse_content(
        &mut self,
        doc: &mut Document,
        parent: crate::NodeRef,
        label: &Name,
    ) -> Result<()> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(MixError::parse(
                        "xml",
                        self.pos,
                        format!("unterminated <{label}>"),
                    ))
                }
                Some(b'<') => {
                    flush_text(doc, parent, &mut text);
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(MixError::parse("xml", self.pos, "expected '>'"));
                        }
                        self.pos += 1;
                        if close != label.as_str() {
                            return Err(MixError::parse(
                                "xml",
                                self.pos,
                                format!("mismatched close tag: <{label}> vs </{close}>"),
                            ));
                        }
                        return Ok(());
                    } else if self.starts_with("<!--") || self.starts_with("<?") {
                        self.skip_misc();
                    } else {
                        let (child_label, oid, selfclose) = self.parse_open_tag()?;
                        let child = match oid {
                            Some(k) => {
                                doc.add_elem_with_oid(parent, child_label.clone(), Oid::key(k))
                            }
                            None => doc.add_elem(parent, child_label.clone()),
                        };
                        if !selfclose {
                            self.parse_content(doc, child, &child_label)?;
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
            }
        }
    }
}

fn flush_text(doc: &mut Document, parent: crate::NodeRef, text: &mut String) {
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        let decoded = decode_entities(trimmed);
        doc.add_text(parent, Value::parse_literal(&decoded));
    }
    text.clear();
}

fn find(bytes: &[u8], from: usize, needle: &str) -> Option<usize> {
    let nb = needle.as_bytes();
    (from..bytes.len().saturating_sub(nb.len() - 1)).find(|&i| &bytes[i..i + nb.len()] == nb)
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let known = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ];
        if let Some((ent, ch)) = known.iter().find(|(e, _)| rest.starts_with(e)) {
            out.push(*ch);
            rest = &rest[ent.len()..];
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Encode the five predefined entities for serialization.
pub(crate) fn encode_entities(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"']) {
        return s.to_string();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nav::NavDoc;

    #[test]
    fn parse_simple_document() {
        let d = parse_document(
            "root1",
            r#"<list>
                 <customer oid="XYZ123"><id>XYZ123</id><name>XYZInc.</name></customer>
                 <customer oid="DEF345"><id>DEF345</id><name>DEFCorp.</name></customer>
               </list>"#,
        )
        .unwrap();
        let root = d.root_ref();
        assert_eq!(d.label(root).unwrap().as_str(), "list");
        let c1 = d.first_child(root).unwrap();
        assert_eq!(d.oid(c1).to_string(), "&XYZ123");
        let c2 = d.next_sibling(c1).unwrap();
        assert_eq!(d.oid(c2).to_string(), "&DEF345");
        assert!(d.next_sibling(c2).is_none());
        let id = d.first_child(c1).unwrap();
        assert_eq!(d.label(id).unwrap().as_str(), "id");
        assert_eq!(
            d.value(d.first_child(id).unwrap()),
            Some(Value::str("XYZ123"))
        );
    }

    #[test]
    fn text_is_typed() {
        let d = parse_document("r", "<o><v>2400</v><f>2.5</f><s>abc</s></o>").unwrap();
        let vals: Vec<_> = d
            .children(d.root_ref())
            .map(|c| d.value(d.first_child(c).unwrap()).unwrap())
            .collect();
        assert_eq!(
            vals,
            vec![Value::Int(2400), Value::Float(2.5), Value::str("abc")]
        );
    }

    #[test]
    fn skips_decl_comments_pis() {
        let d = parse_document(
            "r",
            "<?xml version=\"1.0\"?><!-- hi --><root><!-- inner --><a/>text</root>",
        )
        .unwrap();
        assert_eq!(d.label(d.root_ref()).unwrap().as_str(), "root");
        assert_eq!(d.child_count(d.root_ref()), 2);
    }

    #[test]
    fn entities_decoded() {
        let d = parse_document("r", "<x><s>a &amp; b &lt;c&gt;</s></x>").unwrap();
        let s = d.first_child(d.root_ref()).unwrap();
        assert_eq!(
            d.value(d.first_child(s).unwrap()),
            Some(Value::str("a & b <c>"))
        );
    }

    #[test]
    fn self_closing_and_attrs_ignored() {
        let d = parse_document("r", r#"<x a="1"><e b="2"/><e/></x>"#).unwrap();
        assert_eq!(d.child_count(d.root_ref()), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_document("r", "<a><b></a>").is_err());
        assert!(parse_document("r", "<a>").is_err());
        assert!(parse_document("r", "<a></a><b></b>").is_err());
        assert!(parse_document("r", "plain").is_err());
    }

    #[test]
    fn mixed_content_whitespace_dropped() {
        let d = parse_document("r", "<a>\n  <b>1</b>\n</a>").unwrap();
        assert_eq!(d.child_count(d.root_ref()), 1);
    }
}
