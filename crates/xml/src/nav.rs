//! The source-side navigation interface.
//!
//! QDOM's navigation commands (`d`, `r`, `fl`, `fv` — Section 2) bottom
//! out on sources. In-memory [`Document`](crate::Document)s answer them
//! directly; `mix-wrapper`'s lazy relational views answer them by
//! fetching tuples on demand. [`NavDoc`] is that common interface.

use crate::oid::Oid;
use mix_common::{Name, Result, Value};

/// A document-local node handle. Only meaningful together with the
/// document that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

/// Navigable tree source: the `d`/`r`/`fl`/`fv` command set plus oid
/// fetch, mirroring the DOM subset QDOM exposes.
///
/// Sources are `Send + Sync` so sessions (and the results they hold)
/// can migrate across server worker threads; stateful sources (the
/// lazy relational wrapper, virtual results) guard their mutable state
/// with a mutex that is uncontended in practice — a session is driven
/// by one worker at a time.
pub trait NavDoc: Send + Sync {
    /// The name the source is registered under (e.g. `root1`).
    fn doc_name(&self) -> &Name;
    /// The root node.
    fn root(&self) -> NodeRef;
    /// `d(p)`: first child, or `None` if `p` is a leaf.
    fn first_child(&self, n: NodeRef) -> Option<NodeRef>;
    /// `r(p)`: right sibling, or `None`.
    fn next_sibling(&self, n: NodeRef) -> Option<NodeRef>;
    /// `fl(p)`: the element label, or `None` for a text leaf.
    fn label(&self, n: NodeRef) -> Option<Name>;
    /// `fv(p)`: the leaf value, or `None` for an element.
    fn value(&self, n: NodeRef) -> Option<Value>;
    /// The vertex id of `n`.
    fn oid(&self, n: NodeRef) -> Oid;

    /// Fallible `d(p)`: like [`NavDoc::first_child`], but a source
    /// whose backing store can fail (the lazy relational wrapper)
    /// reports the failure instead of silently truncating the tree.
    /// In-memory documents never fail; the default just wraps.
    fn try_first_child(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        Ok(self.first_child(n))
    }
    /// Fallible `r(p)` — see [`NavDoc::try_first_child`].
    fn try_next_sibling(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        Ok(self.next_sibling(n))
    }
    /// Fallible `fl(p)` — see [`NavDoc::try_first_child`].
    fn try_label(&self, n: NodeRef) -> Result<Option<Name>> {
        Ok(self.label(n))
    }
    /// Fallible `fv(p)` — see [`NavDoc::try_first_child`].
    fn try_value(&self, n: NodeRef) -> Result<Option<Value>> {
        Ok(self.value(n))
    }
}

/// The scalar content of a node for condition evaluation: the value of
/// a leaf, or of an element's single text child (the `<id>XYZ123</id>`
/// shape the wrapper produces).
///
/// WHERE-clause operands formally bind to leaf nodes (the translator
/// appends `data()`), but accepting the single-text-child shape keeps
/// hand-built plans convenient. Returns `None` for anything else, which
/// conditions treat as *false*.
pub fn node_scalar<D: NavDoc + ?Sized>(doc: &D, n: NodeRef) -> Option<Value> {
    if let Some(v) = doc.value(n) {
        return Some(v);
    }
    let first = doc.first_child(n)?;
    if doc.next_sibling(first).is_some() {
        return None;
    }
    doc.value(first)
}

/// A [`NavDoc`] re-exported under a different source name — the
/// adapter that lets one mediator's (virtual) result register as a
/// source of another mediator ("a MIX mediator can be such a source to
/// another MIX mediator", Section 4).
pub struct RenamedDoc {
    inner: std::sync::Arc<dyn NavDoc>,
    name: Name,
}

impl RenamedDoc {
    /// Wrap `inner`, exposing it as source `name`.
    pub fn new(inner: std::sync::Arc<dyn NavDoc>, name: impl Into<Name>) -> RenamedDoc {
        RenamedDoc {
            inner,
            name: name.into(),
        }
    }
}

impl NavDoc for RenamedDoc {
    fn doc_name(&self) -> &Name {
        &self.name
    }
    fn root(&self) -> NodeRef {
        self.inner.root()
    }
    fn first_child(&self, n: NodeRef) -> Option<NodeRef> {
        self.inner.first_child(n)
    }
    fn next_sibling(&self, n: NodeRef) -> Option<NodeRef> {
        self.inner.next_sibling(n)
    }
    fn label(&self, n: NodeRef) -> Option<Name> {
        self.inner.label(n)
    }
    fn value(&self, n: NodeRef) -> Option<Value> {
        self.inner.value(n)
    }
    fn oid(&self, n: NodeRef) -> Oid {
        self.inner.oid(n)
    }
    fn try_first_child(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        self.inner.try_first_child(n)
    }
    fn try_next_sibling(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        self.inner.try_next_sibling(n)
    }
    fn try_label(&self, n: NodeRef) -> Result<Option<Name>> {
        self.inner.try_label(n)
    }
    fn try_value(&self, n: NodeRef) -> Result<Option<Value>> {
        self.inner.try_value(n)
    }
}

/// Enumerate `n`'s children via the navigation commands (test helper
/// and generic traversal utility).
pub fn nav_children<D: NavDoc + ?Sized>(doc: &D, n: NodeRef) -> Vec<NodeRef> {
    let mut out = Vec::new();
    let mut cur = doc.first_child(n);
    while let Some(c) = cur {
        out.push(c);
        cur = doc.next_sibling(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    #[test]
    fn node_scalar_handles_leaf_and_field() {
        let mut d = Document::new("r", "list");
        let root = d.root_ref();
        let f = d.add_field(root, "id", Value::str("X"));
        let leaf = d.first_child(f).unwrap();
        assert_eq!(node_scalar(&d, leaf), Some(Value::str("X")));
        assert_eq!(node_scalar(&d, f), Some(Value::str("X")));
        // multi-child element has no scalar
        let e = d.add_elem(root, "pair");
        d.add_text(e, Value::Int(1));
        d.add_text(e, Value::Int(2));
        assert_eq!(node_scalar(&d, e), None);
        // element child (not text) has no scalar
        let w = d.add_elem(root, "wrap");
        d.add_elem(w, "inner");
        assert_eq!(node_scalar(&d, w), None);
    }

    #[test]
    fn nav_children_matches_iterator() {
        let mut d = Document::new("r", "list");
        let root = d.root_ref();
        for i in 0..4 {
            d.add_field(root, "x", Value::Int(i));
        }
        assert_eq!(nav_children(&d, root), d.children(root).collect::<Vec<_>>());
    }
}
