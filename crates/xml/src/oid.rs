//! Vertex ids (the set `O` of the data model).
//!
//! The paper: "The id's may be random surrogates or they may carry
//! semantic meaning. For example … the relational database wrapper
//! exporting the database assigns the tuple keys (eg, XYZ123) to be the
//! oid's of the corresponding 'tuple' objects — after it precedes them
//! with the &."
//!
//! `crElt` constructs ids as *skolem terms* `f(~g)` over the group-by
//! variables (Section 3, operator 7), and Section 5 relies on those ids
//! encoding "the values of the group-by attributes associated with the
//! nodes that enclose the given node, and the variable to which this
//! node was bound" — that is exactly what [`OidKind::Skolem`] stores.

use mix_common::{Name, Value};
use std::fmt;
use std::sync::Arc;

/// A vertex id. Cheap to clone (reference counted).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Oid(Arc<OidKind>);

/// The shapes a vertex id can take.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OidKind {
    /// A named root, e.g. `&root1` for a source document or `&rootv`
    /// for a view result.
    Root(Name),
    /// A random surrogate assigned when nothing better exists
    /// (file-source elements, text leaves).
    Surrogate(u64),
    /// A semantic key, e.g. `&XYZ123` — the wrapper uses tuple keys.
    Key(String),
    /// A literal value lifted into id position (skolem arguments over
    /// leaf-valued group-by variables).
    Lit(Value),
    /// A constructed-element id: skolem function `func` applied to the
    /// ids/values of the group-by variables, remembering the XMAS
    /// variable `var` the element was bound to. Rendered as in Fig. 7:
    /// `&($V,f(&XYZ123))`.
    Skolem {
        /// Skolem function symbol (`f`, `g`, … in the paper's plans).
        func: Name,
        /// The plan variable the constructed element is bound to.
        var: Name,
        /// One argument per group-by variable, in group-by list order.
        args: Vec<Oid>,
    },
}

impl Oid {
    /// A named root id.
    pub fn root(name: impl Into<Name>) -> Oid {
        Oid(Arc::new(OidKind::Root(name.into())))
    }

    /// A surrogate id.
    pub fn surrogate(n: u64) -> Oid {
        Oid(Arc::new(OidKind::Surrogate(n)))
    }

    /// A semantic key id (`&XYZ123`).
    pub fn key(k: impl Into<String>) -> Oid {
        Oid(Arc::new(OidKind::Key(k.into())))
    }

    /// A literal-value id (used as a skolem argument).
    pub fn lit(v: Value) -> Oid {
        Oid(Arc::new(OidKind::Lit(v)))
    }

    /// A skolem id `f(args)` bound to variable `var`.
    pub fn skolem(func: impl Into<Name>, var: impl Into<Name>, args: Vec<Oid>) -> Oid {
        Oid(Arc::new(OidKind::Skolem {
            func: func.into(),
            var: var.into(),
            args,
        }))
    }

    /// Inspect the id's shape.
    pub fn kind(&self) -> &OidKind {
        &self.0
    }

    /// The key text, if this is a semantic-key id. Lets derived ids
    /// (`&KEY.child`) be rendered from a shared parent oid instead of
    /// each holder keeping its own copy of the key string.
    pub fn as_key(&self) -> Option<&str> {
        match self.kind() {
            OidKind::Key(k) => Some(k),
            _ => None,
        }
    }

    /// The skolem parts, if this is a constructed-element id.
    pub fn as_skolem(&self) -> Option<(&Name, &Name, &[Oid])> {
        match self.kind() {
            OidKind::Skolem { func, var, args } => Some((func, var, args)),
            _ => None,
        }
    }

    /// Deterministic total order used by the XMAS `orderBy` operator,
    /// which (per the paper) "orders only according to the id's of the
    /// nodes".
    pub fn total_cmp(&self, other: &Oid) -> std::cmp::Ordering {
        fn rank(k: &OidKind) -> u8 {
            match k {
                OidKind::Root(_) => 0,
                OidKind::Surrogate(_) => 1,
                OidKind::Key(_) => 2,
                OidKind::Lit(_) => 3,
                OidKind::Skolem { .. } => 4,
            }
        }
        use std::cmp::Ordering;
        match (self.kind(), other.kind()) {
            (OidKind::Root(a), OidKind::Root(b)) => a.cmp(b),
            (OidKind::Surrogate(a), OidKind::Surrogate(b)) => a.cmp(b),
            (OidKind::Key(a), OidKind::Key(b)) => a.cmp(b),
            (OidKind::Lit(a), OidKind::Lit(b)) => a.total_cmp(b),
            (
                OidKind::Skolem {
                    func: f1,
                    var: v1,
                    args: a1,
                },
                OidKind::Skolem {
                    func: f2,
                    var: v2,
                    args: a2,
                },
            ) => f1.cmp(f2).then_with(|| v1.cmp(v2)).then_with(|| {
                for (x, y) in a1.iter().zip(a2.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a1.len().cmp(&a2.len())
            }),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            OidKind::Root(n) => write!(f, "&{n}"),
            OidKind::Surrogate(n) => write!(f, "&_{n}"),
            OidKind::Key(k) => write!(f, "&{k}"),
            OidKind::Lit(v) => write!(f, "{v}"),
            OidKind::Skolem { func, var, args } => {
                write!(f, "&({},{}(", var.display_var(), func)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "))")
            }
        }
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Oid::root("root1").to_string(), "&root1");
        assert_eq!(Oid::key("XYZ123").to_string(), "&XYZ123");
        let sk = Oid::skolem("f", "V", vec![Oid::key("XYZ123")]);
        // Fig. 7 renders constructed CustRec ids as &($V,f(&XYZ123)).
        assert_eq!(sk.to_string(), "&($V,f(&XYZ123))");
    }

    #[test]
    fn skolem_equality_is_structural() {
        let a = Oid::skolem("f", "V", vec![Oid::key("X")]);
        let b = Oid::skolem("f", "V", vec![Oid::key("X")]);
        let c = Oid::skolem("f", "V", vec![Oid::key("Y")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn total_order_is_consistent() {
        use std::cmp::Ordering::*;
        let a = Oid::key("A");
        let b = Oid::key("B");
        assert_eq!(a.total_cmp(&b), Less);
        assert_eq!(b.total_cmp(&a), Greater);
        assert_eq!(a.total_cmp(&a), Equal);
        assert_eq!(Oid::root("r").total_cmp(&a), Less);
    }

    #[test]
    fn as_skolem_accessor() {
        let sk = Oid::skolem("g", "P", vec![Oid::key("28904")]);
        let (f, v, args) = sk.as_skolem().unwrap();
        assert_eq!(f.as_str(), "g");
        assert_eq!(v.as_str(), "P");
        assert_eq!(args.len(), 1);
        assert!(Oid::key("z").as_skolem().is_none());
    }
}
