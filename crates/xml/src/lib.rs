//! The XML data model of the MIX mediator (paper Section 2).
//!
//! MIX abstracts XML as *labeled ordered trees*: every vertex has an id
//! from the set `O` (rendered `&XYZ123`, `&root1`, …) and a label from
//! the constant domain `D`; leaf labels are called *values*; the edges
//! out of a node are ordered. This crate provides:
//!
//! * [`Oid`] — vertex ids, including the *skolem* ids `crElt` builds
//!   ("semantically meaningful id's … that include all information
//!   necessary for tracing the ancestry of an object").
//! * [`Document`] — an arena-allocated labeled ordered tree with O(1)
//!   child append and sibling/child navigation.
//! * [`NavDoc`] — the navigation interface (`d`, `r`, `fl`, `fv` of the
//!   QDOM command set) implemented by in-memory documents and, in
//!   `mix-wrapper`, by lazy virtual views of relational databases.
//! * [`LabelPath`] — the path expressions of `getD` (label sequences
//!   that *include the start node's label*, plus `*` and `data()`).
//! * an XML text [`parser`](parse::parse_document) and
//!   [printers](mod@print) used to load file sources and to regenerate the
//!   paper's figures.

pub mod nav;
pub mod oid;
pub mod parse;
pub mod path;
pub mod print;
pub mod tree;

pub use nav::{node_scalar, NavDoc, NodeRef, RenamedDoc};
pub use oid::Oid;
pub use parse::parse_document;
pub use path::{LabelPath, Step};
pub use tree::{Document, NodeContent};
