//! Arena-allocated labeled ordered trees.
//!
//! `T = (vertexId: O, label: D) | (vertexId: O, label: D, value: [T])` —
//! the signature from Section 2. Inner vertices carry an element label;
//! leaf vertices carry a value from `D`. Every vertex has an [`Oid`].

use crate::nav::{NavDoc, NodeRef};
use crate::oid::Oid;
use mix_common::{Name, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a vertex holds: an element label or a leaf value.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeContent {
    /// Inner (or empty) element with a label from `D`.
    Elem(Name),
    /// Leaf whose label is a value ("the labels of leaf nodes will also
    /// be called values").
    Text(Value),
}

impl NodeContent {
    /// The element label, if any.
    pub fn label(&self) -> Option<&Name> {
        match self {
            NodeContent::Elem(l) => Some(l),
            NodeContent::Text(_) => None,
        }
    }

    /// The leaf value, if any.
    pub fn value(&self) -> Option<&Value> {
        match self {
            NodeContent::Elem(_) => None,
            NodeContent::Text(v) => Some(v),
        }
    }
}

#[derive(Debug, Clone)]
struct XNode {
    content: NodeContent,
    oid: Oid,
    parent: Option<NodeRef>,
    first_child: Option<NodeRef>,
    last_child: Option<NodeRef>,
    next_sibling: Option<NodeRef>,
}

/// An in-memory labeled ordered tree (one XML document / source).
///
/// Nodes live in an arena and are addressed by [`NodeRef`]; appending a
/// child is O(1). Documents only grow (no node removal) — the mediator
/// never mutates source data.
#[derive(Debug)]
pub struct Document {
    name: Name,
    nodes: Vec<XNode>,
    next_surrogate: AtomicU64,
}

impl Clone for Document {
    fn clone(&self) -> Document {
        Document {
            name: self.name.clone(),
            nodes: self.nodes.clone(),
            next_surrogate: AtomicU64::new(self.next_surrogate.load(Ordering::Relaxed)),
        }
    }
}

impl Document {
    /// Create a document whose root is an element `label` with id
    /// `&<name>` (the paper's `&root1`-style source roots).
    pub fn new(name: impl Into<Name>, root_label: impl Into<Name>) -> Document {
        let name = name.into();
        let root = XNode {
            content: NodeContent::Elem(root_label.into()),
            oid: Oid::root(name.clone()),
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
        };
        Document {
            name,
            nodes: vec![root],
            next_surrogate: AtomicU64::new(0),
        }
    }

    /// The source name this document was registered under.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The root node.
    pub fn root_ref(&self) -> NodeRef {
        NodeRef(0)
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn fresh_surrogate(&self) -> Oid {
        let n = self.next_surrogate.fetch_add(1, Ordering::Relaxed);
        Oid::surrogate(n)
    }

    fn push_node(&mut self, parent: NodeRef, content: NodeContent, oid: Oid) -> NodeRef {
        let idx = NodeRef(self.nodes.len() as u32);
        self.nodes.push(XNode {
            content,
            oid,
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
        });
        let p = &mut self.nodes[parent.0 as usize];
        match p.last_child {
            None => {
                p.first_child = Some(idx);
                p.last_child = Some(idx);
            }
            Some(last) => {
                p.last_child = Some(idx);
                self.nodes[last.0 as usize].next_sibling = Some(idx);
            }
        }
        idx
    }

    /// Append an element child with an explicit oid.
    pub fn add_elem_with_oid(
        &mut self,
        parent: NodeRef,
        label: impl Into<Name>,
        oid: Oid,
    ) -> NodeRef {
        self.push_node(parent, NodeContent::Elem(label.into()), oid)
    }

    /// Append an element child with a fresh surrogate oid.
    pub fn add_elem(&mut self, parent: NodeRef, label: impl Into<Name>) -> NodeRef {
        let oid = self.fresh_surrogate();
        self.add_elem_with_oid(parent, label, oid)
    }

    /// Append a text-leaf child with an explicit oid.
    pub fn add_text_with_oid(&mut self, parent: NodeRef, value: Value, oid: Oid) -> NodeRef {
        self.push_node(parent, NodeContent::Text(value), oid)
    }

    /// Append a text-leaf child with a fresh surrogate oid.
    pub fn add_text(&mut self, parent: NodeRef, value: Value) -> NodeRef {
        let oid = self.fresh_surrogate();
        self.add_text_with_oid(parent, value, oid)
    }

    /// Convenience: append `<label>value</label>` (element wrapping one
    /// text leaf), the shape wrapper columns take in Fig. 2.
    pub fn add_field(&mut self, parent: NodeRef, label: impl Into<Name>, value: Value) -> NodeRef {
        let e = self.add_elem(parent, label);
        self.add_text(e, value);
        e
    }

    /// The node's content (label or value).
    pub fn content(&self, n: NodeRef) -> &NodeContent {
        &self.nodes[n.0 as usize].content
    }

    /// The node's parent, if any.
    pub fn parent(&self, n: NodeRef) -> Option<NodeRef> {
        self.nodes[n.0 as usize].parent
    }

    /// Iterate the node's children in order.
    pub fn children(&self, n: NodeRef) -> impl Iterator<Item = NodeRef> + '_ {
        let mut cur = self.nodes[n.0 as usize].first_child;
        std::iter::from_fn(move || {
            let c = cur?;
            cur = self.nodes[c.0 as usize].next_sibling;
            Some(c)
        })
    }

    /// Number of children of `n`.
    pub fn child_count(&self, n: NodeRef) -> usize {
        self.children(n).count()
    }

    /// Deep structural equality of two subtrees (labels and values;
    /// oids are ignored — they are identity, not content).
    pub fn deep_equal(a: &Document, an: NodeRef, b: &Document, bn: NodeRef) -> bool {
        if a.content(an) != b.content(bn) {
            return false;
        }
        let ac: Vec<_> = a.children(an).collect();
        let bc: Vec<_> = b.children(bn).collect();
        ac.len() == bc.len()
            && ac
                .iter()
                .zip(bc.iter())
                .all(|(&x, &y)| Document::deep_equal(a, x, b, y))
    }

    /// Deep-copy the subtree rooted at `src_node` in `src` as a new
    /// child of `parent` in `self`, preserving oids.
    pub fn copy_subtree(&mut self, parent: NodeRef, src: &Document, src_node: NodeRef) -> NodeRef {
        let new = self.push_node(parent, src.content(src_node).clone(), src.oid(src_node));
        let kids: Vec<_> = src.children(src_node).collect();
        for k in kids {
            self.copy_subtree(new, src, k);
        }
        new
    }
}

impl NavDoc for Document {
    fn doc_name(&self) -> &Name {
        &self.name
    }

    fn root(&self) -> NodeRef {
        self.root_ref()
    }

    fn first_child(&self, n: NodeRef) -> Option<NodeRef> {
        self.nodes[n.0 as usize].first_child
    }

    fn next_sibling(&self, n: NodeRef) -> Option<NodeRef> {
        self.nodes[n.0 as usize].next_sibling
    }

    fn label(&self, n: NodeRef) -> Option<Name> {
        self.nodes[n.0 as usize].content.label().cloned()
    }

    fn value(&self, n: NodeRef) -> Option<Value> {
        self.nodes[n.0 as usize].content.value().cloned()
    }

    fn oid(&self, n: NodeRef) -> Oid {
        self.nodes[n.0 as usize].oid.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        // <list>&root1; <customer &XYZ123> <id>XYZ123</id> <name>XYZInc.</name> </customer> </list>
        let mut d = Document::new("root1", "list");
        let root = d.root_ref();
        let c = d.add_elem_with_oid(root, "customer", Oid::key("XYZ123"));
        d.add_field(c, "id", Value::str("XYZ123"));
        d.add_field(c, "name", Value::str("XYZInc."));
        d
    }

    #[test]
    fn build_and_navigate() {
        let d = sample();
        let root = d.root_ref();
        assert_eq!(d.label(root).unwrap().as_str(), "list");
        assert_eq!(d.oid(root).to_string(), "&root1");
        let cust = d.first_child(root).unwrap();
        assert_eq!(d.label(cust).unwrap().as_str(), "customer");
        assert_eq!(d.oid(cust).to_string(), "&XYZ123");
        let id = d.first_child(cust).unwrap();
        let name = d.next_sibling(id).unwrap();
        assert_eq!(d.label(name).unwrap().as_str(), "name");
        assert!(d.next_sibling(name).is_none());
        let idv = d.first_child(id).unwrap();
        assert_eq!(d.value(idv), Some(Value::str("XYZ123")));
        assert!(d.first_child(idv).is_none());
    }

    #[test]
    fn children_order_preserved() {
        let mut d = Document::new("r", "list");
        let root = d.root_ref();
        for i in 0..5 {
            d.add_field(root, "item", Value::Int(i));
        }
        let vals: Vec<_> = d
            .children(root)
            .map(|c| d.value(d.first_child(c).unwrap()).unwrap())
            .collect();
        assert_eq!(vals, (0..5).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn deep_equal_ignores_oids() {
        let a = sample();
        let mut b = Document::new("other", "list");
        let root = b.root_ref();
        let c = b.add_elem(root, "customer"); // surrogate oid, not key
        b.add_field(c, "id", Value::str("XYZ123"));
        b.add_field(c, "name", Value::str("XYZInc."));
        assert!(Document::deep_equal(&a, a.root_ref(), &b, b.root_ref()));
        b.add_field(c, "extra", Value::Int(1));
        assert!(!Document::deep_equal(&a, a.root_ref(), &b, b.root_ref()));
    }

    #[test]
    fn copy_subtree_preserves_structure_and_oids() {
        let a = sample();
        let mut b = Document::new("copy", "list");
        let broot = b.root_ref();
        let cust = a.first_child(a.root_ref()).unwrap();
        let copied = b.copy_subtree(broot, &a, cust);
        assert!(Document::deep_equal(&a, cust, &b, copied));
        assert_eq!(b.oid(copied), a.oid(cust));
    }

    #[test]
    fn parent_links() {
        let d = sample();
        let cust = d.first_child(d.root_ref()).unwrap();
        let id = d.first_child(cust).unwrap();
        assert_eq!(d.parent(id), Some(cust));
        assert_eq!(d.parent(cust), Some(d.root_ref()));
        assert_eq!(d.parent(d.root_ref()), None);
    }
}
