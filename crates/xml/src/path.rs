//! `getD` path expressions.
//!
//! The paper's `getD_{$A.r→$X}` navigates from the node bound to `$A`
//! along a path whose labels satisfy the regular expression `r`, where —
//! unusually — "the path contains the labels of both the start and
//! finish node". The XQuery subset of Fig. 4 only generates plain label
//! sequences, so [`LabelPath`] supports label steps plus a `*` wildcard
//! and a terminal `data()` step (binding the text leaf), which is how
//! the translator compiles `$C/id/data()`.

use crate::nav::{NavDoc, NodeRef};
use mix_common::{MixError, Name, Result};
use std::fmt;

/// One step of a label path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// Match a node labeled exactly this.
    Label(Name),
    /// Match any element node.
    Wild,
    /// Match a text leaf (the `data()` accessor).
    Data,
}

impl Step {
    fn matches<D: NavDoc + ?Sized>(&self, doc: &D, n: NodeRef) -> bool {
        match self {
            Step::Label(l) => doc.label(n).as_ref() == Some(l),
            Step::Wild => doc.label(n).is_some(),
            Step::Data => doc.value(n).is_some(),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Label(l) => write!(f, "{l}"),
            Step::Wild => write!(f, "*"),
            Step::Data => write!(f, "data()"),
        }
    }
}

/// A non-empty sequence of steps. The first step matches the *start
/// node itself*; each later step matches a child of the previous match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelPath {
    steps: Vec<Step>,
}

impl LabelPath {
    /// Build from steps. Errors on an empty sequence or a non-terminal
    /// `data()` step.
    pub fn new(steps: Vec<Step>) -> Result<LabelPath> {
        if steps.is_empty() {
            return Err(MixError::invalid("empty label path"));
        }
        if steps[..steps.len() - 1]
            .iter()
            .any(|s| matches!(s, Step::Data))
        {
            return Err(MixError::invalid("data() must be the final path step"));
        }
        Ok(LabelPath { steps })
    }

    /// Parse a dot- or slash-separated path: `customer.id.data()`,
    /// `CustRec/customer/name`, `list.*`.
    pub fn parse(text: &str) -> Result<LabelPath> {
        let parts: Vec<&str> = text.split(['.', '/']).collect();
        let mut steps = Vec::with_capacity(parts.len());
        for (i, raw) in parts.iter().enumerate() {
            let raw = raw.trim();
            if raw.is_empty() {
                return Err(MixError::parse(
                    "path",
                    i,
                    format!("empty step in {text:?}"),
                ));
            }
            steps.push(match raw {
                "*" => Step::Wild,
                "data()" => Step::Data,
                label => Step::Label(Name::new(label)),
            });
        }
        LabelPath::new(steps)
    }

    /// A single-label path.
    pub fn label(l: impl Into<Name>) -> LabelPath {
        LabelPath {
            steps: vec![Step::Label(l.into())],
        }
    }

    /// The steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false (paths are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first step — `first(p)` in the rewrite rules of Table 2.
    pub fn first(&self) -> &Step {
        &self.steps[0]
    }

    /// The remainder `q = p / first(p)`; `None` when the path is a
    /// single step (`q = ε`).
    pub fn rest(&self) -> Option<LabelPath> {
        if self.steps.len() <= 1 {
            None
        } else {
            Some(LabelPath {
                steps: self.steps[1..].to_vec(),
            })
        }
    }

    /// A new path with `step` prepended (rule 1 builds `$W.list.q`).
    pub fn prepend(&self, step: Step) -> LabelPath {
        let mut steps = Vec::with_capacity(self.steps.len() + 1);
        steps.push(step);
        steps.extend(self.steps.iter().cloned());
        LabelPath { steps }
    }

    /// Concatenate: `self` then `other` (used when merging `getD`
    /// chains: the last node of `self` is the first of `other`, so
    /// `other`'s first step is dropped after checking compatibility).
    pub fn join(&self, other: &LabelPath) -> Option<LabelPath> {
        let last = self.steps.last().expect("non-empty");
        let compatible = match (last, other.first()) {
            (a, b) if a == b => true,
            (Step::Wild, Step::Label(_)) | (Step::Label(_), Step::Wild) => true,
            _ => false,
        };
        if !compatible {
            return None;
        }
        // Keep the more specific of the two overlapping steps.
        let mut steps = self.steps.clone();
        if matches!(last, Step::Wild) {
            *steps.last_mut().unwrap() = other.first().clone();
        }
        steps.extend(other.steps[1..].iter().cloned());
        Some(LabelPath { steps })
    }

    /// Could the first step match a node labeled `label`? (the
    /// `r ∈ first(p)` test of rules 1–4.)
    pub fn first_matches_label(&self, label: &Name) -> bool {
        match self.first() {
            Step::Label(l) => l == label,
            Step::Wild => true,
            Step::Data => false,
        }
    }

    /// Evaluate the path from `start`, returning every matching node in
    /// document order. The first step is checked against `start`
    /// itself.
    pub fn eval<D: NavDoc + ?Sized>(&self, doc: &D, start: NodeRef) -> Vec<NodeRef> {
        if !self.steps[0].matches(doc, start) {
            return Vec::new();
        }
        let mut frontier = vec![start];
        for step in &self.steps[1..] {
            let mut next = Vec::new();
            for n in frontier {
                let mut c = doc.first_child(n);
                while let Some(ch) = c {
                    if step.matches(doc, ch) {
                        next.push(ch);
                    }
                    c = doc.next_sibling(ch);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }
}

impl fmt::Display for LabelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;
    use mix_common::Value;

    fn db() -> Document {
        let mut d = Document::new("root1", "list");
        let root = d.root_ref();
        for (key, id, name) in [
            ("XYZ123", "XYZ123", "XYZInc."),
            ("DEF345", "DEF345", "DEFCorp."),
        ] {
            let c = d.add_elem_with_oid(root, "customer", crate::oid::Oid::key(key));
            d.add_field(c, "id", Value::str(id));
            d.add_field(c, "name", Value::str(name));
        }
        d
    }

    #[test]
    fn parse_and_display() {
        let p = LabelPath::parse("customer.id.data()").unwrap();
        assert_eq!(p.to_string(), "customer.id.data()");
        assert_eq!(p.len(), 3);
        let p = LabelPath::parse("CustRec/customer/name").unwrap();
        assert_eq!(p.to_string(), "CustRec.customer.name");
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(LabelPath::parse("").is_err());
        assert!(LabelPath::parse("a..b").is_err());
        assert!(LabelPath::new(vec![Step::Data, Step::Wild]).is_err());
    }

    #[test]
    fn first_step_matches_start_node() {
        let d = db();
        let cust = d.first_child(d.root_ref()).unwrap();
        // Path starts with the start node's own label, per the paper.
        let p = LabelPath::parse("customer.id").unwrap();
        assert_eq!(p.eval(&d, cust).len(), 1);
        // A path whose first label differs matches nothing.
        let p = LabelPath::parse("order.id").unwrap();
        assert!(p.eval(&d, cust).is_empty());
    }

    #[test]
    fn eval_from_root_finds_all_in_order() {
        let d = db();
        let p = LabelPath::parse("list.customer.name.data()").unwrap();
        let hits = p.eval(&d, d.root_ref());
        let vals: Vec<_> = hits.iter().map(|&n| d.value(n).unwrap()).collect();
        assert_eq!(vals, vec![Value::str("XYZInc."), Value::str("DEFCorp.")]);
    }

    #[test]
    fn wildcard_steps() {
        let d = db();
        let p = LabelPath::parse("list.*").unwrap();
        assert_eq!(p.eval(&d, d.root_ref()).len(), 2);
        let p = LabelPath::parse("list.customer.*").unwrap();
        assert_eq!(p.eval(&d, d.root_ref()).len(), 4); // id+name per customer
    }

    #[test]
    fn rest_and_prepend() {
        let p = LabelPath::parse("custRec.orderInfo.order").unwrap();
        assert_eq!(p.first(), &Step::Label(Name::new("custRec")));
        let q = p.rest().unwrap();
        assert_eq!(q.to_string(), "orderInfo.order");
        let w = q.prepend(Step::Label(Name::new("list")));
        assert_eq!(w.to_string(), "list.orderInfo.order");
        assert!(LabelPath::parse("x").unwrap().rest().is_none());
    }

    #[test]
    fn join_merges_chains() {
        // getD($A.custRec,$R) then getD($R.custRec.orderInfo,$S)
        // composes to getD($A.custRec.orderInfo,$S).
        let a = LabelPath::parse("custRec").unwrap();
        let b = LabelPath::parse("custRec.orderInfo").unwrap();
        assert_eq!(a.join(&b).unwrap().to_string(), "custRec.orderInfo");
        let c = LabelPath::parse("order.value").unwrap();
        assert!(a.join(&c).is_none());
        // wildcard overlap keeps the specific label
        let w = LabelPath::parse("custRec.*").unwrap();
        let d = LabelPath::parse("orderInfo.order").unwrap();
        assert_eq!(w.join(&d).unwrap().to_string(), "custRec.orderInfo.order");
    }

    #[test]
    fn first_matches_label_test() {
        let p = LabelPath::parse("custRec.orderInfo").unwrap();
        assert!(p.first_matches_label(&Name::new("custRec")));
        assert!(!p.first_matches_label(&Name::new("orderInfo")));
        assert!(LabelPath::parse("*.x")
            .unwrap()
            .first_matches_label(&Name::new("anything")));
    }
}
