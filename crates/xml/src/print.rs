//! Serialization and figure-style rendering.
//!
//! Two output forms:
//!
//! * [`to_xml`] — plain XML text (round-trips through the parser).
//! * [`render_tree`] — the annotated tree layout the paper's figures
//!   use (Fig. 2, Fig. 7): each line shows the vertex id and label,
//!   indentation shows structure, leaves show `label = value`.

use crate::nav::{NavDoc, NodeRef};
use crate::parse::encode_entities;
use std::fmt::Write as _;

/// Serialize the subtree under `n` as XML text.
pub fn to_xml<D: NavDoc + ?Sized>(doc: &D, n: NodeRef) -> String {
    let mut out = String::new();
    write_xml(doc, n, &mut out, 0, false);
    out
}

/// Serialize with indentation (one element per line).
pub fn to_xml_pretty<D: NavDoc + ?Sized>(doc: &D, n: NodeRef) -> String {
    let mut out = String::new();
    write_xml(doc, n, &mut out, 0, true);
    out
}

fn write_xml<D: NavDoc + ?Sized>(
    doc: &D,
    n: NodeRef,
    out: &mut String,
    depth: usize,
    pretty: bool,
) {
    let pad = if pretty {
        "  ".repeat(depth)
    } else {
        String::new()
    };
    if let Some(v) = doc.value(n) {
        let _ = write!(out, "{pad}{}", encode_entities(&v.to_string()));
        if pretty {
            out.push('\n');
        }
        return;
    }
    let label = doc.label(n).expect("element has a label");
    let mut child = doc.first_child(n);
    if child.is_none() {
        let _ = write!(out, "{pad}<{label}/>");
        if pretty {
            out.push('\n');
        }
        return;
    }
    // Single text child renders inline: <id>XYZ123</id>.
    let only_text = {
        let c = child.unwrap();
        doc.next_sibling(c).is_none() && doc.value(c).is_some()
    };
    if only_text {
        let v = doc.value(child.unwrap()).unwrap();
        let _ = write!(
            out,
            "{pad}<{label}>{}</{label}>",
            encode_entities(&v.to_string())
        );
        if pretty {
            out.push('\n');
        }
        return;
    }
    let _ = write!(out, "{pad}<{label}>");
    if pretty {
        out.push('\n');
    }
    while let Some(c) = child {
        write_xml(doc, c, out, depth + 1, pretty);
        child = doc.next_sibling(c);
    }
    let _ = write!(out, "{pad}</{label}>");
    if pretty {
        out.push('\n');
    }
}

/// Render the subtree under `n` in the paper's figure style:
///
/// ```text
/// &root1 list
///   &XYZ123 customer
///     &_0 id = XYZ123
/// ```
pub fn render_tree<D: NavDoc + ?Sized>(doc: &D, n: NodeRef) -> String {
    let mut out = String::new();
    render(doc, n, &mut out, 0);
    out
}

fn render<D: NavDoc + ?Sized>(doc: &D, n: NodeRef, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    let oid = doc.oid(n);
    if let Some(v) = doc.value(n) {
        let _ = writeln!(out, "{pad}{oid} = {v}");
        return;
    }
    let label = doc.label(n).expect("element");
    // Field shape `<id>XYZ123</id>` renders on one line, like the figures.
    let first = doc.first_child(n);
    if let Some(c) = first {
        if doc.next_sibling(c).is_none() {
            if let Some(v) = doc.value(c) {
                let _ = writeln!(out, "{pad}{oid} {label} = {v}");
                return;
            }
        }
    }
    let _ = writeln!(out, "{pad}{oid} {label}");
    let mut child = first;
    while let Some(c) = child {
        render(doc, c, out, depth + 1);
        child = doc.next_sibling(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;
    use crate::parse::parse_document;
    use crate::tree::Document;
    use mix_common::Value;

    fn sample() -> Document {
        let mut d = Document::new("root1", "list");
        let root = d.root_ref();
        let c = d.add_elem_with_oid(root, "customer", Oid::key("XYZ123"));
        d.add_field(c, "id", Value::str("XYZ123"));
        d.add_field(c, "addr", Value::str("LosAngeles"));
        d
    }

    #[test]
    fn xml_round_trips() {
        let d = sample();
        let text = to_xml(&d, d.root_ref());
        assert_eq!(
            text,
            "<list><customer><id>XYZ123</id><addr>LosAngeles</addr></customer></list>"
        );
        let back = parse_document("root1", &text).unwrap();
        assert!(Document::deep_equal(
            &d,
            d.root_ref(),
            &back,
            back.root_ref()
        ));
    }

    #[test]
    fn pretty_xml_has_indentation() {
        let d = sample();
        let text = to_xml_pretty(&d, d.root_ref());
        assert!(text.contains("\n  <customer>"));
        assert!(text.contains("\n    <id>XYZ123</id>"));
    }

    #[test]
    fn tree_rendering_shows_oids() {
        let d = sample();
        let text = render_tree(&d, d.root_ref());
        assert!(text.starts_with("&root1 list\n"));
        assert!(text.contains("  &XYZ123 customer\n"));
        assert!(text.contains("    &_0 id = XYZ123\n"));
    }

    #[test]
    fn entities_encoded_on_output() {
        let mut d = Document::new("r", "x");
        let root = d.root_ref();
        d.add_field(root, "s", Value::str("a & b"));
        let text = to_xml(&d, d.root_ref());
        assert_eq!(text, "<x><s>a &amp; b</s></x>");
        let back = parse_document("r", &text).unwrap();
        assert!(Document::deep_equal(
            &d,
            d.root_ref(),
            &back,
            back.root_ref()
        ));
    }

    #[test]
    fn empty_element_serializes_self_closed() {
        let mut d = Document::new("r", "x");
        let root = d.root_ref();
        d.add_elem(root, "e");
        assert_eq!(to_xml(&d, d.root_ref()), "<x><e/></x>");
    }
}
