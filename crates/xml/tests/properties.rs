//! Property tests for the XML substrate: serializer/parser round
//! trips, path evaluation laws, and oid ordering laws.

use mix_common::{Name, Value};
use mix_xml::{parse_document, print, Document, LabelPath, NavDoc, Oid, Step};
use proptest::prelude::*;

fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn text_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|n| Value::Int(n as i64)),
        "[a-zA-Z][a-zA-Z ]{0,10}[a-zA-Z]".prop_map(Value::str),
    ]
}

/// Recursive document shapes: (label, children) trees.
#[derive(Debug, Clone)]
enum Shape {
    Text(Value),
    Elem(String, Vec<Shape>),
}

fn shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        text_value().prop_map(Shape::Text),
        label().prop_map(|l| Shape::Elem(l, vec![])),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (label(), prop::collection::vec(inner, 0..4))
            .prop_map(|(l, kids)| Shape::Elem(l, kids))
    })
}

fn build(doc: &mut Document, parent: mix_xml::NodeRef, s: &Shape) {
    match s {
        Shape::Text(v) => {
            doc.add_text(parent, v.clone());
        }
        Shape::Elem(l, kids) => {
            let e = doc.add_elem(parent, l.clone());
            for k in kids {
                build(doc, e, k);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// to_xml ∘ parse preserves structure and content.
    #[test]
    fn xml_round_trip(kids in prop::collection::vec(shape(), 0..5)) {
        let mut doc = Document::new("r", "list");
        let root = doc.root_ref();
        for k in &kids {
            build(&mut doc, root, k);
        }
        // Adjacent text leaves merge in XML text, and merged numeric
        // text may re-canonicalize (e.g. two ints concatenating into a
        // float-sized number) — two normalization passes, then a
        // fixpoint.
        let text1 = print::to_xml(&doc, doc.root());
        let doc1 = parse_document("r", &text1).unwrap();
        let text2 = print::to_xml(&doc1, doc1.root());
        let doc2 = parse_document("r", &text2).unwrap();
        let text3 = print::to_xml(&doc2, doc2.root());
        let doc3 = parse_document("r", &text3).unwrap();
        prop_assert!(Document::deep_equal(&doc2, doc2.root(), &doc3, doc3.root()),
            "\nsecond: {text2}\nthird:  {text3}");
        prop_assert_eq!(text2, text3);
    }

    /// Path evaluation agrees with a naive recursive matcher.
    #[test]
    fn path_eval_matches_naive(
        kids in prop::collection::vec(shape(), 1..4),
        raw_steps in prop::collection::vec(label(), 1..3),
        use_data in any::<bool>(),
    ) {
        let mut doc = Document::new("r", "list");
        let root = doc.root_ref();
        for k in &kids {
            build(&mut doc, root, k);
        }
        let mut steps: Vec<Step> = Vec::new();
        steps.push(Step::Label(Name::new("list")));
        steps.extend(raw_steps.iter().map(|l| Step::Label(Name::new(l.clone()))));
        if use_data {
            steps.push(Step::Data);
        }
        let path = LabelPath::new(steps.clone()).unwrap();
        let fast = path.eval(&doc, root);

        // naive matcher
        fn naive(doc: &Document, n: mix_xml::NodeRef, steps: &[Step]) -> Vec<mix_xml::NodeRef> {
            let matches = match &steps[0] {
                Step::Label(l) => doc.label(n).as_ref() == Some(l),
                Step::Wild => doc.label(n).is_some(),
                Step::Data => doc.value(n).is_some(),
            };
            if !matches {
                return vec![];
            }
            if steps.len() == 1 {
                return vec![n];
            }
            let mut out = Vec::new();
            for c in doc.children(n) {
                out.extend(naive(doc, c, &steps[1..]));
            }
            out
        }
        let slow = naive(&doc, root, &steps);
        prop_assert_eq!(fast, slow);
    }

    /// Oid total order: antisymmetric, transitive on a sample, and
    /// consistent with equality.
    #[test]
    fn oid_total_order_laws(
        a in oid_strategy(),
        b in oid_strategy(),
        c in oid_strategy(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
        }
        if a == b {
            prop_assert_eq!(a.total_cmp(&b), Ordering::Equal);
        }
    }
}

fn oid_strategy() -> impl Strategy<Value = Oid> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(Oid::surrogate),
        "[A-Z]{1,4}[0-9]{0,3}".prop_map(Oid::key),
        label().prop_map(Oid::root),
        any::<i32>().prop_map(|n| Oid::lit(Value::Int(n as i64))),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        ("[fgh]", "[A-Z]", prop::collection::vec(inner, 0..3))
            .prop_map(|(f, v, args)| Oid::skolem(f, v, args))
    })
}
