//! Deterministic property checks for the XML substrate:
//! serializer/parser round trips, path evaluation laws, and oid
//! ordering laws, driven by an in-file seeded generator (no external
//! randomness so offline builds stay green).

use mix_common::{Name, Value};
use mix_xml::{parse_document, print, Document, LabelPath, NavDoc, Oid, Step};

/// Tiny LCG (Numerical Recipes constants) — enough to fuzz shapes
/// deterministically.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

fn label(rng: &mut Rng) -> String {
    let alphabet = b"abcdefghij";
    let len = 1 + rng.below(5) as usize;
    (0..len)
        .map(|_| alphabet[rng.below(10) as usize] as char)
        .collect()
}

fn text_value(rng: &mut Rng) -> Value {
    if rng.below(2) == 0 {
        Value::Int(rng.next_u64() as i32 as i64)
    } else {
        let words = ["alpha", "Bravo Charlie", "x", "Mixed Case Text", "zz top"];
        Value::str(words[rng.below(words.len() as u64) as usize])
    }
}

/// Recursive document shapes: (label, children) trees.
#[derive(Debug, Clone)]
enum Shape {
    Text(Value),
    Elem(String, Vec<Shape>),
}

fn shape(rng: &mut Rng, depth: usize) -> Shape {
    if depth == 0 || rng.below(3) == 0 {
        if rng.below(2) == 0 {
            Shape::Text(text_value(rng))
        } else {
            Shape::Elem(label(rng), vec![])
        }
    } else {
        let n = rng.below(4) as usize;
        let kids = (0..n).map(|_| shape(rng, depth - 1)).collect();
        Shape::Elem(label(rng), kids)
    }
}

fn build(doc: &mut Document, parent: mix_xml::NodeRef, s: &Shape) {
    match s {
        Shape::Text(v) => {
            doc.add_text(parent, v.clone());
        }
        Shape::Elem(l, kids) => {
            let e = doc.add_elem(parent, l.clone());
            for k in kids {
                build(doc, e, k);
            }
        }
    }
}

/// to_xml ∘ parse preserves structure and content.
#[test]
fn xml_round_trip() {
    for seed in 0..96u64 {
        let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(1));
        let mut doc = Document::new("r", "list");
        let root = doc.root_ref();
        for _ in 0..rng.below(5) {
            let s = shape(&mut rng, 3);
            build(&mut doc, root, &s);
        }
        // Adjacent text leaves merge in XML text, and merged numeric
        // text may re-canonicalize (e.g. two ints concatenating into a
        // float-sized number) — two normalization passes, then a
        // fixpoint.
        let text1 = print::to_xml(&doc, doc.root());
        let doc1 = parse_document("r", &text1).unwrap();
        let text2 = print::to_xml(&doc1, doc1.root());
        let doc2 = parse_document("r", &text2).unwrap();
        let text3 = print::to_xml(&doc2, doc2.root());
        let doc3 = parse_document("r", &text3).unwrap();
        assert!(
            Document::deep_equal(&doc2, doc2.root(), &doc3, doc3.root()),
            "seed {seed}\nsecond: {text2}\nthird:  {text3}"
        );
        assert_eq!(text2, text3, "seed {seed}");
    }
}

/// Path evaluation agrees with a naive recursive matcher.
#[test]
fn path_eval_matches_naive() {
    for seed in 0..96u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(3));
        let mut doc = Document::new("r", "list");
        let root = doc.root_ref();
        for _ in 0..1 + rng.below(3) {
            let s = shape(&mut rng, 3);
            build(&mut doc, root, &s);
        }
        let mut steps: Vec<Step> = vec![Step::Label(Name::new("list"))];
        for _ in 0..1 + rng.below(2) {
            steps.push(Step::Label(Name::new(label(&mut rng))));
        }
        if rng.below(2) == 0 {
            steps.push(Step::Data);
        }
        let path = LabelPath::new(steps.clone()).unwrap();
        let fast = path.eval(&doc, root);

        // naive matcher
        fn naive(doc: &Document, n: mix_xml::NodeRef, steps: &[Step]) -> Vec<mix_xml::NodeRef> {
            let matches = match &steps[0] {
                Step::Label(l) => doc.label(n).as_ref() == Some(l),
                Step::Wild => doc.label(n).is_some(),
                Step::Data => doc.value(n).is_some(),
            };
            if !matches {
                return vec![];
            }
            if steps.len() == 1 {
                return vec![n];
            }
            let mut out = Vec::new();
            for c in doc.children(n) {
                out.extend(naive(doc, c, &steps[1..]));
            }
            out
        }
        let slow = naive(&doc, root, &steps);
        assert_eq!(fast, slow, "seed {seed}");
    }
}

fn oid_pool() -> Vec<Oid> {
    let mut leaves = vec![
        Oid::surrogate(0),
        Oid::surrogate(7),
        Oid::surrogate(u64::MAX),
        Oid::key("A"),
        Oid::key("XYZ123"),
        Oid::root("doc"),
        Oid::root("zzz"),
        Oid::lit(Value::Int(-5)),
        Oid::lit(Value::Int(5)),
    ];
    let skolems: Vec<Oid> = vec![
        Oid::skolem("f", "V", vec![]),
        Oid::skolem("f", "V", vec![leaves[3].clone()]),
        Oid::skolem("f", "W", vec![leaves[3].clone()]),
        Oid::skolem("g", "V", vec![leaves[4].clone(), leaves[7].clone()]),
        Oid::skolem(
            "g",
            "V",
            vec![Oid::skolem("f", "V", vec![leaves[0].clone()])],
        ),
    ];
    leaves.extend(skolems);
    leaves
}

/// Oid total order: reflexive-equal, antisymmetric, transitive, and
/// consistent with equality — exhaustively over a pool of oid shapes.
#[test]
fn oid_total_order_laws() {
    use std::cmp::Ordering;
    let pool = oid_pool();
    for a in &pool {
        assert_eq!(a.total_cmp(a), Ordering::Equal, "{a}");
        for b in &pool {
            assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "{a} {b}");
            if a == b {
                assert_eq!(a.total_cmp(b), Ordering::Equal, "{a} {b}");
            }
            for c in &pool {
                if a.total_cmp(b) == Ordering::Less && b.total_cmp(c) == Ordering::Less {
                    assert_eq!(a.total_cmp(c), Ordering::Less, "{a} {b} {c}");
                }
            }
        }
    }
}
