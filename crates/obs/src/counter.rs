//! Typed work counters.
//!
//! Counters use relaxed atomics wrapped in `Arc` by the owners that
//! share them. Each QDOM session is a synchronous command loop, but a
//! session's counters are written from several threads: the pooled
//! prefetch producers account `RetriesAttempted`/`FaultsInjected`/
//! backoff from pool workers, and server threads observe session stats
//! concurrently — so the counter cells are `AtomicU64` rather than
//! `Cell`. All accesses are
//! `Relaxed`: counters are statistics, not synchronization. The counter
//! set is closed and typed: adding a counter means adding a [`Counter`]
//! variant, and every read goes through [`Stats::get`] or the
//! [`Snapshot`]/[`Delta`] API rather than per-counter getters.

use std::fmt;
use std::ops::Index;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of counters (one per [`Counter`] variant).
const N: usize = 34;

/// One kind of work the substrate counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// SQL queries issued to a relational source.
    SqlQueries,
    /// Tuples actually shipped from source cursors to the mediator
    /// (the high-watermark of rows pulled; the paper's "partial result
    /// evaluation" shows up as this staying far below the full result).
    TuplesShipped,
    /// Rows scanned inside the relational executor (internal work).
    RowsScanned,
    /// Navigation commands answered by the mediator
    /// (`d`/`r`/`fl`/`fv`/`getRoot`).
    NavCommands,
    /// XMAS operator invocations at the mediator (element creations,
    /// group formations, …) — the "mediator work" metric of claim E5.
    MediatorOps,
    /// Result-tree nodes materialized at the mediator.
    NodesBuilt,
    /// Hash indexes built by the physical join/semi-join/groupBy
    /// kernels (each is one full drain of the build side).
    HashBuilds,
    /// Join predicate evaluations: every candidate pair a join or
    /// semi-join examines. Nested loops pay |L|·|R|; the hash kernels
    /// pay one per probe-side tuple plus bucket matches, i.e.
    /// O(|L| + |R| + |output|).
    JoinProbes,
    /// Joins/semi-joins that fell back to the nested-loop kernel
    /// because no equi-conjunct was extractable.
    NlFallbacks,
    /// Decontextualized-plan cache hits in the QDOM session.
    PlanCacheHits,
    /// Decontextualized-plan cache misses (full translate + rewrite).
    PlanCacheMisses,
    /// Blocks of tuples shipped from source cursors (block-at-a-time
    /// execution; `Off` mode ships one-row blocks, so this equals
    /// `TuplesShipped` there). Use [`Stats::record_block`] so the
    /// per-block row statistics stay consistent.
    BlocksShipped,
    /// Retries of a failed cursor pull (each re-issue of the same
    /// block after a transient backend fault counts once).
    RetriesAttempted,
    /// Faults the chaos backend injected (transient and permanent).
    FaultsInjected,
    /// Backend errors that *escaped* the retry loop — permanent faults
    /// and exhausted retry budgets surfacing to the layers above.
    BackendErrors,
    /// Total milliseconds of retry backoff scheduled (0 under the
    /// deterministic test policy, whose base backoff is zero).
    RetryBackoffMs,
    /// Blocks the consumer found already waiting in the prefetch
    /// channel (no stall): the pipelined prefetcher hid the backend
    /// round trip for these.
    PrefetchHitBlocks,
    /// Nanoseconds the consumer spent blocked waiting on the prefetch
    /// channel. `PrefetchStallNs` near zero with many
    /// `PrefetchHitBlocks` is what "the overlap is real" looks like.
    PrefetchStallNs,
    /// Prefetcher threads cancelled before they drained their cursor
    /// (session dropped mid-drain, error latched above, …).
    PrefetchAborted,
    /// Approximate heap bytes of shipped columnar blocks (typed column
    /// vectors + validity masks; shared string cells charge only their
    /// handle — see `ColumnBlock::byte_size` in `mix-common`).
    BlockBytes,
    /// Cells (rows × arity) decoded from shipped blocks into result
    /// values — the denominator of the per-cell decode cost.
    CellsDecoded,
    /// String cells in shipped columnar blocks whose allocation was
    /// shared (interned or otherwise multiply-owned) rather than
    /// copied.
    InternHits,
    /// Wire sessions the server accepted (handshake completed and a
    /// worker session started).
    SessionsOpened,
    /// Wire sessions that ended (client close, idle timeout, protocol
    /// error, or server shutdown). `SessionsOpened - SessionsClosed`
    /// is the live-session gauge.
    SessionsClosed,
    /// Connections refused by admission control (max-sessions reached
    /// or version mismatch) — the client got a clean rejection frame,
    /// not a dropped socket.
    SessionsRejected,
    /// QDOM commands dispatched on behalf of wire clients (the served
    /// counterpart of `NavCommands`, counted per framed command).
    WireCommands,
    /// Bytes read off the wire by the server (frame headers included).
    WireBytesIn,
    /// Bytes written to the wire by the server (frame headers
    /// included).
    WireBytesOut,
    /// Shared plan-cache lookups/inserts that found their shard lock
    /// already held and had to wait (mutex-striped LRU; see
    /// `mix_common::ShardedLru`). High values relative to hits+misses
    /// mean too few shards for the session count.
    PlanCacheShardContention,
    /// Cumulative prefetch-executor queue-depth samples, one per job
    /// enqueue (depth observed after the push). Divide by
    /// `PoolTasksRun` for the average backlog a job saw when queued.
    PrefetchQueueDepth,
    /// Jobs dispatched by a worker pool (each pickup of a queued job
    /// counts once; a job that parks and resumes counts again).
    PoolTasksRun,
    /// Total shard executions a sharded backend issued: +1 per routed
    /// query, +N per N-shard scatter. `ShardsTargeted /
    /// (ShardQueriesRouted + ScatterMerges)` is the average fan-out.
    ShardsTargeted,
    /// Statements whose shard-key conjuncts pinned exactly one shard
    /// (no scatter, no merge — the zero-overhead federation path).
    ShardQueriesRouted,
    /// Scatter-gather executions: the statement went to every shard and
    /// the mediator ran a k-way ordered merge over the shard cursors.
    ScatterMerges,
}

impl Counter {
    /// Every counter, in canonical (display) order.
    pub const ALL: [Counter; N] = [
        Counter::SqlQueries,
        Counter::TuplesShipped,
        Counter::RowsScanned,
        Counter::NavCommands,
        Counter::MediatorOps,
        Counter::NodesBuilt,
        Counter::HashBuilds,
        Counter::JoinProbes,
        Counter::NlFallbacks,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::BlocksShipped,
        Counter::RetriesAttempted,
        Counter::FaultsInjected,
        Counter::BackendErrors,
        Counter::RetryBackoffMs,
        Counter::PrefetchHitBlocks,
        Counter::PrefetchStallNs,
        Counter::PrefetchAborted,
        Counter::BlockBytes,
        Counter::CellsDecoded,
        Counter::InternHits,
        Counter::SessionsOpened,
        Counter::SessionsClosed,
        Counter::SessionsRejected,
        Counter::WireCommands,
        Counter::WireBytesIn,
        Counter::WireBytesOut,
        Counter::PlanCacheShardContention,
        Counter::PrefetchQueueDepth,
        Counter::PoolTasksRun,
        Counter::ShardsTargeted,
        Counter::ShardQueriesRouted,
        Counter::ScatterMerges,
    ];

    /// A stable snake_case label (table rendering, log output).
    pub fn label(self) -> &'static str {
        match self {
            Counter::SqlQueries => "sql_queries",
            Counter::TuplesShipped => "tuples_shipped",
            Counter::RowsScanned => "rows_scanned",
            Counter::NavCommands => "nav_commands",
            Counter::MediatorOps => "mediator_ops",
            Counter::NodesBuilt => "nodes_built",
            Counter::HashBuilds => "hash_builds",
            Counter::JoinProbes => "join_probes",
            Counter::NlFallbacks => "nl_fallbacks",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::BlocksShipped => "blocks_shipped",
            Counter::RetriesAttempted => "retries_attempted",
            Counter::FaultsInjected => "faults_injected",
            Counter::BackendErrors => "backend_errors",
            Counter::RetryBackoffMs => "retry_backoff_ms",
            Counter::PrefetchHitBlocks => "prefetch_hit_blocks",
            Counter::PrefetchStallNs => "prefetch_stall_ns",
            Counter::PrefetchAborted => "prefetch_aborted",
            Counter::BlockBytes => "block_bytes",
            Counter::CellsDecoded => "cells_decoded",
            Counter::InternHits => "intern_hits",
            Counter::SessionsOpened => "sessions_opened",
            Counter::SessionsClosed => "sessions_closed",
            Counter::SessionsRejected => "sessions_rejected",
            Counter::WireCommands => "wire_commands",
            Counter::WireBytesIn => "wire_bytes_in",
            Counter::WireBytesOut => "wire_bytes_out",
            Counter::PlanCacheShardContention => "plan_cache_shard_contention",
            Counter::PrefetchQueueDepth => "prefetch_queue_depth",
            Counter::PoolTasksRun => "pool_tasks_run",
            Counter::ShardsTargeted => "shards_targeted",
            Counter::ShardQueriesRouted => "shard_queries_routed",
            Counter::ScatterMerges => "scatter_merges",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared mutable counter set. Clone to share (reference semantics).
/// `Send + Sync`: the prefetcher thread bumps retry/fault counters
/// directly.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    inner: Arc<StatsInner>,
}

#[derive(Debug)]
struct StatsInner {
    counts: [AtomicU64; N],
    // Per-block row counts, tracked outside the Snapshot/Delta arrays:
    // they are aggregates (min/max/total), not monotone counters.
    block_min: AtomicU64,
    block_max: AtomicU64,
    block_rows: AtomicU64,
}

impl Default for StatsInner {
    fn default() -> StatsInner {
        StatsInner {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            block_min: AtomicU64::new(0),
            block_max: AtomicU64::new(0),
            block_rows: AtomicU64::new(0),
        }
    }
}

/// Aggregate per-block row counts (see [`Stats::record_block`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRows {
    /// Smallest block shipped so far.
    pub min: u64,
    /// Largest block shipped so far.
    pub max: u64,
    /// Total rows shipped in blocks (`total / blocks` = average).
    pub total: u64,
}

impl BlockRows {
    /// Mean rows per block given the `BlocksShipped` count.
    pub fn avg(&self, blocks: u64) -> f64 {
        if blocks == 0 {
            0.0
        } else {
            self.total as f64 / blocks as f64
        }
    }
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increment `c` by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        self.inner.counts[c.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment `c` by one.
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Read one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.inner.counts[c.idx()].load(Ordering::Relaxed)
    }

    /// Record one shipped block of `rows` tuples: bumps
    /// [`Counter::BlocksShipped`] and folds `rows` into the min/max/avg
    /// aggregates readable via [`Stats::block_rows`]. Callers still
    /// account the tuples themselves (e.g. `TuplesShipped`), since not
    /// every counter that ships rows does so in blocks.
    pub fn record_block(&self, rows: u64) {
        self.inc(Counter::BlocksShipped);
        // 0 is the "unset" sentinel for the minimum; blocks are ≥ 1.
        let _ = self
            .inner
            .block_min
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |min| {
                (min == 0 || rows < min).then_some(rows)
            });
        let _ = self
            .inner
            .block_max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |max| {
                (rows > max).then_some(rows)
            });
        self.inner.block_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Min/max/total rows per shipped block, or `None` before any block
    /// was recorded.
    pub fn block_rows(&self) -> Option<BlockRows> {
        if self.get(Counter::BlocksShipped) == 0 {
            return None;
        }
        Some(BlockRows {
            min: self.inner.block_min.load(Ordering::Relaxed),
            max: self.inner.block_max.load(Ordering::Relaxed),
            total: self.inner.block_rows.load(Ordering::Relaxed),
        })
    }

    /// Reset every counter to zero (between benchmark trials).
    pub fn reset(&self) {
        for cell in &self.inner.counts {
            cell.store(0, Ordering::Relaxed);
        }
        self.inner.block_min.store(0, Ordering::Relaxed);
        self.inner.block_max.store(0, Ordering::Relaxed);
        self.inner.block_rows.store(0, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counts: std::array::from_fn(|i| self.inner.counts[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; N],
}

// Manual: `Default` is not derivable for arrays longer than 32.
impl Default for Snapshot {
    fn default() -> Snapshot {
        Snapshot { counts: [0; N] }
    }
}

impl Snapshot {
    /// Read one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c.idx()]
    }

    /// The work done between `earlier` and `self`
    /// (alias for [`Delta::between`] with the arguments swapped).
    pub fn since(&self, earlier: &Snapshot) -> Delta {
        Delta::between(earlier, self)
    }
}

impl Index<Counter> for Snapshot {
    type Output = u64;

    fn index(&self, c: Counter) -> &u64 {
        &self.counts[c.idx()]
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sql={} shipped={} scanned={} nav={} medops={} nodes={} \
             hash={} probes={} nlfb={} pc={}+{} blocks={} retries={} \
             faults={} backend_errs={} backoff_ms={} pf_hit={} \
             pf_stall_ns={} pf_aborted={} blk_bytes={} cells={} \
             intern_hits={} sess={}-{}/rej{} wire_cmds={} wire_in={} \
             wire_out={}",
            self.get(Counter::SqlQueries),
            self.get(Counter::TuplesShipped),
            self.get(Counter::RowsScanned),
            self.get(Counter::NavCommands),
            self.get(Counter::MediatorOps),
            self.get(Counter::NodesBuilt),
            self.get(Counter::HashBuilds),
            self.get(Counter::JoinProbes),
            self.get(Counter::NlFallbacks),
            self.get(Counter::PlanCacheHits),
            self.get(Counter::PlanCacheMisses),
            self.get(Counter::BlocksShipped),
            self.get(Counter::RetriesAttempted),
            self.get(Counter::FaultsInjected),
            self.get(Counter::BackendErrors),
            self.get(Counter::RetryBackoffMs),
            self.get(Counter::PrefetchHitBlocks),
            self.get(Counter::PrefetchStallNs),
            self.get(Counter::PrefetchAborted),
            self.get(Counter::BlockBytes),
            self.get(Counter::CellsDecoded),
            self.get(Counter::InternHits),
            self.get(Counter::SessionsOpened),
            self.get(Counter::SessionsClosed),
            self.get(Counter::SessionsRejected),
            self.get(Counter::WireCommands),
            self.get(Counter::WireBytesIn),
            self.get(Counter::WireBytesOut),
        )
    }
}

/// Per-counter differences between two [`Snapshot`]s (saturating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    counts: [u64; N],
}

// Manual: `Default` is not derivable for arrays longer than 32.
impl Default for Delta {
    fn default() -> Delta {
        Delta { counts: [0; N] }
    }
}

impl Delta {
    /// Counter increments from `before` to `after`.
    pub fn between(before: &Snapshot, after: &Snapshot) -> Delta {
        Delta {
            counts: std::array::from_fn(|i| after.counts[i].saturating_sub(before.counts[i])),
        }
    }

    /// Read one counter delta.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c.idx()]
    }

    /// True when no counter moved.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl Index<Counter> for Delta {
    type Output = u64;

    fn index(&self, c: Counter) -> &u64 {
        &self.counts[c.idx()]
    }
}

impl fmt::Display for Delta {
    /// An aligned two-column table, one row per counter that moved.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return writeln!(f, "  (no work counted)");
        }
        for c in Counter::ALL {
            let v = self.get(c);
            if v != 0 {
                writeln!(f, "  {:<19} {v}", c.label())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_by_clone() {
        let a = Stats::new();
        let b = a.clone();
        a.add(Counter::TuplesShipped, 3);
        b.add(Counter::TuplesShipped, 2);
        assert_eq!(a.get(Counter::TuplesShipped), 5);
    }

    #[test]
    fn counters_shared_across_threads() {
        let a = Stats::new();
        let b = a.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                b.inc(Counter::RetriesAttempted);
            }
        });
        for _ in 0..100 {
            a.inc(Counter::RetriesAttempted);
        }
        t.join().unwrap();
        assert_eq!(a.get(Counter::RetriesAttempted), 200);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.inc(Counter::SqlQueries);
        let before = s.snapshot();
        s.add(Counter::SqlQueries, 2);
        s.add(Counter::NavCommands, 7);
        let d = Delta::between(&before, &s.snapshot());
        assert_eq!(d[Counter::SqlQueries], 2);
        assert_eq!(d[Counter::NavCommands], 7);
        assert_eq!(d[Counter::TuplesShipped], 0);
        assert_eq!(s.snapshot().since(&before), d);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.add(Counter::RowsScanned, 9);
        s.reset();
        assert_eq!(s.snapshot(), Snapshot::default());
    }

    #[test]
    fn delta_renders_nonzero_rows() {
        let s = Stats::new();
        let before = s.snapshot();
        s.add(Counter::TuplesShipped, 4);
        let d = Delta::between(&before, &s.snapshot());
        let text = d.to_string();
        assert!(text.contains("tuples_shipped"), "{text}");
        assert!(!text.contains("sql_queries"), "{text}");
        assert!(Delta::default().is_zero());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Counter::PlanCacheMisses.to_string(), "plan_cache_misses");
        assert_eq!(Counter::BlocksShipped.to_string(), "blocks_shipped");
        assert_eq!(Counter::RetriesAttempted.to_string(), "retries_attempted");
        assert_eq!(Counter::FaultsInjected.to_string(), "faults_injected");
        assert_eq!(Counter::BackendErrors.to_string(), "backend_errors");
        assert_eq!(Counter::RetryBackoffMs.to_string(), "retry_backoff_ms");
        assert_eq!(
            Counter::PrefetchHitBlocks.to_string(),
            "prefetch_hit_blocks"
        );
        assert_eq!(Counter::PrefetchStallNs.to_string(), "prefetch_stall_ns");
        assert_eq!(Counter::PrefetchAborted.to_string(), "prefetch_aborted");
        assert_eq!(Counter::BlockBytes.to_string(), "block_bytes");
        assert_eq!(Counter::CellsDecoded.to_string(), "cells_decoded");
        assert_eq!(Counter::InternHits.to_string(), "intern_hits");
        assert_eq!(Counter::SessionsOpened.to_string(), "sessions_opened");
        assert_eq!(Counter::SessionsClosed.to_string(), "sessions_closed");
        assert_eq!(Counter::SessionsRejected.to_string(), "sessions_rejected");
        assert_eq!(Counter::WireCommands.to_string(), "wire_commands");
        assert_eq!(Counter::WireBytesIn.to_string(), "wire_bytes_in");
        assert_eq!(Counter::WireBytesOut.to_string(), "wire_bytes_out");
        assert_eq!(Counter::ShardsTargeted.to_string(), "shards_targeted");
        assert_eq!(
            Counter::ShardQueriesRouted.to_string(),
            "shard_queries_routed"
        );
        assert_eq!(Counter::ScatterMerges.to_string(), "scatter_merges");
        assert_eq!(Counter::ALL.len(), 34);
    }

    #[test]
    fn block_rows_track_min_max_avg() {
        let s = Stats::new();
        assert!(s.block_rows().is_none());
        s.record_block(1);
        s.record_block(4);
        s.record_block(7);
        assert_eq!(s.get(Counter::BlocksShipped), 3);
        let b = s.block_rows().unwrap();
        assert_eq!((b.min, b.max, b.total), (1, 7, 12));
        assert!((b.avg(3) - 4.0).abs() < 1e-9);
        s.reset();
        assert!(s.block_rows().is_none());
    }
}
