//! Tracing spans and events.
//!
//! A [`Tracer`] receives *spans* (named, attributed, nested intervals
//! of work: one QDOM command, one operator's lifetime) and *events*
//! (instantaneous points: one SQL statement issued, one row shipped).
//! The engine talks to the tracer through a [`TracerHandle`], which
//! adds the one piece of shared runtime state nesting needs: a stack of
//! currently-active span ids. Strictly nested work (a session command,
//! an eager operator evaluation) uses the RAII [`SpanGuard`]; the lazy
//! engine's operator spans are *not* strictly nested (a span opens at
//! the operator's first pull and closes when the stream is dropped), so
//! streams manage their span explicitly and only push/pop around each
//! `next()` call to parent the work they cause downstream.
//!
//! Three tracers are built in: [`NullTracer`] (the default — disabled,
//! near-zero cost), [`CollectingTracer`] (in-memory span trees,
//! assertable in tests), and [`LogTracer`] (human-readable output on
//! stderr, gated on the `MIX_TRACE` environment variable).

use std::fmt;
use std::sync::{Arc, Mutex};

/// Span attributes: static keys, rendered values.
pub type Attrs<'a> = &'a [(&'static str, String)];

/// Identifies one span within its tracer. Ids are tracer-assigned and
/// only meaningful to the tracer that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A consumer of spans and events.
///
/// Implementations guard their state with interior mutability and are
/// shared across threads; the engine holds them behind
/// `Arc<dyn Tracer>`.
pub trait Tracer: Send + Sync {
    /// Whether this tracer wants any data at all. `false` lets callers
    /// skip attribute formatting entirely (the [`NullTracer`] path).
    fn enabled(&self) -> bool {
        true
    }

    /// Open a span. `parent` is the innermost active span, if any.
    fn span_start(&self, name: &str, parent: Option<SpanId>, attrs: Attrs<'_>) -> SpanId;

    /// Close a span, appending final attributes (counters, kernel
    /// choices resolved mid-flight).
    fn span_end(&self, id: SpanId, attrs: Attrs<'_>);

    /// Record an instantaneous event under `parent`.
    fn event(&self, parent: Option<SpanId>, name: &str, attrs: Attrs<'_>);
}

// ---------------------------------------------------------------------

struct HandleInner {
    tracer: Arc<dyn Tracer>,
    enabled: bool,
    stack: Mutex<Vec<SpanId>>,
}

/// A cheaply clonable handle to a tracer plus the active-span stack.
///
/// All clones share the same stack, so spans opened by the session
/// layer parent spans opened deep inside the relational executor.
#[derive(Clone)]
pub struct TracerHandle {
    inner: Arc<HandleInner>,
}

impl Default for TracerHandle {
    fn default() -> TracerHandle {
        TracerHandle::null()
    }
}

impl fmt::Debug for TracerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracerHandle")
            .field("enabled", &self.inner.enabled)
            .finish()
    }
}

impl TracerHandle {
    /// A handle on `tracer`. The tracer's [`Tracer::enabled`] flag is
    /// sampled once here; tracers do not toggle mid-session.
    pub fn new(tracer: Arc<dyn Tracer>) -> TracerHandle {
        let enabled = tracer.enabled();
        TracerHandle {
            inner: Arc::new(HandleInner {
                tracer,
                enabled,
                stack: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The disabled handle (a [`NullTracer`]).
    pub fn null() -> TracerHandle {
        TracerHandle::new(Arc::new(NullTracer))
    }

    /// Whether tracing is on. When `false`, every other method is a
    /// no-op and callers may skip attribute formatting.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The innermost active span.
    pub fn current(&self) -> Option<SpanId> {
        self.inner.stack.lock().unwrap().last().copied()
    }

    /// Current nesting depth (the lazy engine's "pull depth" attr).
    pub fn depth(&self) -> usize {
        self.inner.stack.lock().unwrap().len()
    }

    /// Open a strictly nested span: started now, active (on the stack)
    /// until the returned guard drops.
    pub fn span(&self, name: &str, attrs: Attrs<'_>) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard {
                handle: None,
                id: SpanId(0),
                end_attrs: Vec::new(),
            };
        }
        let id = self.inner.tracer.span_start(name, self.current(), attrs);
        self.push(id);
        SpanGuard {
            handle: Some(self.clone()),
            id,
            end_attrs: Vec::new(),
        }
    }

    /// Open a span *without* activating it — for spans whose lifetime
    /// is not a lexical scope (lazy operator streams). Pair with
    /// [`TracerHandle::end_span`], and [`TracerHandle::push`]/
    /// [`TracerHandle::pop`] around the work done on its behalf.
    pub fn start_span(&self, name: &str, attrs: Attrs<'_>) -> Option<SpanId> {
        if !self.enabled() {
            return None;
        }
        Some(self.inner.tracer.span_start(name, self.current(), attrs))
    }

    /// Close a span opened with [`TracerHandle::start_span`].
    pub fn end_span(&self, id: SpanId, attrs: Attrs<'_>) {
        if self.enabled() {
            self.inner.tracer.span_end(id, attrs);
        }
    }

    /// Make `id` the innermost active span.
    pub fn push(&self, id: SpanId) {
        if self.enabled() {
            self.inner.stack.lock().unwrap().push(id);
        }
    }

    /// Deactivate the innermost active span.
    pub fn pop(&self) {
        if self.enabled() {
            self.inner.stack.lock().unwrap().pop();
        }
    }

    /// Record an event under the innermost active span.
    pub fn event(&self, name: &str, attrs: Attrs<'_>) {
        if self.enabled() {
            self.inner.tracer.event(self.current(), name, attrs);
        }
    }
}

/// RAII guard for a strictly nested span (see [`TracerHandle::span`]).
/// Dropping it deactivates and closes the span.
pub struct SpanGuard {
    handle: Option<TracerHandle>,
    id: SpanId,
    end_attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Attach an attribute that is only known mid-span (a kernel choice
    /// resolved after inputs were examined, a result count). Delivered
    /// with the span's end.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<String>) {
        if self.handle.is_some() {
            self.end_attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(h) = &self.handle {
            h.pop();
            h.end_span(self.id, &self.end_attrs);
        }
    }
}

// ---------------------------------------------------------------------

/// The default tracer: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn span_start(&self, _name: &str, _parent: Option<SpanId>, _attrs: Attrs<'_>) -> SpanId {
        SpanId(0)
    }

    fn span_end(&self, _id: SpanId, _attrs: Attrs<'_>) {}

    fn event(&self, _parent: Option<SpanId>, _name: &str, _attrs: Attrs<'_>) {}
}

// ---------------------------------------------------------------------

struct SpanRec {
    name: String,
    attrs: Vec<(String, String)>,
    /// Child spans and events, interleaved in arrival order.
    children: Vec<Entry>,
}

enum Entry {
    Span(usize),
    Event(String, Vec<(String, String)>),
}

#[derive(Default)]
struct Store {
    spans: Vec<SpanRec>,
    /// Root spans and parentless events, in arrival order.
    roots: Vec<Entry>,
}

/// An in-memory tracer that records the full span tree for assertions
/// ("the hash-join span is present; the unnavigated branch produced no
/// operator spans").
#[derive(Default)]
pub struct CollectingTracer {
    store: Mutex<Store>,
}

impl CollectingTracer {
    /// A fresh, empty collector.
    pub fn new() -> CollectingTracer {
        CollectingTracer::default()
    }

    /// Number of spans recorded (open or closed) whose name is `name`.
    pub fn count(&self, name: &str) -> usize {
        self.store
            .lock()
            .unwrap()
            .spans
            .iter()
            .filter(|s| s.name == name)
            .count()
    }

    /// Whether any span named `name` was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.count(name) > 0
    }

    /// All recorded span names, in start order.
    pub fn span_names(&self) -> Vec<String> {
        self.store
            .lock()
            .unwrap()
            .spans
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    /// Drop everything recorded so far.
    pub fn clear(&self) {
        *self.store.lock().unwrap() = Store::default();
    }

    /// Render the span forest as an indented tree: one line per span
    /// (`name key=value …`, start attrs then end attrs), events as
    /// `- name key=value` lines. Children appear in start order, which
    /// for the lazy engine is *demand* order — the laziness claim made
    /// visible.
    pub fn render(&self) -> String {
        let store = self.store.lock().unwrap();
        let mut out = String::new();
        for e in &store.roots {
            render_entry(&store, e, 0, &mut out);
        }
        out
    }

    fn record(&self, parent: Option<SpanId>, entry: Entry) {
        let mut store = self.store.lock().unwrap();
        match parent {
            // A parent id may be stale after `clear()`; attach at the
            // root rather than panicking (we may be mid-drop).
            Some(SpanId(p)) => match store.spans.get_mut(p as usize - 1) {
                Some(s) => s.children.push(entry),
                None => store.roots.push(entry),
            },
            None => store.roots.push(entry),
        }
    }
}

fn render_entry(store: &Store, e: &Entry, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match e {
        Entry::Span(i) => {
            let s = &store.spans[*i];
            out.push_str(&pad);
            out.push_str(&s.name);
            for (k, v) in &s.attrs {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for c in &s.children {
                render_entry(store, c, depth + 1, out);
            }
        }
        Entry::Event(name, attrs) => {
            out.push_str(&pad);
            out.push_str("- ");
            out.push_str(name);
            for (k, v) in attrs {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
    }
}

fn own_attrs(attrs: Attrs<'_>) -> Vec<(String, String)> {
    attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

impl Tracer for CollectingTracer {
    fn span_start(&self, name: &str, parent: Option<SpanId>, attrs: Attrs<'_>) -> SpanId {
        let mut store = self.store.lock().unwrap();
        let idx = store.spans.len();
        store.spans.push(SpanRec {
            name: name.to_string(),
            attrs: own_attrs(attrs),
            children: Vec::new(),
        });
        let entry = Entry::Span(idx);
        match parent {
            Some(SpanId(p)) => match store.spans.get_mut(p as usize - 1) {
                Some(s) => s.children.push(entry),
                None => store.roots.push(entry),
            },
            None => store.roots.push(entry),
        }
        SpanId(idx as u64 + 1)
    }

    fn span_end(&self, id: SpanId, attrs: Attrs<'_>) {
        let mut store = self.store.lock().unwrap();
        // Stale after `clear()` — ignore (we may be mid-drop).
        if let Some(s) = store.spans.get_mut(id.0 as usize - 1) {
            s.attrs.extend(own_attrs(attrs));
        }
    }

    fn event(&self, parent: Option<SpanId>, name: &str, attrs: Attrs<'_>) {
        self.record(parent, Entry::Event(name.to_string(), own_attrs(attrs)));
    }
}

// ---------------------------------------------------------------------

/// A human-readable tracer printing to stderr, one line per span start,
/// span end, and event, indented by span depth.
///
/// `LogTracer::from_env()` is enabled only when the `MIX_TRACE`
/// environment variable is set, so it can be wired in unconditionally.
pub struct LogTracer {
    enabled: bool,
    /// id → (name, depth), for end lines and indentation.
    open: Mutex<Vec<(String, usize)>>,
}

impl LogTracer {
    /// An always-on log tracer.
    pub fn new() -> LogTracer {
        LogTracer {
            enabled: true,
            open: Mutex::new(Vec::new()),
        }
    }

    /// Enabled iff the `MIX_TRACE` environment variable is set.
    pub fn from_env() -> LogTracer {
        LogTracer {
            enabled: std::env::var_os("MIX_TRACE").is_some(),
            open: Mutex::new(Vec::new()),
        }
    }

    fn line(&self, depth: usize, marker: &str, name: &str, attrs: Attrs<'_>) {
        let mut msg = format!("{}{marker} {name}", "  ".repeat(depth));
        for (k, v) in attrs {
            msg.push_str(&format!(" {k}={v}"));
        }
        eprintln!("[mix-trace] {msg}");
    }
}

impl Default for LogTracer {
    fn default() -> LogTracer {
        LogTracer::new()
    }
}

impl Tracer for LogTracer {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>, attrs: Attrs<'_>) -> SpanId {
        let mut open = self.open.lock().unwrap();
        let depth = match parent {
            Some(SpanId(p)) => open[p as usize - 1].1 + 1,
            None => 0,
        };
        open.push((name.to_string(), depth));
        let id = SpanId(open.len() as u64);
        drop(open);
        self.line(depth, ">", name, attrs);
        id
    }

    fn span_end(&self, id: SpanId, attrs: Attrs<'_>) {
        let (name, depth) = self.open.lock().unwrap()[id.0 as usize - 1].clone();
        self.line(depth, "<", &name, attrs);
    }

    fn event(&self, parent: Option<SpanId>, name: &str, attrs: Attrs<'_>) {
        let depth = match parent {
            Some(SpanId(p)) => self.open.lock().unwrap()[p as usize - 1].1 + 1,
            None => 0,
        };
        self.line(depth, "·", name, attrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collecting_handle() -> (Arc<CollectingTracer>, TracerHandle) {
        let t = Arc::new(CollectingTracer::new());
        let h = TracerHandle::new(Arc::clone(&t) as Arc<dyn Tracer>);
        (t, h)
    }

    #[test]
    fn guards_nest_and_unwind() {
        let (t, h) = collecting_handle();
        {
            let _a = h.span("outer", &[("k", "v".to_string())]);
            {
                let mut b = h.span("inner", &[]);
                b.set_attr("tuples", "3");
                h.event("sql", &[("stmt", "SELECT 1".to_string())]);
            }
            h.event("after-inner", &[]);
        }
        assert_eq!(h.depth(), 0);
        let text = t.render();
        assert_eq!(
            text,
            "outer k=v\n  inner tuples=3\n    - sql stmt=SELECT 1\n  - after-inner\n"
        );
    }

    #[test]
    fn detached_spans_parent_by_stack() {
        let (t, h) = collecting_handle();
        let id = {
            let _cmd = h.span("cmd", &[]);
            let id = h.start_span("op", &[]).unwrap();
            h.push(id);
            h.event("row", &[]);
            h.pop();
            id
        };
        // The cmd guard is gone; the op span outlives it and ends later.
        h.end_span(id, &[("pulls", "1".to_string())]);
        assert_eq!(t.render(), "cmd\n  op pulls=1\n    - row\n");
    }

    #[test]
    fn null_handle_is_inert() {
        let h = TracerHandle::null();
        assert!(!h.enabled());
        let mut g = h.span("x", &[]);
        g.set_attr("k", "v");
        assert!(h.start_span("y", &[]).is_none());
        h.event("e", &[]);
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn collector_queries() {
        let (t, h) = collecting_handle();
        let _a = h.span("join.hash", &[]);
        let _b = h.span("mksrc", &[]);
        assert!(t.has_span("join.hash"));
        assert!(!t.has_span("join.nl"));
        assert_eq!(t.count("mksrc"), 1);
        assert_eq!(t.span_names(), vec!["join.hash", "mksrc"]);
        t.clear();
        assert_eq!(t.span_names(), Vec::<String>::new());
    }

    #[test]
    fn log_tracer_env_gate() {
        // Not set in the test environment by default.
        let t = LogTracer::from_env();
        let _ = t.enabled; // constructed without panicking
        let on = LogTracer::new();
        assert!(Tracer::enabled(&on));
        let id = on.span_start("x", None, &[]);
        on.event(Some(id), "e", &[]);
        on.span_end(id, &[]);
    }
}
