//! Per-plan-node execution profiles.
//!
//! An [`ExecProfile`] maps plan-node ids (assigned in pre-order by the
//! engine's builders) to [`OpMetrics`]: how many times the node was
//! pulled, how many tuples it produced, and a short physical detail
//! string (kernel choice, groupBy mode, pushed SQL). The engine's
//! `explain()` rendering joins these metrics back onto the plan tree —
//! `EXPLAIN ANALYZE` for XMAS plans.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Runtime metrics for one plan node.
#[derive(Debug, Default, Clone)]
pub struct OpMetrics {
    /// Times the node was asked for work: `next()` calls on a lazy
    /// stream, or whole-table evaluations in the eager engine.
    pub pulls: u64,
    /// Tuples the node handed to its consumer.
    pub tuples_out: u64,
    /// Backend retries spent on this node's behalf (nonzero only for
    /// `rQ` nodes pulling from a faulty source).
    pub retries: u64,
    /// Approximate bytes of block storage this node materialized
    /// (columnar block footprints for `rQ`; rendered as `alloc≈` in
    /// EXPLAIN ANALYZE).
    pub alloc_bytes: u64,
    /// Physical detail resolved at build/run time (`kernel=hash`,
    /// `mode=presorted`, pushed SQL text).
    pub detail: Option<String>,
}

/// Metrics for every executed node of one plan, keyed by the node's
/// pre-order id. Shared via `Arc` between the executing streams and the
/// session that renders the explain output.
#[derive(Debug, Default)]
pub struct ExecProfile {
    nodes: Mutex<BTreeMap<usize, OpMetrics>>,
}

impl ExecProfile {
    /// A fresh, empty profile.
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// Count one pull on node `id`.
    pub fn record_pull(&self, id: usize) {
        self.nodes.lock().unwrap().entry(id).or_default().pulls += 1;
    }

    /// Count `n` output tuples on node `id`.
    pub fn record_tuples(&self, id: usize, n: u64) {
        self.nodes.lock().unwrap().entry(id).or_default().tuples_out += n;
    }

    /// Count `n` backend retries spent on node `id`.
    pub fn record_retries(&self, id: usize, n: u64) {
        self.nodes.lock().unwrap().entry(id).or_default().retries += n;
    }

    /// Count `n` approximate allocated bytes on node `id`.
    pub fn record_alloc(&self, id: usize, n: u64) {
        self.nodes
            .lock()
            .unwrap()
            .entry(id)
            .or_default()
            .alloc_bytes += n;
    }

    /// Attach (or replace) the physical detail string for node `id`.
    pub fn set_detail(&self, id: usize, detail: impl Into<String>) {
        self.nodes.lock().unwrap().entry(id).or_default().detail = Some(detail.into());
    }

    /// Metrics for node `id`, if it was ever touched.
    pub fn get(&self, id: usize) -> Option<OpMetrics> {
        self.nodes.lock().unwrap().get(&id).cloned()
    }

    /// True when no node reported anything — the plan never ran
    /// (or ran untraced).
    pub fn is_empty(&self) -> bool {
        self.nodes.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let p = ExecProfile::new();
        assert!(p.is_empty());
        p.record_pull(3);
        p.record_pull(3);
        p.record_tuples(3, 5);
        p.record_retries(3, 2);
        p.record_alloc(3, 128);
        p.record_alloc(3, 64);
        p.set_detail(3, "kernel=hash");
        let m = p.get(3).unwrap();
        assert_eq!(m.pulls, 2);
        assert_eq!(m.tuples_out, 5);
        assert_eq!(m.retries, 2);
        assert_eq!(m.alloc_bytes, 192);
        assert_eq!(m.detail.as_deref(), Some("kernel=hash"));
        assert!(p.get(0).is_none());
        assert!(!p.is_empty());
    }
}
