//! Observability for the MIX mediator stack.
//!
//! The paper's performance argument is about *work avoided*: lazy
//! evaluation "produces the XML result tree as the user navigates into
//! it", and the rewriter pushes "the most restrictive queries" to the
//! sources so that "the minimum amount of data" is transferred. Those
//! claims are only checkable if the substrate observes its own work.
//! This crate holds the three observation mechanisms every other MIX
//! crate shares:
//!
//! * [`Stats`] — typed counters ([`Counter`]) with a point-in-time
//!   [`Snapshot`] and a [`Delta`] between two snapshots;
//! * [`Tracer`] — a span/event API with RAII guards and nesting, plus
//!   the built-in [`NullTracer`], [`CollectingTracer`] (in-memory,
//!   assertable in tests) and [`LogTracer`] (human-readable, gated on
//!   the `MIX_TRACE` environment variable);
//! * [`ExecProfile`] — per-plan-node pull/tuple accounting that powers
//!   the engine's `EXPLAIN ANALYZE` rendering.
//!
//! The crate sits below `mix-common` and has no dependencies, so every
//! layer — the relational executor, the wrappers, the engine, the QDOM
//! session — can report into the same substrate. Everything is
//! `Send + Sync` (atomic counters, `Arc`-shared tracers): one `Stats`
//! handle is shared by a session, its pooled prefetch producers, and
//! the server threads that observe it.

#![deny(missing_docs)]

mod counter;
mod profile;
mod trace;

pub use counter::{BlockRows, Counter, Delta, Snapshot, Stats};
pub use profile::{ExecProfile, OpMetrics};
pub use trace::{CollectingTracer, LogTracer, NullTracer, SpanGuard, SpanId, Tracer, TracerHandle};
