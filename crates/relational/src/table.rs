//! Row storage.

use crate::schema::Schema;
use mix_common::{ColumnBlock, Result, Value};
use std::sync::OnceLock;

/// One tuple.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus rows in insertion order, with a
/// lazily built columnar mirror for the vectorized scan path.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    /// Columnar mirror of `rows`, built on first [`Table::columnar`]
    /// call and discarded by any mutation. `OnceLock` so concurrent
    /// scans through `Arc<Table>` share one build.
    cols: OnceLock<ColumnBlock>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        // The mirror is a cache: the clone rebuilds it on demand.
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            cols: OnceLock::new(),
        }
    }
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            cols: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a row after schema checking.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        self.cols.take();
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The columnar mirror of the table, built on first use. Cell
    /// values are shared with the row storage (`Arc` string handles are
    /// cloned, not re-interned), so the mirror costs one refcount bump
    /// per string cell plus the typed vectors themselves.
    pub fn columnar(&self) -> &ColumnBlock {
        self.cols.get_or_init(|| {
            let mut b = ColumnBlock::new(self.schema.arity());
            b.reserve(self.rows.len());
            for r in &self.rows {
                b.push_row(r.clone());
            }
            b
        })
    }

    /// Sort rows by the primary key (the wrapper exports tuples in key
    /// order so repeated scans are deterministic).
    pub fn sort_by_key(&mut self) {
        let key: Vec<usize> = self.schema.key().to_vec();
        self.cols.take();
        self.rows.sort_by(|a, b| {
            for &k in &key {
                let o = a[k].total_cmp(&b[k]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn orders() -> Table {
        let s = Schema::new(
            vec![
                Column::new("orid", ColumnType::Int),
                Column::new("cid", ColumnType::Text),
                Column::new("value", ColumnType::Int),
            ],
            &["orid"],
        )
        .unwrap();
        Table::new(s)
    }

    #[test]
    fn insert_and_read() {
        let mut t = orders();
        t.insert(vec![
            Value::Int(28904),
            Value::str("XYZ123"),
            Value::Int(2400),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][2], Value::Int(2400));
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn columnar_mirror_tracks_mutations() {
        let mut t = orders();
        t.insert(vec![Value::Int(2), Value::str("b"), Value::Int(20)])
            .unwrap();
        let c = t.columnar();
        assert_eq!(c.len(), 1);
        assert_eq!(c.value_at(0, 2), Value::Int(20));
        // Mutation discards the mirror; the next call rebuilds it.
        t.insert(vec![Value::Int(1), Value::str("a"), Value::Int(10)])
            .unwrap();
        assert_eq!(t.columnar().len(), 2);
        t.sort_by_key();
        assert_eq!(t.columnar().value_at(0, 0), Value::Int(1));
        // Clones rebuild their own mirror.
        let u = t.clone();
        assert_eq!(u.columnar().len(), 2);
    }

    #[test]
    fn sort_by_key_orders_rows() {
        let mut t = orders();
        for orid in [3, 1, 2] {
            t.insert(vec![Value::Int(orid), Value::str("c"), Value::Int(0)])
                .unwrap();
        }
        t.sort_by_key();
        let ids: Vec<_> = t.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
