//! Row storage.

use crate::schema::Schema;
use mix_common::{Result, Value};

/// One tuple.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus rows in insertion order.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a row after schema checking.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sort rows by the primary key (the wrapper exports tuples in key
    /// order so repeated scans are deterministic).
    pub fn sort_by_key(&mut self) {
        let key: Vec<usize> = self.schema.key().to_vec();
        self.rows.sort_by(|a, b| {
            for &k in &key {
                let o = a[k].total_cmp(&b[k]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn orders() -> Table {
        let s = Schema::new(
            vec![
                Column::new("orid", ColumnType::Int),
                Column::new("cid", ColumnType::Text),
                Column::new("value", ColumnType::Int),
            ],
            &["orid"],
        )
        .unwrap();
        Table::new(s)
    }

    #[test]
    fn insert_and_read() {
        let mut t = orders();
        t.insert(vec![
            Value::Int(28904),
            Value::str("XYZ123"),
            Value::Int(2400),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][2], Value::Int(2400));
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn sort_by_key_orders_rows() {
        let mut t = orders();
        for orid in [3, 1, 2] {
            t.insert(vec![Value::Int(orid), Value::str("c"), Value::Int(0)])
                .unwrap();
        }
        t.sort_by_key();
        let ids: Vec<_> = t.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
