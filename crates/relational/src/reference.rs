//! A deliberately naive reference evaluator.
//!
//! Computes SELECT statements by materializing the full cartesian
//! product and filtering — obviously correct, obviously slow. Property
//! tests compare the pipelined executor against it.

use crate::ast::{ColRef, Operand, SelectStmt};
use crate::db::Database;
use crate::table::Row;
use mix_common::{MixError, Result, Value};

/// Evaluate `stmt` the slow, obvious way.
pub fn eval_reference(db: &Database, stmt: &SelectStmt) -> Result<Vec<Row>> {
    if stmt.from.is_empty() {
        return Err(MixError::invalid("empty FROM clause"));
    }
    // Materialize the cartesian product, tracking column offsets.
    let mut offsets = Vec::new();
    let mut rows: Vec<Row> = vec![vec![]];
    let mut offset = 0;
    for item in &stmt.from {
        let t = db.table(item.table.as_str())?;
        offsets.push((item.binding().clone(), t.schema().clone(), offset));
        offset += t.schema().arity();
        let mut next = Vec::new();
        for base in &rows {
            for r in t.rows() {
                let mut row = base.clone();
                row.extend(r.iter().cloned());
                next.push(row);
            }
        }
        rows = next;
    }
    let resolve = |col: &ColRef| -> Result<usize> {
        let mut found = None;
        for (name, schema, off) in &offsets {
            let applies = match &col.qualifier {
                Some(q) => q == name,
                None => true,
            };
            if !applies {
                continue;
            }
            if let Some(i) = schema.col_index(col.column.as_str()) {
                if found.is_some() && col.qualifier.is_none() {
                    return Err(MixError::invalid(format!("ambiguous column {col}")));
                }
                found = Some(off + i);
                if col.qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| MixError::unknown("column", col.to_string()))
    };
    // Filter.
    let mut preds = Vec::new();
    for p in &stmt.preds {
        let l = resolve(&p.lhs)?;
        let r = match &p.rhs {
            Operand::Const(v) => Err(v.clone()),
            Operand::Col(c) => Ok(resolve(c)?),
        };
        preds.push((l, p.op, r));
    }
    rows.retain(|row| {
        preds.iter().all(|(l, op, r)| {
            let rv: &Value = match r {
                Ok(i) => &row[*i],
                Err(v) => v,
            };
            row[*l].satisfies(*op, rv)
        })
    });
    // Sort.
    if !stmt.order_by.is_empty() {
        let keys: Vec<usize> = stmt
            .order_by
            .iter()
            .map(&resolve)
            .collect::<Result<Vec<_>>>()?;
        rows.sort_by(|a, b| {
            for &k in &keys {
                let o = a[k].total_cmp(&b[k]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    // Project.
    let cols: Vec<usize> = if stmt.items.is_empty() {
        (0..offset).collect()
    } else {
        stmt.items
            .iter()
            .map(|it| resolve(&it.col))
            .collect::<Result<Vec<_>>>()?
    };
    let mut out: Vec<Row> = rows
        .iter()
        .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
        .collect();
    // Distinct (stable, first occurrence wins).
    if stmt.distinct {
        let mut seen = std::collections::HashSet::new();
        out.retain(|r| seen.insert(r.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{gen_db, sample_db};
    use crate::parser::parse_sql;

    /// Sort rows for order-insensitive comparison.
    fn canon(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    #[test]
    fn executor_agrees_with_reference_on_sample_queries() {
        let dbs = [sample_db(), gen_db(17, 3, 9)];
        let queries = [
            "SELECT * FROM customer",
            "SELECT c.name FROM customer c WHERE c.name < 'B'",
            "SELECT c.id, o.value FROM customer c, orders o WHERE c.id = o.cid",
            "SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid AND o.value > 100",
            "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid ORDER BY c.id, o.orid",
            "SELECT c1.id FROM customer c1, customer c2 WHERE c1.id = c2.id AND c2.name < 'M'",
            "SELECT c.id, o.orid FROM customer c, orders o",
            "SELECT o.orid FROM orders o WHERE o.value >= 500 AND o.value != 2400",
        ];
        for db in &dbs {
            for q in &queries {
                let stmt = parse_sql(q).unwrap();
                let fast = db.execute(&stmt).unwrap().collect_all().unwrap();
                let slow = eval_reference(db, &stmt).unwrap();
                if stmt.order_by.is_empty() {
                    assert_eq!(canon(fast), canon(slow), "query: {q}");
                } else {
                    assert_eq!(fast, slow, "query: {q}");
                }
            }
        }
    }
}
