//! Pipelined execution.
//!
//! Every plan node is an iterator; [`Cursor`] is the source's client
//! handle, which "allows the partial evaluation of the result"
//! (Section 1). The shared [`Stats`] counts rows scanned internally and
//! tuples shipped through the cursor, so benchmarks can observe how much
//! of a query the mediator actually pulled.
//!
//! Every pull is fallible: a remote backend (or the chaos wrapper,
//! [`crate::FaultPolicy`]) can fail any block, so `next`/`next_block`/
//! `drain` return `Result` and a failed pull delivers *no* rows —
//! re-issuing the same pull after a transient fault returns exactly
//! what the failed one would have ([`Cursor::next_block_retrying`]).

use crate::fault::ChaosState;
use crate::plan::{PhysPlan, ROperand, RPred};
use crate::prefetch::{self, FetchedBlock, PrefetchHandle, PrefetchMsg};
use crate::table::{Row, Table};
use mix_common::ring::TryRecv;
use mix_common::{
    BlockRamp, ColumnBlock, Counter, MixError, PrefetchPolicy, Result, RetryPolicy, Stats, Value,
};
use mix_obs::TracerHandle;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// A pipelined row iterator. Fallible: only the chaos wrapper fails
/// today, but the `Result` contract is what lets real remote backends
/// slot in behind the same cursor. `Send` because rows are plain
/// [`Value`] data: the pipelined prefetcher can move a compiled plan to
/// its thread without touching anything above the [`Cursor`] seam.
pub(crate) trait RowIter: Send {
    fn next_row(&mut self) -> Result<Option<Row>>;

    /// Append up to `n` rows to `out`; returns how many were produced.
    /// The default loops over [`RowIter::next_row`]; operators with a
    /// cheaper bulk path (scan, project, sort) override it so a block
    /// pull pays one virtual dispatch instead of `n`. On `Err`, no row
    /// was appended.
    fn next_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        let mut k = 0;
        while k < n {
            match self.next_row()? {
                Some(r) => {
                    out.push(r);
                    k += 1;
                }
                None => break,
            }
        }
        Ok(k)
    }

    /// Append up to `n` rows to the columnar block `out`; returns how
    /// many were produced. The default routes through
    /// [`RowIter::next_block`] via `scratch` (cleared here first);
    /// sources with native columnar storage (the table scan) override
    /// it to copy column-at-a-time without materializing rows. On
    /// `Err`, nothing was appended.
    fn next_cblock(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        scratch: &mut Vec<Row>,
    ) -> Result<usize> {
        scratch.clear();
        let k = self.next_block(scratch, n)?;
        out.reserve(k);
        for r in scratch.drain(..) {
            out.push_row(r);
        }
        Ok(k)
    }

    /// `(lower, upper)` bounds on the rows still to come, like
    /// [`Iterator::size_hint`].
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Block size for internal full drains (build sides, sorts, eager
/// collection). One block of this size costs one virtual dispatch.
const DRAIN_BLOCK: usize = mix_common::MAX_AUTO_BLOCK;

/// Drain `src` to exhaustion into `out`, block at a time.
fn drain_all(src: &mut dyn RowIter, out: &mut Vec<Row>) -> Result<()> {
    let (lo, _) = src.size_hint();
    out.reserve(lo);
    while src.next_block(out, DRAIN_BLOCK)? > 0 {}
    Ok(())
}

/// Run one chaos-gated pull against the compiled plan: the fault gate
/// fires *before* any row is produced (so a failed pull is
/// side-effect-free and retryable), and the modelled backend RTT is
/// *returned*, not paid — the synchronous path sleeps it inline, the
/// prefetcher defers delivery to the block's arrival time. Shared by
/// [`Cursor`] and the prefetcher thread so both paths run the exact
/// same admit sequence.
pub(crate) fn gated_pull(
    iter: &mut dyn RowIter,
    chaos: &mut Option<ChaosState>,
    out: &mut Vec<Row>,
    n: usize,
) -> Result<(usize, u64)> {
    match chaos {
        None => Ok((iter.next_block(out, n)?, 0)),
        Some(state) => {
            let (allowed, latency_ms) = state.admit(n)?;
            let k = iter.next_block(out, allowed)?;
            state.delivered(k as u64);
            Ok((k, latency_ms))
        }
    }
}

/// [`gated_pull`] for the columnar path. Runs the *identical* admit
/// sequence (the fault gate sees only block sizes, never the block
/// representation), so a row run and a columnar run of the same query
/// draw the same fault schedule.
pub(crate) fn gated_cpull(
    iter: &mut dyn RowIter,
    chaos: &mut Option<ChaosState>,
    out: &mut ColumnBlock,
    n: usize,
    scratch: &mut Vec<Row>,
) -> Result<(usize, u64)> {
    match chaos {
        None => Ok((iter.next_cblock(out, n, scratch)?, 0)),
        Some(state) => {
            let (allowed, latency_ms) = state.admit(n)?;
            let k = iter.next_cblock(out, allowed, scratch)?;
            state.delivered(k as u64);
            Ok((k, latency_ms))
        }
    }
}

fn sleep_ms(ms: u64) {
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Where a cursor's rows come from.
enum Backing {
    /// Synchronous pulls straight from the compiled plan, gated by the
    /// chaos backend. The starting state of every cursor.
    Sync {
        iter: Box<dyn RowIter>,
        chaos: Option<ChaosState>,
    },
    /// A background prefetcher owns the plan; blocks arrive over its
    /// bounded channel.
    Live(PrefetchHandle),
    /// The prefetcher surfaced a terminal error; every further pull
    /// re-reports it (matching the latched-error semantics consumers
    /// already implement for the synchronous path).
    Latched(MixError),
    /// Exhausted: the prefetcher drained the plan and was joined.
    Done,
    /// K-way ordered merge over per-shard child cursors (the
    /// scatter-gather path of a sharded backend). The children account
    /// their own shipped tuples/blocks into the shared aggregate
    /// [`Stats`]; the merge itself only tracks `delivered`.
    Merge(MergeState),
}

/// State of a k-way ordered merge over shard cursors.
///
/// Each child streams rows already sorted by the comparator key
/// positions (`keys`); the merge repeatedly emits the smallest buffered
/// head. Invariants:
///
/// * A child is pulled only when its buffer is empty, so `done[i]`
///   implies `bufs[i]` is empty — exhaustion never strands rows.
/// * Rows are emitted only while every non-exhausted child has a
///   buffered row; when a buffer runs dry mid-block the pull returns a
///   *partial* count (`> 0`), and only full exhaustion returns `0`.
/// * Refill errors surface before anything is emitted, and a failed
///   child pull is side-effect-free — so the whole merge pull is
///   retryable, and a retry only re-pulls the child that failed.
pub(crate) struct MergeState {
    children: Vec<Cursor>,
    bufs: Vec<VecDeque<Row>>,
    done: Vec<bool>,
    /// Comparator positions into the (possibly key-widened) child row.
    keys: Vec<usize>,
    /// Appended trailing columns to drop before delivery (the shard
    /// statements were widened with key columns to make the merge order
    /// total; the consumer sees the original arity).
    strip: usize,
    /// DISTINCT merge: break comparator ties on the full row (equal
    /// rows from different shards become adjacent) and drop adjacent
    /// duplicates.
    dedup: bool,
    /// Last row emitted (pre-strip), for adjacent dedup.
    last: Option<Row>,
}

impl MergeState {
    /// Compare two buffered heads; `ai`/`bi` are shard indexes (the
    /// final tie-break, making the merge deterministic).
    fn cmp_rows(&self, a: &Row, ai: usize, b: &Row, bi: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering::Equal;
        for &k in &self.keys {
            let o = a[k].total_cmp(&b[k]);
            if o != Equal {
                return o;
            }
        }
        if self.dedup {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != Equal {
                    return o;
                }
            }
        }
        ai.cmp(&bi)
    }

    /// Append up to `n` merged rows to `out`. See the struct docs for
    /// the refill/emit protocol.
    fn pull(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        let mut k = 0;
        loop {
            // Phase 1: refill every empty, non-exhausted child buffer.
            // Errors propagate before any row of this round is emitted.
            for i in 0..self.children.len() {
                if self.done[i] || !self.bufs[i].is_empty() {
                    continue;
                }
                let mut tmp = Vec::new();
                if self.children[i].next_block(&mut tmp, n.max(1))? == 0 {
                    self.done[i] = true;
                } else {
                    self.bufs[i].extend(tmp);
                }
            }
            if self.bufs.iter().all(VecDeque::is_empty) {
                return Ok(k); // fully exhausted (k may be 0)
            }
            // Phase 2: emit minima while every live child is buffered.
            loop {
                if k == n {
                    return Ok(k);
                }
                if (0..self.children.len()).any(|i| !self.done[i] && self.bufs[i].is_empty()) {
                    break; // a live child ran dry: partial block or refill
                }
                let mut best: Option<usize> = None;
                for i in 0..self.children.len() {
                    let Some(head) = self.bufs[i].front() else {
                        continue;
                    };
                    best = Some(match best {
                        None => i,
                        Some(b) => {
                            let cur = self.bufs[b].front().expect("best buffer non-empty");
                            if self.cmp_rows(head, i, cur, b).is_lt() {
                                i
                            } else {
                                b
                            }
                        }
                    });
                }
                let Some(b) = best else {
                    return Ok(k); // all buffers empty and all done
                };
                let row = self.bufs[b].pop_front().expect("chosen buffer non-empty");
                if self.dedup && self.last.as_ref() == Some(&row) {
                    continue; // cross-shard duplicate under DISTINCT
                }
                if self.dedup {
                    self.last = Some(row.clone());
                }
                let mut row = row;
                if self.strip > 0 {
                    row.truncate(row.len() - self.strip);
                }
                out.push(row);
                k += 1;
            }
            if k > 0 {
                return Ok(k);
            }
            // Dedup consumed the whole round; refill and continue.
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered: usize = self.bufs.iter().map(VecDeque::len).sum();
        let mut lo = buffered;
        let mut hi = Some(buffered);
        for (i, c) in self.children.iter().enumerate() {
            if self.done[i] {
                continue;
            }
            let (l, h) = c.size_hint();
            lo += l;
            hi = match (hi, h) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        if self.dedup {
            (0, hi)
        } else {
            (lo, hi)
        }
    }
}

/// Prefetch configuration armed on a cursor but not yet started (the
/// thread spawns only after the first demanded pull — see
/// [`Cursor::enable_prefetch`]).
struct ArmedPrefetch {
    depth: usize,
    ramp: BlockRamp,
    retry: RetryPolicy,
}

/// The cursor a source hands back for a query. Pull rows with
/// [`Cursor::next`]; each delivered row bumps the source's
/// `tuples_shipped` counter (a row never pulled is never counted — the
/// measurable benefit of navigation-driven evaluation).
pub struct Cursor {
    backing: Backing,
    armed: Option<ArmedPrefetch>,
    /// Rows already received from the prefetcher but not yet handed
    /// out — only populated when [`Cursor::next`] is used on a cursor
    /// whose prefetcher delivers whole blocks.
    stash: VecDeque<Row>,
    /// Row buffer for operators without a native columnar path (the
    /// default [`RowIter::next_cblock`] routes through it); reused
    /// across pulls so the fallback costs no per-block allocation.
    scratch: Vec<Row>,
    stats: Stats,
    tracer: TracerHandle,
    arity: usize,
    delivered: u64,
    retries: u64,
}

impl Cursor {
    pub(crate) fn new(
        plan: &PhysPlan,
        stats: Stats,
        tracer: TracerHandle,
        chaos: Option<ChaosState>,
    ) -> Cursor {
        let arity = plan.arity();
        let iter = compile(plan, &stats);
        Cursor {
            backing: Backing::Sync { iter, chaos },
            armed: None,
            stash: VecDeque::new(),
            scratch: Vec::new(),
            stats,
            tracer,
            arity,
            delivered: 0,
            retries: 0,
        }
    }

    /// A scatter-gather cursor: k-way ordered merge over per-shard
    /// child cursors. `keys` are comparator positions into the child
    /// rows (which may carry `strip` appended trailing key columns the
    /// consumer never sees); `dedup` drops adjacent duplicates for
    /// DISTINCT statements. `arity` is the *delivered* arity (after
    /// stripping). The children account their own `TuplesShipped`/
    /// `BlocksShipped` into the shared stats; the merge cursor adds no
    /// accounting of its own, so sharded and unsharded runs meter the
    /// source↔mediator boundary the same way.
    pub(crate) fn merged(
        children: Vec<Cursor>,
        keys: Vec<usize>,
        strip: usize,
        dedup: bool,
        arity: usize,
        stats: Stats,
        tracer: TracerHandle,
    ) -> Cursor {
        let n = children.len();
        Cursor {
            backing: Backing::Merge(MergeState {
                bufs: (0..n).map(|_| VecDeque::new()).collect(),
                done: vec![false; n],
                children,
                keys,
                strip,
                dedup,
                last: None,
            }),
            armed: None,
            stash: VecDeque::new(),
            scratch: Vec::new(),
            stats,
            tracer,
            arity,
            delivered: 0,
            retries: 0,
        }
    }

    /// Pull merged rows from a [`Backing::Merge`] cursor, updating only
    /// `delivered` (the children already accounted the shipped rows).
    fn merge_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        let Backing::Merge(m) = &mut self.backing else {
            unreachable!()
        };
        let k = m.pull(out, n)?;
        self.delivered += k as u64;
        Ok(k)
    }

    /// Arm pipelined prefetch on this cursor: once the first block has
    /// been demanded (served synchronously, so the first `d()` still
    /// ships exactly one row), a background thread keeps up to
    /// `policy.depth()` blocks in flight over a bounded channel,
    /// following `ramp` — the consumer's own block schedule — so the
    /// admit sequence, and with it the chaos backend's fault schedule
    /// and all `BlocksShipped` accounting, is bit-for-bit the one the
    /// synchronous path would produce. Transient faults are retried
    /// in-thread under `retry`; errors that escape arrive over the
    /// channel and latch. `PrefetchPolicy::Off` is a no-op.
    ///
    /// `ramp` must be a fresh clone of the ramp the consumer will pull
    /// with, taken before its first `next_size()` call.
    ///
    /// [`PrefetchPolicy::Auto`] additionally gates on the statement's
    /// modelled backend RTT: with nothing to overlap (a zero-latency
    /// local backend), speculation is pure thread-and-channel overhead,
    /// so `Auto` stays synchronous. `Depth(n)` is unconditional.
    pub fn enable_prefetch(&mut self, policy: PrefetchPolicy, ramp: BlockRamp, retry: RetryPolicy) {
        if let Backing::Merge(m) = &mut self.backing {
            // Scatter-gather: each shard child prefetches independently,
            // and starts *now* — the merge needs a head row from every
            // live shard before it can emit anything, so there is no
            // laziness to protect per child, and priming fetches the
            // first blocks of all shards in parallel instead of paying
            // their RTTs serially through the first refill. `Auto`
            // still gates per child on its own backend latency.
            for c in &mut m.children {
                c.enable_prefetch(policy, ramp.clone(), retry);
                c.prime_prefetch();
            }
            return;
        }
        if matches!(policy, PrefetchPolicy::Auto) && self.backend_latency_ms() == 0 {
            return;
        }
        if let Some(depth) = policy.depth() {
            self.armed = Some(ArmedPrefetch { depth, ramp, retry });
        }
    }

    /// The per-pull RTT the chaos gate models for this statement (0
    /// when unconfigured or the cursor already left its sync state).
    fn backend_latency_ms(&self) -> u64 {
        match &self.backing {
            Backing::Sync { chaos, .. } => chaos.as_ref().map_or(0, |c| c.latency_ms()),
            _ => 0,
        }
    }

    /// Start an armed prefetcher *now*, without waiting for the first
    /// demanded pull. For consumers that are about to drain this cursor
    /// anyway (a hash-join build side): laziness is not at stake, and
    /// starting early overlaps the build-side fetch with whatever the
    /// caller does before draining. No-op if prefetch is not armed or
    /// the cursor already started.
    pub fn prime_prefetch(&mut self) {
        if let Backing::Merge(m) = &mut self.backing {
            for c in &mut m.children {
                c.prime_prefetch();
            }
            return;
        }
        if let Some(armed) = self.armed.take() {
            self.start_prefetch(armed);
        }
    }

    fn start_prefetch(&mut self, armed: ArmedPrefetch) {
        if matches!(self.backing, Backing::Sync { .. }) {
            let Backing::Sync { iter, chaos } = std::mem::replace(&mut self.backing, Backing::Done)
            else {
                unreachable!()
            };
            let handle = prefetch::spawn(
                iter,
                chaos,
                armed.ramp,
                armed.retry,
                self.stats.clone(),
                armed.depth,
                self.arity,
            );
            self.backing = Backing::Live(handle);
        }
    }

    /// Fetch the next row, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.stash.pop_front() {
            // Accounted already, when its block was received.
            return Ok(Some(row));
        }
        if let Backing::Latched(e) = &self.backing {
            return Err(e.clone());
        }
        if matches!(self.backing, Backing::Live(_)) {
            let mut buf = Vec::new();
            if self.recv_block(&mut buf)? == 0 {
                return Ok(None);
            }
            self.stash.extend(buf);
            return Ok(self.stash.pop_front());
        }
        if matches!(self.backing, Backing::Merge(_)) {
            let mut buf = Vec::new();
            if self.merge_block(&mut buf, 1)? == 0 {
                return Ok(None);
            }
            self.stash.extend(buf);
            return Ok(self.stash.pop_front());
        }
        // Row-at-a-time consumers do not follow a block ramp; dropping
        // an armed (but unstarted) prefetcher keeps them synchronous
        // rather than replaying a schedule they will not follow.
        self.armed = None;
        let Backing::Sync { iter, chaos } = &mut self.backing else {
            return Ok(None); // Done
        };
        let row = match chaos {
            None => iter.next_row()?,
            Some(state) => {
                let (_, latency_ms) = state.admit(1)?;
                let r = iter.next_row()?;
                if r.is_some() {
                    state.delivered(1);
                }
                sleep_ms(latency_ms);
                r
            }
        };
        let Some(row) = row else {
            return Ok(None);
        };
        self.delivered += 1;
        self.stats.inc(Counter::TuplesShipped);
        if self.tracer.enabled() {
            self.tracer
                .event("row", &[("n", self.delivered.to_string())]);
        }
        Ok(Some(row))
    }

    /// Number of columns each row carries.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rows delivered through this cursor so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Retries spent by this cursor so far (across all
    /// [`Cursor::next_block_retrying`] calls) — `EXPLAIN ANALYZE`
    /// attributes these to the `rQ` node holding the cursor.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Fetch up to `n` rows into `out`, bumping `tuples_shipped` once
    /// per block (and recording the block size — see
    /// [`mix_obs::Stats::record_block`]). Returns the number of rows
    /// appended; `0` means the cursor is exhausted. On `Err`, nothing
    /// was appended and nothing was counted — a failed pull is
    /// side-effect-free, so a retried block is accounted exactly once.
    ///
    /// On a prefetching cursor the blocks arrive pre-sized by the ramp
    /// the prefetcher replays; `n` is then advisory (a consumer that
    /// follows the ramp it registered sees identical sizes either way).
    pub fn next_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        if n == 0 {
            return Ok(0);
        }
        if !self.stash.is_empty() {
            let k = n.min(self.stash.len());
            out.extend(self.stash.drain(..k));
            return Ok(k);
        }
        if let Backing::Latched(e) = &self.backing {
            return Err(e.clone());
        }
        if matches!(self.backing, Backing::Done) {
            return Ok(0);
        }
        if matches!(self.backing, Backing::Live(_)) {
            return self.recv_block(out);
        }
        if matches!(self.backing, Backing::Merge(_)) {
            return self.merge_block(out, n);
        }
        let Backing::Sync { iter, chaos } = &mut self.backing else {
            unreachable!()
        };
        let (k, latency_ms) = gated_pull(&mut **iter, chaos, out, n)?;
        sleep_ms(latency_ms);
        if k == 0 {
            self.armed = None; // exhausted: nothing to speculate on
            return Ok(0);
        }
        self.account_block(k, 0, 0);
        // The first demanded pull just completed synchronously; if
        // prefetch is armed, speculation may begin now. The armed ramp
        // mirrors the consumer's, so advance it past the size this pull
        // consumed before handing it to the thread.
        if let Some(mut armed) = self.armed.take() {
            armed.ramp.next_size();
            self.start_prefetch(armed);
        }
        Ok(k)
    }

    /// [`Cursor::next_block`], columnar: fetch up to `n` rows appended
    /// to the column vectors of `out`. All accounting — `TuplesShipped`,
    /// `BlocksShipped`, per-row trace events, the prefetch arm/ramp
    /// handshake — is bit-for-bit the row path's; additionally
    /// [`Counter::BlockBytes`] and [`Counter::InternHits`] size what
    /// crossed the seam. The hot drain path therefore never boxes a
    /// cell: scans copy straight from the table's columnar mirror.
    pub fn next_cblock(&mut self, out: &mut ColumnBlock, n: usize) -> Result<usize> {
        if n == 0 {
            return Ok(0);
        }
        if !self.stash.is_empty() {
            let k = n.min(self.stash.len());
            out.reserve(k);
            for row in self.stash.drain(..k) {
                out.push_row(row);
            }
            return Ok(k);
        }
        if let Backing::Latched(e) = &self.backing {
            return Err(e.clone());
        }
        if matches!(self.backing, Backing::Done) {
            return Ok(0);
        }
        if matches!(self.backing, Backing::Live(_)) {
            return self.recv_cblock(out);
        }
        if matches!(self.backing, Backing::Merge(_)) {
            let mut buf = std::mem::take(&mut self.scratch);
            buf.clear();
            let k = self.merge_block(&mut buf, n)?;
            out.reserve(k);
            for r in buf.drain(..) {
                out.push_row(r);
            }
            self.scratch = buf;
            return Ok(k);
        }
        let Backing::Sync { iter, chaos } = &mut self.backing else {
            unreachable!()
        };
        // `out` may carry earlier rows; meter only this pull's delta.
        let (pre_bytes, pre_shared) = if out.is_empty() {
            (0, 0)
        } else {
            (out.byte_size(), out.shared_str_cells())
        };
        let (k, latency_ms) = gated_cpull(&mut **iter, chaos, out, n, &mut self.scratch)?;
        sleep_ms(latency_ms);
        if k == 0 {
            self.armed = None;
            return Ok(0);
        }
        self.account_block(
            k,
            out.byte_size().saturating_sub(pre_bytes),
            out.shared_str_cells().saturating_sub(pre_shared),
        );
        if let Some(mut armed) = self.armed.take() {
            armed.ramp.next_size();
            self.start_prefetch(armed);
        }
        Ok(k)
    }

    /// Per-block delivery accounting, shared by every pull path:
    /// `delivered`, `TuplesShipped`, `BlocksShipped` (+ block-size
    /// histogram), columnar footprint counters, and the same per-row
    /// trace events as the tuple-at-a-time path (so traced output is
    /// independent of block size *and* representation).
    fn account_block(&mut self, k: usize, block_bytes: u64, shared_strs: u64) {
        self.delivered += k as u64;
        self.stats.add(Counter::TuplesShipped, k as u64);
        self.stats.record_block(k as u64);
        if block_bytes > 0 {
            self.stats.add(Counter::BlockBytes, block_bytes);
        }
        if shared_strs > 0 {
            self.stats.add(Counter::InternHits, shared_strs);
        }
        if self.tracer.enabled() {
            let base = self.delivered - k as u64;
            for i in 1..=k as u64 {
                self.tracer.event("row", &[("n", (base + i).to_string())]);
            }
        }
    }

    /// Receive one block from the live prefetcher, accounting hits and
    /// stalls, replaying the thread's fault/retry trace, and deferring
    /// delivery to the block's modelled arrival time. `Ok(None)` is
    /// clean end-of-stream (the cursor is now `Done`).
    fn recv_fetched(&mut self) -> Result<Option<FetchedBlock>> {
        let (msg, hit) = {
            let Backing::Live(handle) = &mut self.backing else {
                unreachable!()
            };
            match handle.try_recv() {
                TryRecv::Item(m) => (Some(m), true),
                TryRecv::Closed => (None, true),
                TryRecv::Empty => {
                    let t0 = Instant::now();
                    let m = handle.recv();
                    self.stats
                        .add(Counter::PrefetchStallNs, t0.elapsed().as_nanos() as u64);
                    (m, false)
                }
            }
        };
        match msg {
            None => {
                // The producer drained the plan and exited; dropping
                // the handle joins it.
                self.backing = Backing::Done;
                Ok(None)
            }
            Some(PrefetchMsg::Block(block)) => {
                if hit {
                    self.stats.inc(Counter::PrefetchHitBlocks);
                }
                // A pipelined connection still delivers each response
                // one RTT after its request was issued; blocks may not
                // be consumed before they "arrive".
                let now = Instant::now();
                if block.arrival > now {
                    let wait = block.arrival - now;
                    std::thread::sleep(wait);
                    self.stats
                        .add(Counter::PrefetchStallNs, wait.as_nanos() as u64);
                }
                self.replay_retries(&block.retry_backoff_ms);
                Ok(Some(block))
            }
            Some(PrefetchMsg::Failed {
                error,
                retry_backoff_ms,
            }) => {
                self.replay_retries(&retry_backoff_ms);
                if self.tracer.enabled() {
                    let kind = if error.is_transient() {
                        "transient"
                    } else {
                        "permanent"
                    };
                    self.tracer.event("fault", &[("kind", kind.to_string())]);
                }
                self.backing = Backing::Latched(error.clone());
                Err(error)
            }
        }
    }

    /// Row-compat view over the prefetcher's columnar blocks.
    fn recv_block(&mut self, out: &mut Vec<Row>) -> Result<usize> {
        let Some(block) = self.recv_fetched()? else {
            return Ok(0);
        };
        let k = block.cols.len();
        self.account_block(k, block.cols.byte_size(), block.cols.shared_str_cells());
        block.cols.append_rows_to(out);
        Ok(k)
    }

    /// Columnar receive: an empty `out` adopts the shipped block
    /// wholesale (a move, no copy); otherwise the block is appended
    /// column-at-a-time.
    fn recv_cblock(&mut self, out: &mut ColumnBlock) -> Result<usize> {
        let Some(block) = self.recv_fetched()? else {
            return Ok(0);
        };
        let k = block.cols.len();
        self.account_block(k, block.cols.byte_size(), block.cols.shared_str_cells());
        if out.is_empty() {
            *out = block.cols;
        } else {
            block.cols.append_range(0, k, out);
        }
        Ok(k)
    }

    /// Replay the prefetcher's per-block retry history into this
    /// cursor's trace and EXPLAIN counter. Each in-thread retry was
    /// preceded by an observed transient fault, so traced sessions see
    /// the same `fault`/`retry` event pairs the synchronous path emits;
    /// the `Stats` counters were already bumped by the thread.
    fn replay_retries(&mut self, backoff_ms: &[u64]) {
        for (i, backoff) in backoff_ms.iter().enumerate() {
            self.retries += 1;
            if self.tracer.enabled() {
                self.tracer
                    .event("fault", &[("kind", "transient".to_string())]);
                self.tracer.event(
                    "retry",
                    &[
                        ("attempt", (i as u64 + 1).to_string()),
                        ("backoff_ms", backoff.to_string()),
                    ],
                );
            }
        }
    }

    /// [`Cursor::next_block`] with transient faults retried under
    /// `retry`: bounded attempts, exponential backoff, optional
    /// wall-clock deadline. Because a failed pull delivers nothing, the
    /// re-issued pull returns exactly the rows the failed one would
    /// have — retries are invisible to the consumer and to the
    /// block-size ramp. Counts each retry ([`Counter::RetriesAttempted`],
    /// [`Counter::RetryBackoffMs`]) and every error that escapes
    /// ([`Counter::BackendErrors`]); the escaped error's `retries` field
    /// records the spent budget. Traced sessions see a `fault` event per
    /// observed failure and a `retry` event per re-issue.
    pub fn next_block_retrying(
        &mut self,
        out: &mut Vec<Row>,
        n: usize,
        retry: &RetryPolicy,
    ) -> Result<usize> {
        if !matches!(self.backing, Backing::Sync { .. } | Backing::Merge(_)) {
            // Prefetched blocks arrive pre-retried (the thread runs
            // this same loop); an error surfacing here already spent
            // its budget and is terminal. Merge pulls *do* retry: a
            // failed refill is side-effect-free, and the re-issued pull
            // only re-pulls the shard that failed.
            return self.next_block(out, n);
        }
        self.retry_loop(retry, |c| c.next_block(out, n))
    }

    /// [`Cursor::next_cblock`] with transient faults retried under
    /// `retry` — the columnar twin of [`Cursor::next_block_retrying`],
    /// running the identical retry loop (and so the identical counters
    /// and trace events).
    pub fn next_cblock_retrying(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        retry: &RetryPolicy,
    ) -> Result<usize> {
        if !matches!(self.backing, Backing::Sync { .. } | Backing::Merge(_)) {
            return self.next_cblock(out, n);
        }
        self.retry_loop(retry, |c| c.next_cblock(out, n))
    }

    /// The one retry loop both block representations share: bounded
    /// attempts, exponential backoff, optional wall-clock deadline,
    /// `fault`/`retry` trace events, and the escaped error's `retries`
    /// field recording the spent budget.
    fn retry_loop(
        &mut self,
        retry: &RetryPolicy,
        mut pull: impl FnMut(&mut Cursor) -> Result<usize>,
    ) -> Result<usize> {
        let mut attempt = 0u32;
        let mut spent_backoff = 0u64;
        loop {
            let e = match pull(self) {
                Ok(k) => return Ok(k),
                Err(e) => e,
            };
            if self.tracer.enabled() {
                let kind = if e.is_transient() {
                    "transient"
                } else {
                    "permanent"
                };
                self.tracer.event("fault", &[("kind", kind.to_string())]);
            }
            if e.is_transient() && retry.allows(attempt + 1, spent_backoff) {
                attempt += 1;
                let backoff = retry.backoff_ms(attempt);
                spent_backoff += backoff;
                self.retries += 1;
                self.stats.inc(Counter::RetriesAttempted);
                self.stats.add(Counter::RetryBackoffMs, backoff);
                if self.tracer.enabled() {
                    self.tracer.event(
                        "retry",
                        &[
                            ("attempt", attempt.to_string()),
                            ("backoff_ms", backoff.to_string()),
                        ],
                    );
                }
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            } else {
                self.stats.inc(Counter::BackendErrors);
                return Err(match e {
                    MixError::Backend(mut be) => {
                        be.retries = attempt;
                        MixError::Backend(be)
                    }
                    other => other,
                });
            }
        }
    }

    /// `(lower, upper)` bounds on the rows still to come.
    pub fn size_hint(&self) -> (usize, Option<usize>) {
        let stashed = self.stash.len();
        match &self.backing {
            Backing::Sync { iter, chaos } => {
                let (lo, hi) = iter.size_hint();
                // The permanent-fault horizon caps what will ever ship.
                match chaos.as_ref().and_then(|st| st.remaining_allowance()) {
                    Some(cap) => (lo.min(cap), Some(hi.map_or(cap, |h| h.min(cap)))),
                    None => (lo, hi),
                }
            }
            Backing::Live(_) => (stashed, None),
            Backing::Latched(_) | Backing::Done => (stashed, Some(stashed)),
            Backing::Merge(m) => {
                let (lo, hi) = m.size_hint();
                (lo + stashed, hi.map(|h| h + stashed))
            }
        }
    }

    /// Drain the remainder into `out` (block at a time); returns the
    /// number of rows appended.
    pub fn drain(&mut self, out: &mut Vec<Row>) -> Result<usize> {
        self.drain_retrying(out, &RetryPolicy::none())
    }

    /// [`Cursor::drain`] with transient faults retried under `retry`.
    pub fn drain_retrying(&mut self, out: &mut Vec<Row>, retry: &RetryPolicy) -> Result<usize> {
        let (lo, _) = self.size_hint();
        out.reserve(lo);
        let mut total = 0;
        loop {
            let k = self.next_block_retrying(out, DRAIN_BLOCK, retry)?;
            if k == 0 {
                break;
            }
            total += k;
        }
        Ok(total)
    }

    /// Drain the remainder into a vector (the *eager* access pattern).
    pub fn collect_all(mut self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.drain(&mut out)?;
        Ok(out)
    }
}

fn compile(plan: &PhysPlan, stats: &Stats) -> Box<dyn RowIter> {
    match plan {
        PhysPlan::Scan { table, preds, .. } => Box::new(ScanIter {
            table: Arc::clone(table),
            idx: 0,
            preds: preds.clone(),
            stats: stats.clone(),
            mask: Vec::new(),
            mask_tmp: Vec::new(),
            sel: Vec::new(),
        }),
        PhysPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
            post,
        } => Box::new(HashJoinIter {
            lbuf: ColumnBlock::new(left.arity()),
            right_arity: right.arity(),
            left: compile(left, stats),
            right: Some(compile(right, stats)),
            table: HashMap::new(),
            cbuild: None,
            ctable: HashMap::new(),
            lidx: Vec::new(),
            ridx: Vec::new(),
            left_key: *left_key,
            right_key: *right_key,
            post: post.clone(),
            pending: Vec::new(),
        }),
        PhysPlan::NlJoin { left, right, post } => Box::new(NlJoinIter {
            left: compile(left, stats),
            right_src: Some(compile(right, stats)),
            right_rows: Vec::new(),
            cur_left: None,
            right_idx: 0,
            post: post.clone(),
        }),
        PhysPlan::Sort { input, keys } => Box::new(SortIter {
            arity: input.arity(),
            input: Some(compile(input, stats)),
            keys: keys.clone(),
            sorted: Vec::new(),
            cols: None,
            perm: Vec::new(),
            idx: 0,
        }),
        PhysPlan::Project {
            input,
            cols,
            distinct,
        } => Box::new(ProjectIter {
            cbuf: ColumnBlock::new(input.arity()),
            input: compile(input, stats),
            cols: cols.clone(),
            seen: if *distinct {
                Some(HashSet::new())
            } else {
                None
            },
            buf: Vec::new(),
        }),
    }
}

struct ScanIter {
    table: Arc<Table>,
    idx: usize,
    preds: Vec<RPred>,
    stats: Stats,
    /// Scratch for the vectorized predicate path, reused across pulls.
    mask: Vec<bool>,
    mask_tmp: Vec<bool>,
    sel: Vec<usize>,
}

/// Rows a vectorized scan evaluates per predicate kernel invocation.
/// Small enough that a selective early-exit wastes little work past
/// the n-th match, large enough to amortize the per-chunk dispatch.
const SCAN_CHUNK: usize = 256;

/// Conjunction of `preds` over rows `start..end` of `cols`, one
/// vectorized kernel per predicate, AND-folded into `mask`.
fn pred_mask(
    cols: &ColumnBlock,
    preds: &[RPred],
    start: usize,
    end: usize,
    mask: &mut Vec<bool>,
    tmp: &mut Vec<bool>,
) {
    for (i, p) in preds.iter().enumerate() {
        let out = if i == 0 { &mut *mask } else { &mut *tmp };
        match &p.rhs {
            ROperand::Const(v) => cols.cmp_const_mask(p.lhs, p.op, v, start, end, out),
            ROperand::Col(c) => cols.cmp_cols_mask(p.lhs, p.op, *c, start, end, out),
        }
        if i > 0 {
            for (m, t) in mask.iter_mut().zip(tmp.iter()) {
                *m &= t;
            }
        }
    }
}

impl RowIter for ScanIter {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while self.idx < self.table.len() {
            let row = &self.table.rows()[self.idx];
            self.idx += 1;
            self.stats.inc(Counter::RowsScanned);
            if self.preds.iter().all(|p| p.eval(row)) {
                return Ok(Some(row.clone()));
            }
        }
        Ok(None)
    }

    fn next_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        let rows = self.table.rows();
        let mut k = 0;
        let mut scanned = 0;
        while k < n && self.idx < rows.len() {
            let row = &rows[self.idx];
            self.idx += 1;
            scanned += 1;
            if self.preds.iter().all(|p| p.eval(row)) {
                out.push(row.clone());
                k += 1;
            }
        }
        if scanned > 0 {
            self.stats.add(Counter::RowsScanned, scanned);
        }
        Ok(k)
    }

    /// The native columnar scan: bulk column-slice copies from the
    /// table's mirror when unfiltered; otherwise chunked vectorized
    /// predicate masks with a gather of the selected rows. `RowsScanned`
    /// counts exactly the rows *consumed* — up to and including the
    /// n-th match, as the row path does — even though a kernel may have
    /// evaluated a few cells past it within the final chunk.
    fn next_cblock(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        _scratch: &mut Vec<Row>,
    ) -> Result<usize> {
        let cols = self.table.columnar();
        let total = cols.len();
        if n == 0 || self.idx >= total {
            return Ok(0);
        }
        if self.preds.is_empty() {
            let end = (self.idx + n).min(total);
            let k = end - self.idx;
            cols.append_range(self.idx, end, out);
            self.idx = end;
            self.stats.add(Counter::RowsScanned, k as u64);
            return Ok(k);
        }
        let mut k = 0usize;
        let mut scanned = 0u64;
        while k < n && self.idx < total {
            let chunk_end = (self.idx + SCAN_CHUNK).min(total);
            pred_mask(
                cols,
                &self.preds,
                self.idx,
                chunk_end,
                &mut self.mask,
                &mut self.mask_tmp,
            );
            self.sel.clear();
            let mut consumed = chunk_end;
            for (off, &m) in self.mask.iter().enumerate() {
                if m {
                    self.sel.push(self.idx + off);
                    if k + self.sel.len() == n {
                        consumed = self.idx + off + 1;
                        break;
                    }
                }
            }
            scanned += (consumed - self.idx) as u64;
            cols.gather_rows(&self.sel, out);
            k += self.sel.len();
            self.idx = consumed;
        }
        if scanned > 0 {
            self.stats.add(Counter::RowsScanned, scanned);
        }
        Ok(k)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.table.len() - self.idx;
        if self.preds.is_empty() {
            (rem, Some(rem))
        } else {
            (0, Some(rem))
        }
    }
}

/// Streams the left input; builds a hash table over the (fully drained)
/// right input on first pull. The pipeline therefore stays lazy in its
/// *driver* (left) input.
struct HashJoinIter {
    left: Box<dyn RowIter>,
    right: Option<Box<dyn RowIter>>,
    table: HashMap<Value, Vec<Row>>,
    /// Columnar build side: the right input as one block plus bucket
    /// row indices. Built instead of `table` when the *first* pull is
    /// columnar; probe output is then a pure column gather
    /// ([`ColumnBlock::append_join`]) — no per-row tuple is built.
    cbuild: Option<ColumnBlock>,
    ctable: HashMap<Value, Vec<usize>>,
    right_arity: usize,
    /// Left probe staging block plus the match selection vectors
    /// (`lidx[k]`/`ridx[k]` = the k-th output row's sources).
    lbuf: ColumnBlock,
    lidx: Vec<usize>,
    ridx: Vec<usize>,
    left_key: usize,
    right_key: usize,
    post: Vec<RPred>,
    pending: Vec<Row>,
}

impl RowIter for HashJoinIter {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if let Some(mut right) = self.right.take() {
            let mut build = Vec::new();
            drain_all(&mut *right, &mut build)?;
            for r in build {
                let k = r[self.right_key].clone();
                if !k.is_null() {
                    self.table.entry(k).or_default().push(r);
                }
            }
        }
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(l) = self.left.next_row()? else {
                return Ok(None);
            };
            // Matches are staged in reverse so `pending.pop` replays
            // them in build-arrival order.
            if let Some(build) = &self.cbuild {
                // The build side was materialized columnar first; read
                // build rows out of the block.
                if let Some(matches) = self.ctable.get(&l[self.left_key]) {
                    for &m in matches.iter().rev() {
                        let mut row = l.clone();
                        row.extend((0..build.arity()).map(|c| build.value_at(m, c)));
                        if self.post.iter().all(|p| p.eval(&row)) {
                            self.pending.push(row);
                        }
                    }
                }
            } else if let Some(matches) = self.table.get(&l[self.left_key]) {
                for m in matches.iter().rev() {
                    let mut row = l.clone();
                    row.extend(m.iter().cloned());
                    if self.post.iter().all(|p| p.eval(&row)) {
                        self.pending.push(row);
                    }
                }
            }
        }
    }

    fn next_cblock(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        scratch: &mut Vec<Row>,
    ) -> Result<usize> {
        // Post predicates evaluate row-wise; and once the build side is
        // row-shaped (a row pull came first), stay on the row route.
        if !self.post.is_empty() || (self.cbuild.is_none() && self.right.is_none()) {
            scratch.clear();
            let k = self.next_block(scratch, n)?;
            out.reserve(k);
            for r in scratch.drain(..) {
                out.push_row(r);
            }
            return Ok(k);
        }
        if self.cbuild.is_none() {
            let mut right = self
                .right
                .take()
                .expect("row route taken when right is gone");
            let mut build = ColumnBlock::new(self.right_arity);
            let (lo, _) = right.size_hint();
            build.reserve(lo);
            while right.next_cblock(&mut build, DRAIN_BLOCK, scratch)? > 0 {}
            for r in 0..build.len() {
                let k = build.value_at(r, self.right_key);
                if !k.is_null() {
                    self.ctable.entry(k).or_default().push(r);
                }
            }
            self.cbuild = Some(build);
        }
        loop {
            self.lbuf.clear();
            let got = self.left.next_cblock(&mut self.lbuf, n, scratch)?;
            if got == 0 {
                return Ok(0);
            }
            self.lidx.clear();
            self.ridx.clear();
            for i in 0..got {
                if let Some(matches) = self.ctable.get(&self.lbuf.value_at(i, self.left_key)) {
                    for &m in matches {
                        self.lidx.push(i);
                        self.ridx.push(m);
                    }
                }
            }
            if self.lidx.is_empty() {
                continue; // no match in this probe block; keep pulling
            }
            out.reserve(self.lidx.len());
            let build = self.cbuild.as_ref().expect("built above");
            self.lbuf.append_join(&self.lidx, build, &self.ridx, out);
            return Ok(self.lidx.len());
        }
    }
}

struct NlJoinIter {
    left: Box<dyn RowIter>,
    right_src: Option<Box<dyn RowIter>>,
    right_rows: Vec<Row>,
    cur_left: Option<Row>,
    right_idx: usize,
    post: Vec<RPred>,
}

impl RowIter for NlJoinIter {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if let Some(mut src) = self.right_src.take() {
            drain_all(&mut *src, &mut self.right_rows)?;
        }
        loop {
            if self.cur_left.is_none() {
                let Some(l) = self.left.next_row()? else {
                    return Ok(None);
                };
                self.cur_left = Some(l);
                self.right_idx = 0;
            }
            let l = self.cur_left.as_ref().unwrap();
            while self.right_idx < self.right_rows.len() {
                let r = &self.right_rows[self.right_idx];
                self.right_idx += 1;
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                if self.post.iter().all(|p| p.eval(&row)) {
                    return Ok(Some(row));
                }
            }
            self.cur_left = None;
        }
    }
}

/// Blocking sort (the one non-pipelined node; `ORDER BY` requires it).
///
/// The *first* pull picks the materialization: a row pull drains the
/// input into `sorted` and sorts the rows (the pre-columnar path,
/// byte-for-byte); a columnar pull drains the input into a
/// [`ColumnBlock`] and stable-sorts a row *permutation* instead — no
/// row tuple is ever allocated. Either storage serves both pull shapes
/// afterwards, so mixed consumers stay coherent.
struct SortIter {
    input: Option<Box<dyn RowIter>>,
    keys: Vec<usize>,
    arity: usize,
    sorted: Vec<Row>,
    cols: Option<ColumnBlock>,
    /// Sorted row order of `cols` (identity when `cols` was transposed
    /// from the already-sorted `sorted`).
    perm: Vec<usize>,
    idx: usize,
}

impl SortIter {
    /// Row-mode materialization: drain and sort rows.
    fn force_rows(&mut self) -> Result<()> {
        if let Some(mut input) = self.input.take() {
            drain_all(&mut *input, &mut self.sorted)?;
            let keys = self.keys.clone();
            self.sorted.sort_by(|a, b| {
                for &k in &keys {
                    let o = a[k].total_cmp(&b[k]);
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        Ok(())
    }

    /// Columnar materialization: drain into a block, sort a
    /// permutation. The stable index sort over key cells yields exactly
    /// the row-mode stable sort order.
    fn force_cols(&mut self, scratch: &mut Vec<Row>) -> Result<()> {
        if let Some(mut input) = self.input.take() {
            let mut block = ColumnBlock::new(self.arity);
            let (lo, _) = input.size_hint();
            block.reserve(lo);
            while input.next_cblock(&mut block, DRAIN_BLOCK, scratch)? > 0 {}
            let mut perm: Vec<usize> = (0..block.len()).collect();
            perm.sort_by(|&a, &b| {
                for &k in &self.keys {
                    let o = block.value_at(a, k).total_cmp(&block.value_at(b, k));
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.perm = perm;
            self.cols = Some(block);
        }
        Ok(())
    }

    /// Transpose row-mode storage into the columnar form (mixed-mode
    /// seam; `sorted` is already in output order, so the permutation is
    /// the identity).
    fn transpose_sorted(&mut self) {
        if self.cols.is_none() {
            let mut block = ColumnBlock::new(self.arity);
            block.reserve(self.sorted.len());
            self.perm = (0..self.sorted.len()).collect();
            for r in self.sorted.drain(..) {
                block.push_row(r);
            }
            self.cols = Some(block);
        }
    }

    fn remaining(&self) -> usize {
        self.cols
            .as_ref()
            .map_or(self.sorted.len(), ColumnBlock::len)
            - self.idx
    }
}

impl RowIter for SortIter {
    fn next_row(&mut self) -> Result<Option<Row>> {
        self.force_rows()?;
        if self.remaining() == 0 {
            return Ok(None);
        }
        let r = match &self.cols {
            Some(cols) => cols.row(self.perm[self.idx]),
            None => self.sorted[self.idx].clone(),
        };
        self.idx += 1;
        Ok(Some(r))
    }

    fn next_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        self.force_rows()?;
        let k = self.remaining().min(n);
        let end = self.idx + k;
        match &self.cols {
            Some(cols) => {
                out.reserve(k);
                out.extend(self.perm[self.idx..end].iter().map(|&r| cols.row(r)));
            }
            None => out.extend_from_slice(&self.sorted[self.idx..end]),
        }
        self.idx = end;
        Ok(k)
    }

    fn next_cblock(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        scratch: &mut Vec<Row>,
    ) -> Result<usize> {
        if self.input.is_some() {
            self.force_cols(scratch)?;
        } else {
            self.transpose_sorted();
        }
        let k = self.remaining().min(n);
        if k > 0 {
            let end = self.idx + k;
            let cols = self.cols.as_ref().expect("columnar storage forced above");
            cols.gather_rows(&self.perm[self.idx..end], out);
            self.idx = end;
        }
        Ok(k)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.input.is_some() {
            (0, None)
        } else {
            let rem = self.remaining();
            (rem, Some(rem))
        }
    }
}

struct ProjectIter {
    input: Box<dyn RowIter>,
    cols: Vec<usize>,
    seen: Option<HashSet<Row>>,
    buf: Vec<Row>,
    /// Columnar staging block at the *input's* arity: a columnar pull
    /// lands the input block here, then projection is one bulk column
    /// copy per output column.
    cbuf: ColumnBlock,
}

impl RowIter for ProjectIter {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            let Some(row) = self.input.next_row()? else {
                return Ok(None);
            };
            let out: Row = self.cols.iter().map(|&c| row[c].clone()).collect();
            match &mut self.seen {
                None => return Ok(Some(out)),
                Some(seen) => {
                    if seen.insert(out.clone()) {
                        return Ok(Some(out));
                    }
                }
            }
        }
    }

    fn next_block(&mut self, out: &mut Vec<Row>, n: usize) -> Result<usize> {
        if self.seen.is_some() {
            // DISTINCT drops rows; fall back to the filtering loop so a
            // short block does not under-fill when the input has more.
            let mut k = 0;
            while k < n {
                match self.next_row()? {
                    Some(r) => {
                        out.push(r);
                        k += 1;
                    }
                    None => break,
                }
            }
            return Ok(k);
        }
        self.buf.clear();
        let got = self.input.next_block(&mut self.buf, n)?;
        out.reserve(got);
        for row in self.buf.drain(..) {
            out.push(self.cols.iter().map(|&c| row[c].clone()).collect());
        }
        Ok(got)
    }

    fn next_cblock(
        &mut self,
        out: &mut ColumnBlock,
        n: usize,
        scratch: &mut Vec<Row>,
    ) -> Result<usize> {
        if self.seen.is_some() {
            // DISTINCT needs per-row dedup state; route through rows.
            scratch.clear();
            let k = self.next_block(scratch, n)?;
            out.reserve(k);
            for r in scratch.drain(..) {
                out.push_row(r);
            }
            return Ok(k);
        }
        self.cbuf.clear();
        let got = self.input.next_cblock(&mut self.cbuf, n, scratch)?;
        if got > 0 {
            out.reserve(got);
            self.cbuf.append_projected(&self.cols, 0, got, out);
        }
        Ok(got)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.input.size_hint();
        if self.seen.is_some() {
            (0, hi)
        } else {
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_db;

    fn run(sql: &str) -> Vec<Row> {
        let db = sample_db();
        db.execute_sql(sql).unwrap().collect_all().unwrap()
    }

    #[test]
    fn scan_with_filter() {
        let rows = run("SELECT * FROM orders WHERE value > 2000");
        assert_eq!(rows.len(), 2); // 2400 and 200000
        assert!(rows.iter().all(|r| r[2].as_int().unwrap() > 2000));
    }

    #[test]
    fn hash_join_matches_fig2_data() {
        let rows = run("SELECT c.id, o.orid, o.value FROM customer c, orders o \
             WHERE c.id = o.cid ORDER BY o.orid");
        // Fig. 2: orders 28904 (XYZ123, 2400) and 87456 (XYZ123, 200000);
        // order 99111 belongs to DEF345.
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            vec![Value::str("XYZ123"), Value::Int(28904), Value::Int(2400)]
        );
    }

    #[test]
    fn distinct_deduplicates() {
        let rows = run("SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn order_by_sorts() {
        let rows = run("SELECT o.value FROM orders o ORDER BY o.value");
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn cartesian_product() {
        let rows = run("SELECT c.id, o.orid FROM customer c, orders o");
        assert_eq!(rows.len(), 2 * 3);
    }

    #[test]
    fn lazy_cursor_ships_only_what_is_pulled() {
        let db = sample_db();
        let stats = db.stats().clone();
        stats.reset();
        let mut cur = db.execute_sql("SELECT * FROM orders").unwrap();
        assert!(cur.next().unwrap().is_some());
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        // The scan may have looked at more rows internally, but only one
        // tuple crossed the source↔mediator boundary.
        drop(cur);
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
    }

    #[test]
    fn next_block_ships_once_per_block() {
        let db = sample_db();
        let stats = db.stats().clone();
        stats.reset();
        let mut cur = db.execute_sql("SELECT * FROM orders").unwrap();
        assert_eq!(cur.size_hint(), (3, Some(3)));
        let mut out = Vec::new();
        assert_eq!(cur.next_block(&mut out, 2).unwrap(), 2);
        assert_eq!(stats.get(Counter::TuplesShipped), 2);
        assert_eq!(stats.get(Counter::BlocksShipped), 1);
        // Exhaustion: partial block, then zero.
        assert_eq!(cur.next_block(&mut out, 2).unwrap(), 1);
        assert_eq!(cur.next_block(&mut out, 2).unwrap(), 0);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.get(Counter::TuplesShipped), 3);
        assert_eq!(stats.get(Counter::BlocksShipped), 2);
        assert_eq!(cur.delivered(), 3);
    }

    #[test]
    fn block_and_row_pulls_agree() {
        let db = sample_db();
        let sql = "SELECT c.id, o.orid FROM customer c, orders o \
                   WHERE c.id = o.cid ORDER BY o.orid";
        let by_rows = db.execute_sql(sql).unwrap().collect_all().unwrap();
        let mut by_blocks = Vec::new();
        let mut cur = db.execute_sql(sql).unwrap();
        while cur.next_block(&mut by_blocks, 2).unwrap() > 0 {}
        assert_eq!(by_rows, by_blocks);
        // DISTINCT (filtering projection) agrees too.
        let sql = "SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid";
        let by_rows = db.execute_sql(sql).unwrap().collect_all().unwrap();
        let mut by_blocks = Vec::new();
        let mut cur = db.execute_sql(sql).unwrap();
        while cur.next_block(&mut by_blocks, 2).unwrap() > 0 {}
        assert_eq!(by_rows, by_blocks);
    }

    #[test]
    fn columnar_and_row_pulls_agree_exactly() {
        let db = sample_db();
        for sql in [
            "SELECT * FROM orders",
            "SELECT * FROM orders WHERE value > 2000",
            "SELECT c.id, o.orid, o.value FROM customer c, orders o \
             WHERE c.id = o.cid ORDER BY o.orid",
            "SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid",
        ] {
            let stats = db.stats().clone();
            stats.reset();
            let by_rows = db.execute_sql(sql).unwrap().collect_all().unwrap();
            let row_scanned = stats.get(Counter::RowsScanned);
            let row_shipped = stats.get(Counter::TuplesShipped);

            stats.reset();
            let mut cur = db.execute_sql(sql).unwrap();
            let mut block = ColumnBlock::new(cur.arity());
            let mut by_cols = Vec::new();
            let mut blocks = 0;
            loop {
                block.clear();
                if cur.next_cblock(&mut block, 2).unwrap() == 0 {
                    break;
                }
                blocks += 1;
                block.append_rows_to(&mut by_cols);
            }
            assert_eq!(by_rows, by_cols, "{sql}");
            // The internal scan work and the shipped-tuple accounting
            // are representation-independent.
            assert_eq!(stats.get(Counter::RowsScanned), row_scanned, "{sql}");
            assert_eq!(stats.get(Counter::TuplesShipped), row_shipped, "{sql}");
            assert_eq!(stats.get(Counter::BlocksShipped), blocks, "{sql}");
            if !by_rows.is_empty() {
                assert!(stats.get(Counter::BlockBytes) > 0, "{sql}");
            }
        }
    }

    #[test]
    fn vectorized_scan_stops_scanning_at_nth_match() {
        // 2 matching rows among 3; asking for exactly 1 must consume
        // rows only up to the first match, like the row path.
        let db = sample_db();
        let stats = db.stats().clone();
        stats.reset();
        let mut cur = db
            .execute_sql("SELECT * FROM orders WHERE value > 2000")
            .unwrap();
        let mut block = ColumnBlock::new(cur.arity());
        assert_eq!(cur.next_cblock(&mut block, 1).unwrap(), 1);
        let cols_scanned = stats.get(Counter::RowsScanned);

        stats.reset();
        let mut cur = db
            .execute_sql("SELECT * FROM orders WHERE value > 2000")
            .unwrap();
        let mut out = Vec::new();
        assert_eq!(cur.next_block(&mut out, 1).unwrap(), 1);
        assert_eq!(stats.get(Counter::RowsScanned), cols_scanned);
        assert_eq!(out[0], block.row(0));
    }

    #[test]
    fn join_then_filter_post_pred() {
        use crate::schema::{Column, ColumnType, Schema};
        let mut db = crate::db::Database::new("s");
        db.create_table(
            "c",
            Schema::new(
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("budget", ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            "o",
            Schema::new(
                vec![
                    Column::new("oid", ColumnType::Int),
                    Column::new("cid", ColumnType::Int),
                    Column::new("value", ColumnType::Int),
                ],
                &["oid"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("c", vec![Value::Int(1), Value::Int(1000)])
            .unwrap();
        db.insert("c", vec![Value::Int(2), Value::Int(99999)])
            .unwrap();
        for (oid, cid, v) in [(10, 1, 2400), (11, 1, 500), (12, 2, 500)] {
            db.insert("o", vec![Value::Int(oid), Value::Int(cid), Value::Int(v)])
                .unwrap();
        }
        // The col-vs-col non-equi predicate cannot be a hash key or a
        // scan filter; it must run as a post-join filter.
        let rows = db
            .execute_sql(
                "SELECT x.id, y.value FROM c x, o y WHERE x.id = y.cid AND y.value > x.budget",
            )
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(2400)]]);
    }

    #[test]
    fn nulls_never_join() {
        use crate::schema::{Column, ColumnType, Schema};
        let mut db = crate::db::Database::new("s");
        db.create_table(
            "l",
            Schema::new(vec![Column::new("k", ColumnType::Text)], &["k"]).unwrap(),
        )
        .unwrap();
        db.create_table(
            "r",
            Schema::new(vec![Column::new("k", ColumnType::Text)], &["k"]).unwrap(),
        )
        .unwrap();
        db.insert("l", vec![Value::Null]).unwrap();
        db.insert("l", vec![Value::str("a")]).unwrap();
        db.insert("r", vec![Value::Null]).unwrap();
        db.insert("r", vec![Value::str("a")]).unwrap();
        let rows = db
            .execute_sql("SELECT * FROM l x, r y WHERE x.k = y.k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
}
