//! The pipelined prefetcher: a pooled, cooperative producer per cursor.
//!
//! Prefetch work runs on a process-wide fixed-size worker pool
//! ([`mix_common::Pool`], one thread per hardware thread by default)
//! instead of one OS thread per cursor — a served workload with
//! hundreds of live cursors keeps a bounded thread count. The pool
//! boundary sits exactly where the thread boundary used to: the job
//! owns the compiled plan (a `RowIter`, plain `Send` data) and its
//! chaos gate; rows cross over the same bounded [`mix_common::ring`]
//! channel whose capacity is the prefetch depth, so readahead is
//! bounded by back-pressure, not discipline.
//!
//! A pooled producer must not *block* on its consumer (that would pin a
//! pool worker), so the job is cooperative: each [`PoolJob::step`]
//! produces at most one block and offers it with `try_send`. A full
//! ring parks the job; the ring's free-slot waker (fired when the
//! consumer pops or drops the receiver) re-enqueues it. Retry backoff
//! sleeps stay inside `step` — they are bounded and ms-scale, and
//! moving them off-worker would change the fault schedule.
//!
//! Three invariants make the prefetcher *observationally* identical to
//! the synchronous path (the chaos suite pins this bit-for-bit):
//!
//! 1. **Schedule replay.** The job pulls with the same [`BlockRamp`]
//!    the consumer registered, so the sequence of admit sizes — which
//!    is all the deterministic fault schedule keys off — matches the
//!    synchronous run exactly.
//! 2. **In-job retries.** Transient faults are retried here, with the
//!    same [`RetryPolicy`] loop the synchronous cursor runs; counters
//!    go to the shared atomic [`Stats`], and each block carries its
//!    retry history so the consumer can replay `fault`/`retry` trace
//!    events in order. An error that escapes the budget is shipped
//!    over the channel and latches the cursor.
//! 3. **Deferred RTT.** The chaos gate's `latency_ms` models the
//!    backend round trip. A pipelined connection still delivers each
//!    response one RTT after its request went out — so each block
//!    carries an `arrival` deadline (issue time + RTT) the consumer
//!    waits for. Consecutive requests overlap their RTTs (up to the
//!    channel depth), which is precisely the overlap the synchronous
//!    path cannot have: it pays one full RTT per block, serially.
//!
//! Cancellation: dropping the `PrefetchHandle` sets the stop flag,
//! drops the receiver (which fires the waker, resuming a parked job)
//! and waits for the job to finish — a dropped cursor or abandoned
//! session never leaks prefetch state ([`active_prefetchers`] is the
//! test hook) and never reads ahead unboundedly. The job observes the
//! stop flag on its next step and winds down; its owned state (plan,
//! ring sender, gauge guard) is dropped by the worker *before* the
//! handle's wait returns.

use crate::exec::{gated_cpull, RowIter};
use crate::fault::ChaosState;
use crate::table::Row;
use mix_common::ring::{self, Receiver, TryRecv, TrySend};
use mix_common::{
    BlockRamp, ColumnBlock, Counter, JobHandle, MixError, Pool, PoolJob, RetryPolicy, Stats, Step,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide prefetch executor, started on first use.
static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new("mix-prefetch", Pool::default_workers()))
}

/// Number of live prefetch producers, process-wide. The no-leaked-state
/// guarantee is testable: after dropping a session this returns to its
/// prior value (handle drop waits out the job, whose gauge guard is
/// released by the pool worker).
pub fn active_prefetchers() -> usize {
    ACTIVE.load(Ordering::SeqCst)
}

/// Worker-thread count of the shared prefetch pool (starts the pool if
/// needed). The process runs this many prefetch threads *total*,
/// regardless of cursor count.
pub fn prefetch_pool_workers() -> usize {
    pool().workers()
}

/// A snapshot handle onto the shared pool's counters: `PoolTasksRun`
/// (job dispatches) and `PrefetchQueueDepth` (cumulative queue-depth
/// samples at enqueue). Starts the pool if needed.
pub fn prefetch_pool_stats() -> Stats {
    pool().stats().clone()
}

/// One successfully fetched block, shipped columnar: the job builds
/// the typed vectors, so a columnar consumer adopts them by move and a
/// row consumer pays one materialization — never the reverse.
pub(crate) struct FetchedBlock {
    pub(crate) cols: ColumnBlock,
    /// Backoff milliseconds of each in-job retry this block needed,
    /// in order (empty for a clean pull) — the consumer replays these
    /// as `fault`/`retry` trace events.
    pub(crate) retry_backoff_ms: Vec<u64>,
    /// Earliest moment the block may be delivered: the issue time of
    /// its (successful) pull plus the modelled backend RTT.
    pub(crate) arrival: Instant,
}

/// What the prefetcher ships: blocks, or the one terminal error.
pub(crate) enum PrefetchMsg {
    Block(FetchedBlock),
    Failed {
        error: MixError,
        retry_backoff_ms: Vec<u64>,
    },
}

/// Consumer-side handle: receiver + stop flag + job handle. Dropping
/// it cancels the job and waits for its state to be released.
pub(crate) struct PrefetchHandle {
    rx: Option<Receiver<PrefetchMsg>>,
    stop: Arc<AtomicBool>,
    job: JobHandle,
}

impl PrefetchHandle {
    pub(crate) fn try_recv(&mut self) -> TryRecv<PrefetchMsg> {
        self.rx.as_mut().expect("receiver alive").try_recv()
    }

    pub(crate) fn recv(&mut self) -> Option<PrefetchMsg> {
        self.rx.as_mut().expect("receiver alive").recv()
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping the receiver closes the ring and fires its waker,
        // re-enqueueing the job if it was parked on a full ring; the
        // job observes the cancellation on its next step.
        self.rx.take();
        self.job.wake();
        self.job.wait_done();
    }
}

/// Panic-safe gauge bump for [`active_prefetchers`].
struct ActiveGuard;

impl ActiveGuard {
    fn acquire() -> ActiveGuard {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Submit the prefetch producer for one cursor to the shared pool.
/// `ramp` must already be advanced past every pull the cursor served
/// synchronously.
pub(crate) fn spawn(
    iter: Box<dyn RowIter>,
    chaos: Option<ChaosState>,
    ramp: BlockRamp,
    retry: RetryPolicy,
    stats: Stats,
    depth: usize,
    arity: usize,
) -> PrefetchHandle {
    let (tx, rx) = ring::channel(depth);
    let stop = Arc::new(AtomicBool::new(false));
    // Acquired *before* the job is submitted, so the gauge never dips
    // between spawn and the first step.
    let guard = ActiveGuard::acquire();
    let job = PrefetchJob {
        iter,
        chaos,
        ramp,
        retry,
        stats,
        arity,
        stop: Arc::clone(&stop),
        tx,
        pending: None,
        finished: false,
        scratch: Vec::new(),
        _guard: guard,
    };
    let handle = pool().spawn(Box::new(job));
    // Wire the ring's free-slot/close notification to the job *before*
    // the consumer's first pop, so a park on a full ring is always
    // followed by a wake.
    let waker = handle.clone();
    rx.set_waker(move || waker.wake());
    PrefetchHandle {
        rx: Some(rx),
        stop,
        job: handle,
    }
}

/// The cooperative producer: one cursor's compiled plan plus the state
/// needed to offer blocks without ever blocking a pool worker.
struct PrefetchJob {
    iter: Box<dyn RowIter>,
    chaos: Option<ChaosState>,
    ramp: BlockRamp,
    retry: RetryPolicy,
    stats: Stats,
    arity: usize,
    stop: Arc<AtomicBool>,
    tx: ring::Sender<PrefetchMsg>,
    /// A produced message the ring had no room for yet.
    pending: Option<PrefetchMsg>,
    /// No more production: the plan is exhausted or failed terminally.
    /// Once any `pending` is flushed the job is done (dropping `tx`
    /// closes the channel — clean end-of-stream for the consumer).
    finished: bool,
    /// Row buffer for operators without a native columnar path, reused
    /// across blocks (shipped blocks move their column vectors out).
    scratch: Vec<Row>,
    _guard: ActiveGuard,
}

impl PrefetchJob {
    /// Cancelled before the plan was exhausted.
    fn abort(&self) -> Step {
        self.stats.inc(Counter::PrefetchAborted);
        Step::Done
    }
}

impl PoolJob for PrefetchJob {
    fn step(&mut self) -> Step {
        if self.stop.load(Ordering::SeqCst) && !self.finished {
            return self.abort();
        }
        // Flush a block the ring previously had no room for.
        if let Some(msg) = self.pending.take() {
            match self.tx.try_send(msg) {
                TrySend::Sent => {
                    if self.finished {
                        return Step::Done;
                    }
                    return Step::Again;
                }
                TrySend::Full(msg) => {
                    self.pending = Some(msg);
                    return Step::Park;
                }
                TrySend::Closed(_) => {
                    return if self.finished {
                        Step::Done
                    } else {
                        self.abort()
                    };
                }
            }
        }
        if self.finished {
            return Step::Done;
        }
        // Produce one block. The same retry loop
        // Cursor::next_block_retrying runs, moved in-job: identical
        // admit sequence (a failed pull appends nothing, so the
        // re-issued pull is exact), identical counters.
        let want = self.ramp.next_size();
        let mut cols = ColumnBlock::new(self.arity);
        cols.reserve(want);
        let mut retry_backoff_ms = Vec::new();
        let mut attempt = 0u32;
        let mut spent_backoff = 0u64;
        let (k, arrival) = loop {
            let issue = Instant::now();
            match gated_cpull(
                &mut *self.iter,
                &mut self.chaos,
                &mut cols,
                want,
                &mut self.scratch,
            ) {
                Ok((k, latency_ms)) => break (k, issue + Duration::from_millis(latency_ms)),
                Err(e) => {
                    if e.is_transient() && self.retry.allows(attempt + 1, spent_backoff) {
                        attempt += 1;
                        let backoff = self.retry.backoff_ms(attempt);
                        spent_backoff += backoff;
                        self.stats.inc(Counter::RetriesAttempted);
                        self.stats.add(Counter::RetryBackoffMs, backoff);
                        retry_backoff_ms.push(backoff);
                        if self.stop.load(Ordering::SeqCst) {
                            return self.abort();
                        }
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                    } else {
                        self.stats.inc(Counter::BackendErrors);
                        let error = match e {
                            MixError::Backend(mut be) => {
                                be.retries = attempt;
                                MixError::Backend(be)
                            }
                            other => other,
                        };
                        self.finished = true;
                        self.pending = Some(PrefetchMsg::Failed {
                            error,
                            retry_backoff_ms,
                        });
                        return Step::Again;
                    }
                }
            }
        };
        if k == 0 {
            // Exhausted; the worker drops the job, dropping the sender,
            // which the consumer reads as clean end-of-stream.
            self.finished = true;
            return Step::Done;
        }
        self.pending = Some(PrefetchMsg::Block(FetchedBlock {
            cols,
            retry_backoff_ms,
            arrival,
        }));
        Step::Again
    }
}
