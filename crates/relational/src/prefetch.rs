//! The pipelined prefetcher: a per-cursor background thread.
//!
//! The thread boundary sits exactly at the cursor seam: the thread owns
//! the compiled plan (a `RowIter`, plain `Send` data) and its chaos
//! gate; everything above — wrapper, engine, QDOM — stays the
//! single-threaded `Rc`/`RefCell` world it was. Rows cross over a
//! bounded [`mix_common::ring`] channel whose capacity is the prefetch
//! depth, so readahead is bounded by back-pressure, not discipline.
//!
//! Three invariants make the prefetcher *observationally* identical to
//! the synchronous path (the chaos suite pins this bit-for-bit):
//!
//! 1. **Schedule replay.** The thread pulls with the same
//!    [`BlockRamp`] the consumer registered, so the sequence of admit
//!    sizes — which is all the deterministic fault schedule keys off —
//!    matches the synchronous run exactly.
//! 2. **In-thread retries.** Transient faults are retried here, with
//!    the same [`RetryPolicy`] loop the synchronous cursor runs;
//!    counters go to the shared atomic [`Stats`], and each block
//!    carries its retry history so the consumer can replay
//!    `fault`/`retry` trace events in order. An error that escapes the
//!    budget is shipped over the channel and latches the cursor.
//! 3. **Deferred RTT.** The chaos gate's `latency_ms` models the
//!    backend round trip. A pipelined connection still delivers each
//!    response one RTT after its request went out — so each block
//!    carries an `arrival` deadline (issue time + RTT) the consumer
//!    waits for. Consecutive requests overlap their RTTs (up to the
//!    channel depth), which is precisely the overlap the synchronous
//!    path cannot have: it pays one full RTT per block, serially.
//!
//! Cancellation: dropping the `PrefetchHandle` sets the stop flag,
//! drops the receiver (waking a producer blocked on a full ring) and
//! joins the thread — a dropped cursor or abandoned session never
//! leaks a thread ([`active_prefetchers`] is the test hook) and never
//! reads ahead unboundedly.

use crate::exec::{gated_cpull, RowIter};
use crate::fault::ChaosState;
use crate::table::Row;
use mix_common::ring::{self, Receiver, TryRecv};
use mix_common::{BlockRamp, ColumnBlock, Counter, MixError, RetryPolicy, Stats};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Number of prefetcher threads currently alive, process-wide. The
/// no-leaked-threads guarantee is testable: after dropping a session
/// this returns to its prior value (handle drop joins the thread).
pub fn active_prefetchers() -> usize {
    ACTIVE.load(Ordering::SeqCst)
}

/// One successfully fetched block, shipped columnar: the thread builds
/// the typed vectors, so a columnar consumer adopts them by move and a
/// row consumer pays one materialization — never the reverse.
pub(crate) struct FetchedBlock {
    pub(crate) cols: ColumnBlock,
    /// Backoff milliseconds of each in-thread retry this block needed,
    /// in order (empty for a clean pull) — the consumer replays these
    /// as `fault`/`retry` trace events.
    pub(crate) retry_backoff_ms: Vec<u64>,
    /// Earliest moment the block may be delivered: the issue time of
    /// its (successful) pull plus the modelled backend RTT.
    pub(crate) arrival: Instant,
}

/// What the prefetcher ships: blocks, or the one terminal error.
pub(crate) enum PrefetchMsg {
    Block(FetchedBlock),
    Failed {
        error: MixError,
        retry_backoff_ms: Vec<u64>,
    },
}

/// Consumer-side handle: receiver + stop flag + join handle. Dropping
/// it cancels and joins the thread.
pub(crate) struct PrefetchHandle {
    rx: Option<Receiver<PrefetchMsg>>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl PrefetchHandle {
    pub(crate) fn try_recv(&mut self) -> TryRecv<PrefetchMsg> {
        self.rx.as_mut().expect("receiver alive").try_recv()
    }

    pub(crate) fn recv(&mut self) -> Option<PrefetchMsg> {
        self.rx.as_mut().expect("receiver alive").recv()
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping the receiver wakes a producer blocked on a full
        // ring; it observes the cancellation and winds down.
        self.rx.take();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Panic-safe gauge bump for [`active_prefetchers`].
struct ActiveGuard;

impl ActiveGuard {
    fn acquire() -> ActiveGuard {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Spawn the prefetcher for one cursor. `ramp` must already be
/// advanced past every pull the cursor served synchronously.
pub(crate) fn spawn(
    iter: Box<dyn RowIter>,
    chaos: Option<ChaosState>,
    ramp: BlockRamp,
    retry: RetryPolicy,
    stats: Stats,
    depth: usize,
    arity: usize,
) -> PrefetchHandle {
    let (tx, rx) = ring::channel(depth);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_t = Arc::clone(&stop);
    // Acquired *before* the thread starts, so the gauge never dips
    // between spawn and thread startup.
    let guard = ActiveGuard::acquire();
    let join = std::thread::Builder::new()
        .name("mix-prefetch".into())
        .spawn(move || {
            let _guard = guard;
            run(iter, chaos, ramp, retry, stats, stop_t, tx, arity);
        })
        .expect("spawn prefetcher thread");
    PrefetchHandle {
        rx: Some(rx),
        stop,
        join: Some(join),
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    mut iter: Box<dyn RowIter>,
    mut chaos: Option<ChaosState>,
    mut ramp: BlockRamp,
    retry: RetryPolicy,
    stats: Stats,
    stop: Arc<AtomicBool>,
    tx: ring::Sender<PrefetchMsg>,
    arity: usize,
) {
    let mut aborted = false;
    // Row buffer for operators without a native columnar path, reused
    // across blocks (shipped blocks move their column vectors out).
    let mut scratch: Vec<Row> = Vec::new();
    'produce: loop {
        if stop.load(Ordering::SeqCst) {
            aborted = true;
            break;
        }
        let want = ramp.next_size();
        let mut cols = ColumnBlock::new(arity);
        cols.reserve(want);
        let mut retry_backoff_ms = Vec::new();
        let mut attempt = 0u32;
        let mut spent_backoff = 0u64;
        // The same retry loop Cursor::next_block_retrying runs, moved
        // in-thread: identical admit sequence (a failed pull appends
        // nothing, so the re-issued pull is exact), identical counters.
        let (k, arrival) = loop {
            let issue = Instant::now();
            match gated_cpull(&mut *iter, &mut chaos, &mut cols, want, &mut scratch) {
                Ok((k, latency_ms)) => break (k, issue + Duration::from_millis(latency_ms)),
                Err(e) => {
                    if e.is_transient() && retry.allows(attempt + 1, spent_backoff) {
                        attempt += 1;
                        let backoff = retry.backoff_ms(attempt);
                        spent_backoff += backoff;
                        stats.inc(Counter::RetriesAttempted);
                        stats.add(Counter::RetryBackoffMs, backoff);
                        retry_backoff_ms.push(backoff);
                        if stop.load(Ordering::SeqCst) {
                            aborted = true;
                            break 'produce;
                        }
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_millis(backoff));
                        }
                    } else {
                        stats.inc(Counter::BackendErrors);
                        let error = match e {
                            MixError::Backend(mut be) => {
                                be.retries = attempt;
                                MixError::Backend(be)
                            }
                            other => other,
                        };
                        let _ = tx.send(PrefetchMsg::Failed {
                            error,
                            retry_backoff_ms,
                        });
                        break 'produce;
                    }
                }
            }
        };
        if k == 0 {
            // Exhausted; dropping the sender closes the channel, which
            // the consumer reads as clean end-of-stream.
            break;
        }
        let block = FetchedBlock {
            cols,
            retry_backoff_ms,
            arrival,
        };
        if tx.send(PrefetchMsg::Block(block)).is_err() {
            aborted = true;
            break;
        }
    }
    if aborted {
        stats.inc(Counter::PrefetchAborted);
    }
}
