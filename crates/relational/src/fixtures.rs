//! Shared test and benchmark fixtures.
//!
//! [`sample_db`] is the paper's running-example database (Fig. 2):
//! relations `customer(id, addr, name)` and `orders(orid, cid, value)`.
//! [`gen_db`] scales the same shape to arbitrary sizes for benchmarks,
//! using a tiny deterministic LCG so fixtures never depend on external
//! randomness.

use crate::db::Database;
use crate::schema::{Column, ColumnType, Schema};
use mix_common::Value;

/// The Fig. 2 database: two customers, three orders.
///
/// * `customer`: `XYZ123` (LosAngeles, XYZInc.), `DEF345` (NewYork,
///   DEFCorp.)
/// * `orders`: `28904` (XYZ123, 2400), `87456` (XYZ123, 200000),
///   `99111` (DEF345, 500)
pub fn sample_db() -> Database {
    let mut db = Database::new("db1");
    db.create_table(
        "customer",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("addr", ColumnType::Text),
                Column::new("name", ColumnType::Text),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "orders",
        Schema::new(
            vec![
                Column::new("orid", ColumnType::Int),
                Column::new("cid", ColumnType::Text),
                Column::new("value", ColumnType::Int),
            ],
            &["orid"],
        )
        .unwrap(),
    )
    .unwrap();
    for (id, addr, name) in [
        ("XYZ123", "LosAngeles", "XYZInc."),
        ("DEF345", "NewYork", "DEFCorp."),
    ] {
        db.insert(
            "customer",
            vec![Value::str(id), Value::str(addr), Value::str(name)],
        )
        .unwrap();
    }
    for (orid, cid, value) in [
        (28904, "XYZ123", 2400),
        (87456, "XYZ123", 200000),
        (99111, "DEF345", 500),
    ] {
        db.insert(
            "orders",
            vec![Value::Int(orid), Value::str(cid), Value::Int(value)],
        )
        .unwrap();
    }
    db
}

/// A tiny deterministic linear congruential generator (so fixtures and
/// benches are reproducible without a rand dependency here).
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant for workload generation.
            self.next_u64() % bound
        }
    }
}

/// A scaled customers/orders database: `n_customers` customers, each
/// with `orders_per_customer` orders whose values are uniform in
/// `[0, 100_000)`. Customer ids are `C000000`-style so lexicographic
/// order equals generation order; names spread across the alphabet so
/// prefix predicates (Q2's `name < "B"`) have tunable selectivity.
pub fn gen_db(n_customers: usize, orders_per_customer: usize, seed: u64) -> Database {
    let mut db = sample_template();
    let mut rng = Lcg(seed);
    let mut orid = 1i64;
    for i in 0..n_customers {
        // Intern the id: it recurs as `cid` in every one of the
        // customer's orders, so the cells share one allocation.
        let id = mix_common::intern(&format!("C{i:06}"));
        let name = format!("{}{}Co.", (b'A' + (i % 26) as u8) as char, i);
        let addr = ["LosAngeles", "NewYork", "SanDiego", "Austin"][(rng.below(4)) as usize];
        db.insert(
            "customer",
            vec![Value::Str(id.clone()), Value::str(addr), Value::str(name)],
        )
        .unwrap();
        for _ in 0..orders_per_customer {
            let value = rng.below(100_000) as i64;
            db.insert(
                "orders",
                vec![Value::Int(orid), Value::Str(id.clone()), Value::Int(value)],
            )
            .unwrap();
            orid += 1;
        }
    }
    db
}

fn sample_template() -> Database {
    let mut db = Database::new("db1");
    db.create_table(
        "customer",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("addr", ColumnType::Text),
                Column::new("name", ColumnType::Text),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "orders",
        Schema::new(
            vec![
                Column::new("orid", ColumnType::Int),
                Column::new("cid", ColumnType::Text),
                Column::new("value", ColumnType::Int),
            ],
            &["orid"],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_matches_fig2() {
        let db = sample_db();
        assert_eq!(db.table("customer").unwrap().len(), 2);
        assert_eq!(db.table("orders").unwrap().len(), 3);
        let c = db.table("customer").unwrap();
        assert_eq!(c.schema().key_text(&c.rows()[0]), "XYZ123");
    }

    #[test]
    fn gen_db_scales_and_is_deterministic() {
        let a = gen_db(10, 3, 42);
        let b = gen_db(10, 3, 42);
        assert_eq!(a.table("orders").unwrap().len(), 30);
        assert_eq!(
            a.table("orders").unwrap().rows(),
            b.table("orders").unwrap().rows()
        );
        let c = gen_db(10, 3, 43);
        assert_ne!(
            a.table("orders").unwrap().rows(),
            c.table("orders").unwrap().rows()
        );
    }

    #[test]
    fn lcg_bounds() {
        let mut r = Lcg(7);
        for _ in 0..100 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(Lcg(1).below(0), 0);
    }
}
