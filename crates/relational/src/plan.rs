//! Planner: SQL AST → physical plan.
//!
//! The plan shape is fixed and simple — left-deep joins in FROM-list
//! order with single-table predicates pushed to scans, hash joins on
//! equi-predicates (nested loops otherwise), then sort, project,
//! distinct. MIX is "not concerned with cost-based optimization issues"
//! at the source; what matters is *pipelined* delivery.

use crate::ast::{ColRef, Operand, SelectStmt};
use crate::db::Database;
use crate::table::Table;
use mix_common::{CmpOp, MixError, Name, Result, Value};
use std::sync::Arc;

/// A predicate with column references resolved to offsets in the
/// concatenated row of the subplan it is attached to.
#[derive(Debug, Clone)]
pub struct RPred {
    pub lhs: usize,
    pub op: CmpOp,
    pub rhs: ROperand,
}

/// Resolved right-hand side.
#[derive(Debug, Clone)]
pub enum ROperand {
    Col(usize),
    Const(Value),
}

impl RPred {
    /// Evaluate against a row (incomparable ⇒ false).
    pub fn eval(&self, row: &[Value]) -> bool {
        let r = match &self.rhs {
            ROperand::Col(i) => &row[*i],
            ROperand::Const(v) => v,
        };
        row[self.lhs].satisfies(self.op, r)
    }
}

/// Physical plan nodes.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Base-table scan with pushed-down predicates.
    Scan {
        table: Arc<Table>,
        preds: Vec<RPred>,
        name: Name,
    },
    /// Hash join: stream `left`, build a hash table on `right` keyed by
    /// `right_key` (offset local to the right input), probing with
    /// `left_key` (offset into the left row). `post` filters the joined
    /// row.
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_key: usize,
        right_key: usize,
        post: Vec<RPred>,
    },
    /// Nested-loop (cartesian) join with post-filter.
    NlJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        post: Vec<RPred>,
    },
    /// Blocking sort on the given offsets.
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<usize>,
    },
    /// Column projection (with optional duplicate elimination).
    Project {
        input: Box<PhysPlan>,
        cols: Vec<usize>,
        distinct: bool,
    },
}

impl PhysPlan {
    /// Output arity of this node.
    pub fn arity(&self) -> usize {
        match self {
            PhysPlan::Scan { table, .. } => table.schema().arity(),
            PhysPlan::HashJoin { left, right, .. } | PhysPlan::NlJoin { left, right, .. } => {
                left.arity() + right.arity()
            }
            PhysPlan::Sort { input, .. } => input.arity(),
            PhysPlan::Project { cols, .. } => cols.len(),
        }
    }

    /// One-line-per-node indented plan rendering (for tests and the
    /// experiments harness).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::Scan { name, preds, .. } => {
                let _ = writeln!(out, "{pad}Scan({name}) preds={}", preds.len());
            }
            PhysPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                post,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin(l[{left_key}]=r[{right_key}]) post={}",
                    post.len()
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysPlan::NlJoin { left, right, post } => {
                let _ = writeln!(out, "{pad}NlJoin post={}", post.len());
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort{keys:?}");
                input.explain_into(out, depth + 1);
            }
            PhysPlan::Project {
                input,
                cols,
                distinct,
            } => {
                let _ = writeln!(out, "{pad}Project{cols:?} distinct={distinct}");
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Column-reference resolution context: the FROM bindings in order,
/// each with its schema, plus running offsets.
struct Resolver<'a> {
    bindings: Vec<(Name, &'a crate::schema::Schema, usize)>,
}

impl<'a> Resolver<'a> {
    /// Global offset of `col` within the concatenated row, restricted to
    /// the first `upto` FROM bindings.
    fn resolve(&self, col: &ColRef, upto: usize) -> Result<usize> {
        let mut found = None;
        for (name, schema, offset) in self.bindings.iter().take(upto) {
            let applies = match &col.qualifier {
                Some(q) => q == name,
                None => true,
            };
            if !applies {
                continue;
            }
            if let Some(i) = schema.col_index(col.column.as_str()) {
                if found.is_some() && col.qualifier.is_none() {
                    return Err(MixError::invalid(format!("ambiguous column {col}")));
                }
                found = Some(offset + i);
                if col.qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| MixError::unknown("column", col.to_string()))
    }

    /// Which FROM binding (index) a global offset belongs to.
    fn binding_of(&self, offset: usize) -> usize {
        let mut last = 0;
        for (i, (_, _, off)) in self.bindings.iter().enumerate() {
            if offset >= *off {
                last = i;
            }
        }
        last
    }
}

/// Build a physical plan for `stmt` against `db`.
pub fn build_plan(db: &Database, stmt: &SelectStmt) -> Result<PhysPlan> {
    if stmt.from.is_empty() {
        return Err(MixError::invalid("empty FROM clause"));
    }
    // Resolve FROM bindings and offsets.
    let mut tables = Vec::new();
    for item in &stmt.from {
        tables.push(db.table(item.table.as_str())?);
    }
    let resolver = Resolver {
        bindings: tables
            .iter()
            .zip(&stmt.from)
            .scan(0usize, |off, (t, item)| {
                let entry = (item.binding().clone(), t.schema(), *off);
                *off += t.schema().arity();
                Some(entry)
            })
            .collect(),
    };

    // Classify predicates: (resolved lhs, op, rhs) + highest binding touched.
    struct CPred {
        lhs: usize,
        op: CmpOp,
        rhs: ROperand,
        max_binding: usize,
        used: bool,
    }
    let mut preds = Vec::new();
    for p in &stmt.preds {
        let lhs = resolver.resolve(&p.lhs, stmt.from.len())?;
        let (rhs, max_b) = match &p.rhs {
            Operand::Const(v) => (ROperand::Const(v.clone()), resolver.binding_of(lhs)),
            Operand::Col(c) => {
                let r = resolver.resolve(c, stmt.from.len())?;
                (
                    ROperand::Col(r),
                    resolver.binding_of(lhs).max(resolver.binding_of(r)),
                )
            }
        };
        preds.push(CPred {
            lhs,
            op: p.op,
            rhs,
            max_binding: max_b,
            used: false,
        });
    }

    // Left-deep join build.
    let mut plan: Option<PhysPlan> = None;
    let mut built_arity = 0usize;
    for (bi, t) in tables.iter().enumerate() {
        let t_offset = resolver.bindings[bi].2;
        let t_arity = t.schema().arity();
        // Single-table predicates for this table (local offsets).
        let mut local = Vec::new();
        for p in preds.iter_mut().filter(|p| !p.used && p.max_binding == bi) {
            let lhs_b = resolver.binding_of(p.lhs);
            let self_contained = lhs_b == bi
                && match &p.rhs {
                    ROperand::Const(_) => true,
                    ROperand::Col(r) => resolver.binding_of(*r) == bi,
                };
            if self_contained {
                local.push(RPred {
                    lhs: p.lhs - t_offset,
                    op: p.op,
                    rhs: match &p.rhs {
                        ROperand::Const(v) => ROperand::Const(v.clone()),
                        ROperand::Col(r) => ROperand::Col(*r - t_offset),
                    },
                });
                p.used = true;
            }
        }
        let scan = PhysPlan::Scan {
            table: Arc::clone(t),
            preds: local,
            name: stmt.from[bi].binding().clone(),
        };
        plan = Some(match plan {
            None => scan,
            Some(left) => {
                // Find one equi-predicate linking left part ↔ this table.
                let mut join_key = None;
                for p in preds.iter_mut().filter(|p| !p.used && p.max_binding == bi) {
                    if p.op != CmpOp::Eq {
                        continue;
                    }
                    if let ROperand::Col(r) = p.rhs {
                        let (lb, rb) = (resolver.binding_of(p.lhs), resolver.binding_of(r));
                        let (lk, rk) = if lb < bi && rb == bi {
                            (p.lhs, r - t_offset)
                        } else if rb < bi && lb == bi {
                            (r, p.lhs - t_offset)
                        } else {
                            continue;
                        };
                        p.used = true;
                        join_key = Some((lk, rk));
                        break;
                    }
                }
                // Remaining predicates now answerable become post-filters.
                let mut post = Vec::new();
                for p in preds.iter_mut().filter(|p| !p.used && p.max_binding == bi) {
                    post.push(RPred {
                        lhs: p.lhs,
                        op: p.op,
                        rhs: p.rhs.clone(),
                    });
                    p.used = true;
                }
                match join_key {
                    Some((lk, rk)) => PhysPlan::HashJoin {
                        left: Box::new(left),
                        right: Box::new(scan),
                        left_key: lk,
                        right_key: rk,
                        post,
                    },
                    None => PhysPlan::NlJoin {
                        left: Box::new(left),
                        right: Box::new(scan),
                        post,
                    },
                }
            }
        });
        built_arity = t_offset + t_arity;
    }
    let mut plan = plan.expect("non-empty FROM");
    debug_assert_eq!(plan.arity(), built_arity);

    // ORDER BY (on the full concatenated row, before projection).
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|c| resolver.resolve(c, stmt.from.len()))
            .collect::<Result<Vec<_>>>()?;
        plan = PhysPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    // Projection (+ DISTINCT).
    let cols = if stmt.items.is_empty() {
        (0..plan.arity()).collect()
    } else {
        stmt.items
            .iter()
            .map(|it| resolver.resolve(&it.col, stmt.from.len()))
            .collect::<Result<Vec<_>>>()?
    };
    plan = PhysPlan::Project {
        input: Box::new(plan),
        cols,
        distinct: stmt.distinct,
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_db;
    use crate::parser::parse_sql;

    #[test]
    fn single_table_preds_pushed_to_scan() {
        let db = sample_db();
        let stmt = parse_sql("SELECT * FROM orders WHERE value > 1000").unwrap();
        let plan = build_plan(&db, &stmt).unwrap();
        let text = plan.explain();
        assert!(text.contains("Scan(orders) preds=1"), "{text}");
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let db = sample_db();
        let stmt =
            parse_sql("SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid").unwrap();
        let plan = build_plan(&db, &stmt).unwrap();
        assert!(plan.explain().contains("HashJoin"), "{}", plan.explain());
    }

    #[test]
    fn non_equi_join_is_nested_loop() {
        let db = sample_db();
        let stmt =
            parse_sql("SELECT c.id, o.orid FROM customer c, orders o WHERE c.id < o.cid").unwrap();
        let plan = build_plan(&db, &stmt).unwrap();
        let text = plan.explain();
        assert!(text.contains("NlJoin post=1"), "{text}");
    }

    #[test]
    fn unknown_names_error() {
        let db = sample_db();
        assert!(build_plan(&db, &parse_sql("SELECT * FROM nope").unwrap()).is_err());
        assert!(build_plan(&db, &parse_sql("SELECT nope FROM customer").unwrap()).is_err());
        assert!(build_plan(&db, &parse_sql("SELECT x.id FROM customer c").unwrap()).is_err());
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let db = sample_db();
        // `id` exists in customer; joining customer twice makes it ambiguous.
        let stmt = parse_sql("SELECT id FROM customer a, customer b").unwrap();
        assert!(build_plan(&db, &stmt).is_err());
    }
}
