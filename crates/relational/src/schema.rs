//! Table schemas.

use mix_common::{MixError, Name, Result, Value};
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Text,
    Bool,
}

impl ColumnType {
    /// Does a value inhabit this type? `Null` inhabits every type.
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Text, Value::Str(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: Name,
    pub ty: ColumnType,
}

impl Column {
    /// Build a column.
    pub fn new(name: impl Into<Name>, ty: ColumnType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns plus the primary-key column positions.
///
/// The key matters to the mediator: the relational wrapper "assigns the
/// tuple keys (eg, XYZ123) to be the oid's of the corresponding 'tuple'
/// objects".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    key: Vec<usize>,
}

impl Schema {
    /// Build a schema; `key` names the primary-key columns (must be a
    /// non-empty subset of `columns`).
    pub fn new(columns: Vec<Column>, key: &[&str]) -> Result<Schema> {
        if columns.is_empty() {
            return Err(MixError::invalid("schema needs at least one column"));
        }
        let mut key_idx = Vec::with_capacity(key.len());
        for k in key {
            let pos = columns
                .iter()
                .position(|c| c.name.as_str() == *k)
                .ok_or_else(|| MixError::unknown("key column", *k))?;
            key_idx.push(pos);
        }
        if key_idx.is_empty() {
            return Err(MixError::invalid("schema needs a primary key"));
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != columns.len() {
            return Err(MixError::invalid("duplicate column name"));
        }
        Ok(Schema {
            columns,
            key: key_idx,
        })
    }

    /// The columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Primary-key column positions.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Position of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.as_str() == name)
    }

    /// Render a row's key as the wrapper's oid text, e.g. `XYZ123` or
    /// `12|west` for composite keys.
    pub fn key_text(&self, row: &[Value]) -> String {
        let mut out = String::new();
        for (i, &k) in self.key.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            out.push_str(&row[k].to_string());
        }
        out
    }

    /// Check a row against the schema (arity + types).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(MixError::invalid(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !c.ty.admits(v) {
                return Err(MixError::invalid(format!(
                    "value {v} does not fit column {} : {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Schema {
        Schema::new(
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("name", ColumnType::Text),
                Column::new("addr", ColumnType::Text),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_key() {
        let s = customers();
        assert_eq!(s.col_index("name"), Some(1));
        assert_eq!(s.col_index("nope"), None);
        assert_eq!(s.key(), &[0]);
        let row = vec![
            Value::str("XYZ123"),
            Value::str("XYZInc."),
            Value::str("LA"),
        ];
        assert_eq!(s.key_text(&row), "XYZ123");
    }

    #[test]
    fn composite_key_text() {
        let s = Schema::new(
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
            ],
            &["a", "b"],
        )
        .unwrap();
        assert_eq!(s.key_text(&[Value::Int(12), Value::str("west")]), "12|west");
    }

    #[test]
    fn row_checking() {
        let s = customers();
        assert!(s
            .check_row(&[Value::str("a"), Value::str("b"), Value::str("c")])
            .is_ok());
        assert!(s
            .check_row(&[Value::Int(1), Value::str("b"), Value::str("c")])
            .is_err());
        assert!(s.check_row(&[Value::str("a")]).is_err());
        // NULL fits anywhere
        assert!(s
            .check_row(&[Value::str("a"), Value::Null, Value::Null])
            .is_ok());
    }

    #[test]
    fn schema_validation() {
        assert!(Schema::new(vec![], &[]).is_err());
        assert!(Schema::new(vec![Column::new("a", ColumnType::Int)], &["b"]).is_err());
        assert!(Schema::new(vec![Column::new("a", ColumnType::Int)], &[]).is_err());
        assert!(Schema::new(
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("a", ColumnType::Int)
            ],
            &["a"]
        )
        .is_err());
        // int admits into float column
        let s = Schema::new(vec![Column::new("x", ColumnType::Float)], &["x"]).unwrap();
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }
}
