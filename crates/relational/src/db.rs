//! The database: a named catalog of tables plus the query entry point.

use crate::ast::SelectStmt;
use crate::exec::Cursor;
use crate::fault::{ChaosState, FaultPolicy};
use crate::parser::parse_sql;
use crate::plan::build_plan;
use crate::schema::Schema;
use crate::table::{Row, Table};
use mix_common::{Counter, MixError, Name, Result, Stats};
use mix_obs::TracerHandle;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An in-memory relational database acting as one MIX source server.
#[derive(Debug, Clone)]
pub struct Database {
    name: Name,
    tables: BTreeMap<Name, Arc<Table>>,
    stats: Stats,
    /// Shared across clones (like `stats`), so a session can point an
    /// already-wrapped database at its tracer.
    tracer: Arc<Mutex<TracerHandle>>,
    /// Fault-injection policy for the chaos backend; shared across
    /// clones so tests can flip faults on a database the mediator
    /// already holds.
    fault: Arc<Mutex<Option<FaultPolicy>>>,
    /// Modelled backend RTT in milliseconds, resolved per statement at
    /// execute time (see [`Database::set_latency_ms`]); overrides the
    /// fault policy's `latency_ms` and applies even with no faults
    /// installed. Shared across clones like `fault`.
    latency_ms: Arc<Mutex<Option<u64>>>,
    /// Statement sequence number — salts the per-statement fault RNG so
    /// each statement gets an independent, reproducible schedule.
    stmt_seq: Arc<AtomicU64>,
    /// Process-unique instance id, copied by `Clone` (clones share
    /// identity, like `stats`). Distinguishes two databases that happen
    /// to share a server name — e.g. two mediators over different data
    /// must not share cached decontextualized plans.
    instance: u64,
}

/// Source of process-unique database instance ids.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

impl Database {
    /// An empty database named `name` (the mediator's "server name" —
    /// the `s` parameter of the `rQ` operator).
    pub fn new(name: impl Into<Name>) -> Database {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
            stats: Stats::new(),
            tracer: Arc::new(Mutex::new(TracerHandle::null())),
            fault: Arc::new(Mutex::new(None)),
            latency_ms: Arc::new(Mutex::new(None)),
            stmt_seq: Arc::new(AtomicU64::new(0)),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique instance id — stable across clones, distinct
    /// across independently constructed databases. Feeds the plan-cache
    /// backend fingerprint.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// Point this database's counters at `stats` (used by the sharded
    /// backend so every shard accounts into one aggregate).
    pub(crate) fn set_stats(&mut self, stats: Stats) {
        self.stats = stats;
    }

    /// Send this source's SQL/row events to `tracer`. Affects every
    /// clone of this database (they share the handle, like `stats`).
    pub fn set_tracer(&self, tracer: TracerHandle) {
        *self.tracer.lock().unwrap() = tracer;
    }

    /// The currently installed tracer (the sharded backend hands it to
    /// its merge cursor so retry/fault events keep tracing).
    pub(crate) fn tracer(&self) -> TracerHandle {
        self.tracer.lock().unwrap().clone()
    }

    /// Install (or clear, with `None`) a fault-injection policy. Every
    /// statement executed afterwards — on any clone of this database —
    /// runs behind a chaos wrapper that injects the policy's faults.
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        *self.fault.lock().unwrap() = policy.filter(|p| p.active());
    }

    /// The currently installed fault policy, if any.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        *self.fault.lock().unwrap()
    }

    /// Model this backend's round-trip time: every block pull of a
    /// statement executed *after* this call costs `ms` milliseconds of
    /// wall clock (`None` clears it). Resolved per statement at
    /// [`Database::execute`] time — change it between statements to
    /// give each its own RTT — and independent of fault injection, so a
    /// benchmark can sweep 0/1/5 ms without touching the fault
    /// schedule. The synchronous cursor path pays the RTT inline per
    /// pull (an unpipelined connection); the pipelined prefetcher
    /// overlaps consecutive RTTs (see [`crate::fault`]).
    pub fn set_latency_ms(&self, ms: Option<u64>) {
        *self.latency_ms.lock().unwrap() = ms.filter(|&ms| ms > 0);
    }

    /// The per-statement RTT override, if any.
    pub fn latency_ms(&self) -> Option<u64> {
        *self.latency_ms.lock().unwrap()
    }

    /// The server name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The shared per-source counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: impl Into<Name>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(MixError::invalid(format!("table {name} already exists")));
        }
        self.tables.insert(name, Arc::new(Table::new(schema)));
        Ok(())
    }

    /// Insert one row.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Arc::make_mut(t).insert(row)
    }

    /// Insert many rows.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, table: &str, rows: I) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Arc::make_mut(t).insert_all(rows)
    }

    /// Sort a table by its primary key (deterministic wrapper exports).
    pub fn sort_table_by_key(&mut self, table: &str) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Arc::make_mut(t).sort_by_key();
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| MixError::unknown("table", name))
    }

    /// Table names in the catalog (sorted).
    pub fn table_names(&self) -> Vec<Name> {
        self.tables.keys().cloned().collect()
    }

    /// Execute a parsed statement, returning a pipelined [`Cursor`].
    ///
    /// Each call counts as one SQL query against this source.
    pub fn execute(&self, stmt: &SelectStmt) -> Result<Cursor> {
        let plan = build_plan(self, stmt)?;
        self.stats.inc(Counter::SqlQueries);
        let tracer = self.tracer.lock().unwrap().clone();
        if tracer.enabled() {
            tracer.event(
                "sql",
                &[
                    ("server", self.name.to_string()),
                    ("stmt", stmt.to_string()),
                ],
            );
        }
        // The chaos gate carries both faults and the modelled RTT; a
        // latency override alone still routes the statement through it
        // (with an otherwise-empty fault schedule).
        let fault = *self.fault.lock().unwrap();
        let latency = *self.latency_ms.lock().unwrap();
        let chaos = match (fault, latency) {
            (None, None) => None,
            (policy, latency) => {
                let mut policy = policy.unwrap_or_default();
                if let Some(ms) = latency {
                    policy.latency_ms = ms;
                }
                let seq = self.stmt_seq.fetch_add(1, Ordering::Relaxed);
                Some(ChaosState::new(
                    policy,
                    self.name.clone(),
                    seq,
                    self.stats.clone(),
                ))
            }
        };
        Ok(Cursor::new(&plan, self.stats.clone(), tracer, chaos))
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<Cursor> {
        self.execute(&parse_sql(sql)?)
    }
}

#[cfg(test)]
mod tests {
    use crate::fixtures::sample_db;
    use mix_common::{Counter, Value};

    #[test]
    fn catalog_operations() {
        let db = sample_db();
        assert_eq!(db.name().as_str(), "db1");
        let names: Vec<String> = db.table_names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["customer", "orders"]);
        assert!(db.table("customer").is_ok());
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_db();
        let schema = db.table("customer").unwrap().schema().clone();
        assert!(db.create_table("customer", schema).is_err());
    }

    #[test]
    fn query_counts_in_stats() {
        let db = sample_db();
        db.stats().reset();
        let _ = db
            .execute_sql("SELECT * FROM customer")
            .unwrap()
            .collect_all()
            .unwrap();
        let _ = db
            .execute_sql("SELECT * FROM orders")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(db.stats().get(Counter::SqlQueries), 2);
        assert_eq!(db.stats().get(Counter::TuplesShipped), 2 + 3);
    }

    #[test]
    fn insert_after_share_uses_cow() {
        let mut db = sample_db();
        let before = db.table("orders").unwrap(); // hold an Rc
        db.insert(
            "orders",
            vec![Value::Int(5), Value::str("DEF345"), Value::Int(7)],
        )
        .unwrap();
        assert_eq!(before.len(), 3); // old snapshot unchanged
        assert_eq!(db.table("orders").unwrap().len(), 4);
    }
}
