//! The database: a named catalog of tables plus the query entry point.

use crate::ast::SelectStmt;
use crate::exec::Cursor;
use crate::fault::{ChaosState, FaultPolicy};
use crate::parser::parse_sql;
use crate::plan::build_plan;
use crate::schema::Schema;
use crate::table::{Row, Table};
use mix_common::{Counter, MixError, Name, Result, Stats};
use mix_obs::TracerHandle;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// An in-memory relational database acting as one MIX source server.
#[derive(Debug, Clone)]
pub struct Database {
    name: Name,
    tables: BTreeMap<Name, Rc<Table>>,
    stats: Stats,
    /// Shared across clones (like `stats`), so a session can point an
    /// already-wrapped database at its tracer.
    tracer: Rc<RefCell<TracerHandle>>,
    /// Fault-injection policy for the chaos backend; shared across
    /// clones so tests can flip faults on a database the mediator
    /// already holds.
    fault: Rc<Cell<Option<FaultPolicy>>>,
    /// Statement sequence number — salts the per-statement fault RNG so
    /// each statement gets an independent, reproducible schedule.
    stmt_seq: Rc<Cell<u64>>,
}

impl Database {
    /// An empty database named `name` (the mediator's "server name" —
    /// the `s` parameter of the `rQ` operator).
    pub fn new(name: impl Into<Name>) -> Database {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
            stats: Stats::new(),
            tracer: Rc::new(RefCell::new(TracerHandle::null())),
            fault: Rc::new(Cell::new(None)),
            stmt_seq: Rc::new(Cell::new(0)),
        }
    }

    /// Send this source's SQL/row events to `tracer`. Affects every
    /// clone of this database (they share the handle, like `stats`).
    pub fn set_tracer(&self, tracer: TracerHandle) {
        *self.tracer.borrow_mut() = tracer;
    }

    /// Install (or clear, with `None`) a fault-injection policy. Every
    /// statement executed afterwards — on any clone of this database —
    /// runs behind a chaos wrapper that injects the policy's faults.
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        self.fault.set(policy.filter(|p| p.active()));
    }

    /// The currently installed fault policy, if any.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.fault.get()
    }

    /// The server name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The shared per-source counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: impl Into<Name>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(MixError::invalid(format!("table {name} already exists")));
        }
        self.tables.insert(name, Rc::new(Table::new(schema)));
        Ok(())
    }

    /// Insert one row.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Rc::make_mut(t).insert(row)
    }

    /// Insert many rows.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, table: &str, rows: I) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Rc::make_mut(t).insert_all(rows)
    }

    /// Sort a table by its primary key (deterministic wrapper exports).
    pub fn sort_table_by_key(&mut self, table: &str) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| MixError::unknown("table", table))?;
        Rc::make_mut(t).sort_by_key();
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Rc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| MixError::unknown("table", name))
    }

    /// Table names in the catalog (sorted).
    pub fn table_names(&self) -> Vec<Name> {
        self.tables.keys().cloned().collect()
    }

    /// Execute a parsed statement, returning a pipelined [`Cursor`].
    ///
    /// Each call counts as one SQL query against this source.
    pub fn execute(&self, stmt: &SelectStmt) -> Result<Cursor> {
        let plan = build_plan(self, stmt)?;
        self.stats.inc(Counter::SqlQueries);
        let tracer = self.tracer.borrow().clone();
        if tracer.enabled() {
            tracer.event(
                "sql",
                &[
                    ("server", self.name.to_string()),
                    ("stmt", stmt.to_string()),
                ],
            );
        }
        let chaos = self.fault.get().map(|policy| {
            let seq = self.stmt_seq.get();
            self.stmt_seq.set(seq + 1);
            ChaosState::new(policy, self.name.clone(), seq, self.stats.clone())
        });
        Ok(Cursor::new(&plan, self.stats.clone(), tracer, chaos))
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<Cursor> {
        self.execute(&parse_sql(sql)?)
    }
}

#[cfg(test)]
mod tests {
    use crate::fixtures::sample_db;
    use mix_common::{Counter, Value};

    #[test]
    fn catalog_operations() {
        let db = sample_db();
        assert_eq!(db.name().as_str(), "db1");
        let names: Vec<String> = db.table_names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["customer", "orders"]);
        assert!(db.table("customer").is_ok());
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_db();
        let schema = db.table("customer").unwrap().schema().clone();
        assert!(db.create_table("customer", schema).is_err());
    }

    #[test]
    fn query_counts_in_stats() {
        let db = sample_db();
        db.stats().reset();
        let _ = db
            .execute_sql("SELECT * FROM customer")
            .unwrap()
            .collect_all()
            .unwrap();
        let _ = db
            .execute_sql("SELECT * FROM orders")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(db.stats().get(Counter::SqlQueries), 2);
        assert_eq!(db.stats().get(Counter::TuplesShipped), 2 + 3);
    }

    #[test]
    fn insert_after_share_uses_cow() {
        let mut db = sample_db();
        let before = db.table("orders").unwrap(); // hold an Rc
        db.insert(
            "orders",
            vec![Value::Int(5), Value::str("DEF345"), Value::Int(7)],
        )
        .unwrap();
        assert_eq!(before.len(), 3); // old snapshot unchanged
        assert_eq!(db.table("orders").unwrap().len(), 4);
    }
}
