//! Sharded multi-backend federation.
//!
//! [`ShardedDatabase`] partitions an existing [`Database`]'s tables
//! across N shard instances by a declared *shard key* per table
//! ([`ShardSpec`]), using either hash or range partitioning
//! ([`ShardScheme`]). At execute time each statement is *routed*:
//!
//! * An equi-conjunct pinning the shard key (`WHERE c.id = 'XYZ123'`,
//!   possibly through a chain of shard-key equalities) sends the
//!   statement to exactly **one** shard — the zero-overhead path.
//! * Otherwise the statement *scatters* to every shard; the shard
//!   statements are widened with key columns so each shard's `ORDER BY`
//!   is a total order, and the mediator gathers them through a k-way
//!   ordered merge (`O(rows)` merge cost, one comparison per delivered
//!   row against ≤ N buffered heads).
//!
//! Equivalence to the unsharded baseline: every mediator-generated SQL
//! statement orders by the key columns of its exported tuple variables,
//! so `ORDER BY` ties are either key-distinct (no tie) or exact
//! duplicate visible rows — appending the remaining key columns only
//! refines *within* ties and cannot reorder distinct visible rows.
//! `DISTINCT` (semijoin) statements are not widened; the merge breaks
//! comparator ties on the full row and drops adjacent duplicates, which
//! is exact because the pushed-down semijoin `ORDER BY` carries the
//! kept table's key (the key determines the row). Statements with *no*
//! `ORDER BY` merge into key order, which matches the baseline only
//! when the unsharded base tables are key-sorted — [`partition`]
//! key-sorts every shard, and the mediator never emits orderless SQL.
//!
//! Multi-table statements scatter only when their FROM entries are
//! *co-partitioned*: connected by shard-key-to-shard-key equi-conjuncts
//! (matching rows then live in the same shard). Anything else — and any
//! statement the router cannot analyze — falls back to `whole`, the
//! retained unsharded original, so the federation layer never changes
//! results, only where they are computed.
//!
//! [`partition`]: ShardedDatabase::partition

use crate::ast::{ColRef, Operand, SelectItem, SelectStmt};
use crate::db::Database;
use crate::exec::Cursor;
use crate::fault::FaultPolicy;
use crate::parser::parse_sql;
use crate::table::Table;
use mix_common::{CmpOp, Counter, MixError, Name, Result, Stats, Value};
use mix_obs::TracerHandle;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Declares the shard column of each table. Every table of a
/// partitioned database must have one (co-located reference tables
/// declare their *foreign* key into the owning table, so referencing
/// rows land in their owner's shard).
#[derive(Debug, Clone, Default)]
pub struct ShardSpec {
    cols: HashMap<Name, Name>,
}

impl ShardSpec {
    /// An empty spec.
    pub fn new() -> ShardSpec {
        ShardSpec::default()
    }

    /// Declare `col` as `table`'s shard column (builder style).
    pub fn with(mut self, table: impl Into<Name>, col: impl Into<Name>) -> ShardSpec {
        self.cols.insert(table.into(), col.into());
        self
    }

    /// The declared shard column of `table`, if any.
    pub fn shard_col(&self, table: &str) -> Option<&Name> {
        self.cols.get(table)
    }
}

/// How shard-key values map to shards.
#[derive(Debug, Clone)]
pub enum ShardScheme {
    /// `shard = stable_hash(value) % shards`. The hash is a fixed
    /// FNV-1a over a canonical byte encoding (see [`stable_value_hash`])
    /// — *not* the std `DefaultHasher` — so layouts are reproducible
    /// across runs and builds.
    Hash {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// Range partitioning by `total_cmp`: shard `i` holds values below
    /// `bounds[i]` (and above `bounds[i-1]`); values ≥ the last bound
    /// go to the final shard. `bounds` must be sorted ascending;
    /// `bounds.len() + 1` shards result.
    Range {
        /// Ascending, exclusive upper bounds of all but the last shard.
        bounds: Vec<Value>,
    },
}

impl ShardScheme {
    /// Number of shards this scheme produces.
    pub fn shard_count(&self) -> usize {
        match self {
            ShardScheme::Hash { shards } => *shards,
            ShardScheme::Range { bounds } => bounds.len() + 1,
        }
    }

    /// The shard a key value belongs to.
    pub fn shard_of(&self, v: &Value) -> usize {
        match self {
            ShardScheme::Hash { shards } => {
                (stable_value_hash(v) % (*shards).max(1) as u64) as usize
            }
            ShardScheme::Range { bounds } => bounds
                .iter()
                .position(|b| v.total_cmp(b).is_lt())
                .unwrap_or(bounds.len()),
        }
    }

    /// Compute range boundaries from the data: the sorted distinct
    /// union of every declared shard column's values, split into
    /// `shards` even runs. Keyed and referencing tables drawing from
    /// the same id domain therefore co-partition under the resulting
    /// scheme. Degenerate domains may yield fewer than `shards` shards.
    pub fn range_from(db: &Database, spec: &ShardSpec, shards: usize) -> Result<ShardScheme> {
        let mut vals: Vec<Value> = Vec::new();
        for t in db.table_names() {
            let Some(col) = spec.shard_col(t.as_str()) else {
                continue;
            };
            let table = db.table(t.as_str())?;
            let ci = table
                .schema()
                .col_index(col.as_str())
                .ok_or_else(|| MixError::unknown("shard column", format!("{t}.{col}")))?;
            vals.extend(table.rows().iter().map(|r| r[ci].clone()));
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup_by(|a, b| a.total_cmp(b).is_eq());
        let mut bounds: Vec<Value> = Vec::new();
        for i in 1..shards.max(1) {
            let pos = vals.len() * i / shards;
            if pos > 0 && pos < vals.len() {
                let b = vals[pos].clone();
                if bounds.last().is_none_or(|l| l.total_cmp(&b).is_lt()) {
                    bounds.push(b);
                }
            }
        }
        Ok(ShardScheme::Range { bounds })
    }
}

/// Stable, process-independent hash of a [`Value`] (FNV-1a over a
/// type-tagged canonical byte encoding). Values that compare equal
/// under [`Value::total_cmp`] across the `Int`/`Float` divide hash
/// equal too (`Int(2)` vs `Float(2.0)`), so a predicate constant of
/// either type routes to the shard holding the data.
pub fn stable_value_hash(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    fn fnv(h: u64, bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
    }
    match v {
        Value::Null => fnv(OFFSET, &[0]),
        Value::Bool(b) => fnv(OFFSET, &[1, u8::from(*b)]),
        Value::Int(i) => fnv(fnv(OFFSET, &[2]), &i.to_le_bytes()),
        Value::Float(f) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                return stable_value_hash(&Value::Int(*f as i64));
            }
            fnv(fnv(OFFSET, &[3]), &f.to_bits().to_le_bytes())
        }
        Value::Str(s) => fnv(fnv(OFFSET, &[4]), s.as_bytes()),
    }
}

/// Where the router decided a statement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Pinned to exactly one shard.
    One(usize),
    /// Every shard, gathered through the ordered merge.
    Scatter,
    /// The retained unsharded original (non-co-partitioned joins,
    /// unanalyzable statements, error paths).
    Whole,
}

/// A sharded relational source: N shard [`Database`]s behind one
/// server name, sharing one aggregate [`Stats`], plus the retained
/// unsharded original as a correctness fallback.
///
/// Everything is immutable after [`ShardedDatabase::partition`]
/// (per-shard knobs like fault policies live inside each
/// [`Database`]'s own shared state), so the whole federation sits
/// behind one `Arc` and clones — catalog registration, session
/// snapshots — are O(1) regardless of shard count.
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    inner: Arc<ShardedInner>,
}

#[derive(Debug)]
struct ShardedInner {
    name: Name,
    shards: Vec<Database>,
    spec: ShardSpec,
    scheme: ShardScheme,
    whole: Database,
    stats: Stats,
}

impl ShardedDatabase {
    /// Partition `db` by `spec` under `scheme`. Every table must have a
    /// declared shard column; each shard's tables are key-sorted so
    /// orderless scans merge deterministically (for exact equivalence
    /// with the unsharded original on orderless statements, the
    /// original's tables should be key-sorted too — mediator-generated
    /// SQL always carries an `ORDER BY`, so this only matters for
    /// hand-written scans).
    pub fn partition(
        db: &Database,
        spec: ShardSpec,
        scheme: ShardScheme,
    ) -> Result<ShardedDatabase> {
        let n = scheme.shard_count();
        if n == 0 {
            return Err(MixError::invalid("shard layout needs at least one shard"));
        }
        let stats = Stats::new();
        let mut shards: Vec<Database> = (0..n)
            .map(|_| {
                let mut s = Database::new(db.name().clone());
                s.set_stats(stats.clone());
                s
            })
            .collect();
        for t in db.table_names() {
            let table = db.table(t.as_str())?;
            let col = spec
                .shard_col(t.as_str())
                .ok_or_else(|| MixError::unknown("shard column for table", t.as_str()))?;
            let ci = table
                .schema()
                .col_index(col.as_str())
                .ok_or_else(|| MixError::unknown("shard column", format!("{t}.{col}")))?;
            for s in &mut shards {
                s.create_table(t.clone(), table.schema().clone())?;
            }
            for row in table.rows() {
                let si = scheme.shard_of(&row[ci]);
                shards[si].insert(t.as_str(), row.clone())?;
            }
            for s in &mut shards {
                s.sort_table_by_key(t.as_str())?;
            }
        }
        let mut whole = db.clone();
        whole.set_stats(stats.clone());
        Ok(ShardedDatabase {
            inner: Arc::new(ShardedInner {
                name: db.name().clone(),
                shards,
                spec,
                scheme,
                whole,
                stats,
            }),
        })
    }

    /// The server name (shared by every shard).
    pub fn name(&self) -> &Name {
        &self.inner.name
    }

    /// The aggregate counters every shard (and the fallback) writes to.
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// One shard instance (for per-shard fault injection / latency).
    pub fn shard(&self, i: usize) -> &Database {
        &self.inner.shards[i]
    }

    /// All shard instances.
    pub fn shards(&self) -> &[Database] {
        &self.inner.shards
    }

    /// The shard-column declaration.
    pub fn spec(&self) -> &ShardSpec {
        &self.inner.spec
    }

    /// The partitioning scheme.
    pub fn scheme(&self) -> &ShardScheme {
        &self.inner.scheme
    }

    /// Send every shard's (and the fallback's) events to `tracer`.
    pub fn set_tracer(&self, tracer: TracerHandle) {
        for s in &self.inner.shards {
            s.set_tracer(tracer.clone());
        }
        self.inner.whole.set_tracer(tracer);
    }

    /// Install a fault policy on every shard (use
    /// [`ShardedDatabase::shard`] to fault one shard only).
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        for s in &self.inner.shards {
            s.set_fault_policy(policy);
        }
    }

    /// The fault policy of shard 0 (the whole-backend view).
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.inner.shards[0].fault_policy()
    }

    /// Model every shard's round-trip time (use
    /// [`ShardedDatabase::shard`] for per-shard RTTs).
    pub fn set_latency_ms(&self, ms: Option<u64>) {
        for s in &self.inner.shards {
            s.set_latency_ms(ms);
        }
    }

    /// The modelled RTT of shard 0.
    pub fn latency_ms(&self) -> Option<u64> {
        self.inner.shards[0].latency_ms()
    }

    /// Schema/full-data view of a table (backed by the unsharded
    /// original — wrappers use this for schemas and key columns).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner.whole.table(name)
    }

    /// Table names in the catalog (sorted).
    pub fn table_names(&self) -> Vec<Name> {
        self.inner.whole.table_names()
    }

    /// Identity of this backend for plan-cache keys: the source
    /// database's instance plus the full shard layout, so the same data
    /// under a different layout (or different data under the same
    /// layout) never shares a cached decontextualized plan.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.inner.whole.instance_id().hash(&mut h);
        self.inner.shards.len().hash(&mut h);
        let mut cols: Vec<(&str, &str)> = self
            .inner
            .spec
            .cols
            .iter()
            .map(|(t, c)| (t.as_str(), c.as_str()))
            .collect();
        cols.sort_unstable();
        cols.hash(&mut h);
        match &self.inner.scheme {
            ShardScheme::Hash { shards } => {
                0u8.hash(&mut h);
                shards.hash(&mut h);
            }
            ShardScheme::Range { bounds } => {
                1u8.hash(&mut h);
                for b in bounds {
                    stable_value_hash(b).hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// The EXPLAIN `shards=` attribute for `stmt`: `1/N` when routed,
    /// `N/N` when scattered, `whole` on the fallback path.
    pub fn shards_attr(&self, stmt: &SelectStmt) -> String {
        let n = self.inner.shards.len();
        match self.route(stmt) {
            Route::One(_) => format!("1/{n}"),
            Route::Scatter if self.scatter_plan(stmt).is_some() => format!("{n}/{n}"),
            _ => "whole".to_string(),
        }
    }

    /// Execute a parsed statement: route to one shard, scatter-gather
    /// across all of them, or fall back to the unsharded original.
    pub fn execute(&self, stmt: &SelectStmt) -> Result<Cursor> {
        match self.route(stmt) {
            Route::One(i) => {
                self.inner.stats.inc(Counter::ShardQueriesRouted);
                self.inner.stats.inc(Counter::ShardsTargeted);
                self.inner.shards[i].execute(stmt)
            }
            Route::Whole => self.inner.whole.execute(stmt),
            Route::Scatter => {
                let Some(plan) = self.scatter_plan(stmt) else {
                    return self.inner.whole.execute(stmt);
                };
                self.inner.stats.inc(Counter::ScatterMerges);
                self.inner
                    .stats
                    .add(Counter::ShardsTargeted, self.inner.shards.len() as u64);
                let children = self
                    .inner
                    .shards
                    .iter()
                    .map(|s| s.execute(&plan.stmt))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Cursor::merged(
                    children,
                    plan.keys,
                    plan.strip,
                    plan.dedup,
                    plan.arity,
                    self.inner.stats.clone(),
                    self.inner.shards[0].tracer(),
                ))
            }
        }
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<Cursor> {
        self.execute(&parse_sql(sql)?)
    }

    /// Decide where `stmt` runs. Conservative: anything the analysis
    /// cannot prove shardable routes to [`Route::Whole`].
    fn route(&self, stmt: &SelectStmt) -> Route {
        let Some(b) = Binder::new(&self.inner.whole, stmt) else {
            return Route::Whole;
        };
        let n = stmt.from.len();
        // Shard-column position of every FROM entry.
        let mut shard_ci = Vec::with_capacity(n);
        for (i, item) in stmt.from.iter().enumerate() {
            let Some(ci) = self
                .inner
                .spec
                .shard_col(item.table.as_str())
                .and_then(|c| b.tables[i].schema().col_index(c.as_str()))
            else {
                return Route::Whole;
            };
            shard_ci.push(ci);
        }
        // Union-find over FROM entries, linked by shard-key equality;
        // constant pins on shard keys collected per entry.
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        let mut pins: Vec<Vec<&Value>> = vec![Vec::new(); n];
        for p in &stmt.preds {
            if p.op != CmpOp::Eq {
                continue;
            }
            let Some((le, lc)) = b.resolve(&p.lhs) else {
                continue;
            };
            let l_is_shard = lc == shard_ci[le];
            match &p.rhs {
                Operand::Const(v) => {
                    if l_is_shard {
                        pins[le].push(v);
                    }
                }
                Operand::Col(c) => {
                    let Some((re, rc)) = b.resolve(c) else {
                        continue;
                    };
                    if l_is_shard && rc == shard_ci[re] {
                        let (a, bb) = (find(&mut uf, le), find(&mut uf, re));
                        uf[a] = bb;
                    }
                }
            }
        }
        // Resolve each group's pin; a conflict (two pins forcing
        // different shards through an equality chain) means the result
        // is empty, so any pinned shard answers it correctly.
        let mut group_pin: HashMap<usize, usize> = HashMap::new();
        for (e, entry_pins) in pins.iter().enumerate() {
            let root = find(&mut uf, e);
            for v in entry_pins {
                let s = self.inner.scheme.shard_of(v);
                match group_pin.get(&root) {
                    Some(&prev) if prev != s => return Route::One(prev),
                    _ => {
                        group_pin.insert(root, s);
                    }
                }
            }
        }
        let mut roots: Vec<usize> = (0..n).map(|e| find(&mut uf, e)).collect();
        roots.sort_unstable();
        roots.dedup();
        if roots.len() == 1 {
            match group_pin.get(&roots[0]) {
                Some(&s) => Route::One(s),
                None => Route::Scatter,
            }
        } else {
            // Disconnected FROM entries (a cross product): routable
            // only if every group is pinned to the same shard.
            let pinned: Vec<usize> = roots
                .iter()
                .filter_map(|r| group_pin.get(r).copied())
                .collect();
            if pinned.len() == roots.len() && pinned.windows(2).all(|w| w[0] == w[1]) {
                Route::One(pinned[0])
            } else {
                Route::Whole
            }
        }
    }

    /// Build the per-shard statement and merge recipe for a scatter.
    /// `None` means the statement cannot be merged exactly (e.g. a
    /// `DISTINCT` ordering by an unprojected column) — fall back.
    fn scatter_plan(&self, stmt: &SelectStmt) -> Option<ScatterPlan> {
        let b = Binder::new(&self.inner.whole, stmt)?;
        if stmt.distinct {
            // No widening (extra columns would change DISTINCT); the
            // merge breaks order ties on the full row instead.
            let keys = if stmt.items.is_empty() {
                stmt.order_by
                    .iter()
                    .map(|c| b.resolve(c).map(|rc| b.global(rc)))
                    .collect::<Option<Vec<_>>>()?
            } else {
                let item_offs: Vec<Option<usize>> = stmt
                    .items
                    .iter()
                    .map(|it| b.resolve(&it.col).map(|rc| b.global(rc)))
                    .collect();
                stmt.order_by
                    .iter()
                    .map(|c| {
                        let off = b.resolve(c).map(|rc| b.global(rc))?;
                        item_offs.iter().position(|&o| o == Some(off))
                    })
                    .collect::<Option<Vec<_>>>()?
            };
            let arity = if stmt.items.is_empty() {
                b.total
            } else {
                stmt.items.len()
            };
            return Some(ScatterPlan {
                stmt: stmt.clone(),
                keys,
                strip: 0,
                dedup: true,
                arity,
            });
        }
        // Widen the ORDER BY with every FROM entry's key columns (FROM
        // order, skipping columns already ordered) so the merge order
        // is total over joined rows.
        let mut widened = stmt.clone();
        let mut order_cols: Vec<(ColRef, usize)> = Vec::new();
        for c in &stmt.order_by {
            let off = b.global(b.resolve(c)?);
            order_cols.push((c.clone(), off));
        }
        for (e, item) in stmt.from.iter().enumerate() {
            let schema = b.tables[e].schema();
            for &ki in schema.key() {
                let off = b.offsets[e] + ki;
                if order_cols.iter().any(|&(_, o)| o == off) {
                    continue;
                }
                let col =
                    ColRef::qualified(item.binding().clone(), schema.columns()[ki].name.clone());
                widened.order_by.push(col.clone());
                order_cols.push((col, off));
            }
        }
        let (keys, strip, arity) = if stmt.items.is_empty() {
            (order_cols.iter().map(|&(_, o)| o).collect(), 0, b.total)
        } else {
            let mut item_offs: Vec<usize> = stmt
                .items
                .iter()
                .map(|it| b.resolve(&it.col).map(|rc| b.global(rc)))
                .collect::<Option<_>>()?;
            let mut keys = Vec::with_capacity(order_cols.len());
            let mut strip = 0;
            for (col, off) in &order_cols {
                match item_offs.iter().position(|o| o == off) {
                    Some(p) => keys.push(p),
                    None => {
                        // Project the merge key through the shard
                        // statement; stripped again before delivery.
                        widened.items.push(SelectItem {
                            col: col.clone(),
                            alias: None,
                        });
                        item_offs.push(*off);
                        keys.push(item_offs.len() - 1);
                        strip += 1;
                    }
                }
            }
            (keys, strip, stmt.items.len())
        };
        Some(ScatterPlan {
            stmt: widened,
            keys,
            strip,
            dedup: false,
            arity,
        })
    }
}

/// The per-shard statement plus the merge recipe for one scatter.
struct ScatterPlan {
    stmt: SelectStmt,
    keys: Vec<usize>,
    strip: usize,
    dedup: bool,
    arity: usize,
}

/// FROM-binding resolution over the fallback database's schemas,
/// mirroring the planner's rules (qualifier match, else unique bare
/// column; ambiguity resolves to nothing).
struct Binder {
    tables: Vec<Arc<Table>>,
    offsets: Vec<usize>,
    total: usize,
    bindings: Vec<Name>,
}

impl Binder {
    fn new(db: &Database, stmt: &SelectStmt) -> Option<Binder> {
        if stmt.from.is_empty() {
            return None;
        }
        let mut tables = Vec::with_capacity(stmt.from.len());
        let mut offsets = Vec::with_capacity(stmt.from.len());
        let mut bindings = Vec::with_capacity(stmt.from.len());
        let mut total = 0;
        for item in &stmt.from {
            let t = db.table(item.table.as_str()).ok()?;
            offsets.push(total);
            total += t.schema().arity();
            tables.push(t);
            bindings.push(item.binding().clone());
        }
        Some(Binder {
            tables,
            offsets,
            total,
            bindings,
        })
    }

    /// `(FROM-entry index, local column index)` of `col`.
    fn resolve(&self, col: &ColRef) -> Option<(usize, usize)> {
        let mut found = None;
        for (i, t) in self.tables.iter().enumerate() {
            let applies = match &col.qualifier {
                Some(q) => *q == self.bindings[i],
                None => true,
            };
            if !applies {
                continue;
            }
            if let Some(ci) = t.schema().col_index(col.column.as_str()) {
                if found.is_some() && col.qualifier.is_none() {
                    return None; // ambiguous bare column
                }
                found = Some((i, ci));
                if col.qualifier.is_some() {
                    break;
                }
            }
        }
        found
    }

    /// Global offset in the concatenated row.
    fn global(&self, (e, c): (usize, usize)) -> usize {
        self.offsets[e] + c
    }
}

/// A relational backend as the wrapper sees it: one database, or a
/// sharded federation of them behind the same interface.
#[derive(Debug, Clone)]
pub enum Backend {
    /// A single unsharded database.
    Single(Database),
    /// A sharded federation.
    Sharded(ShardedDatabase),
}

impl From<Database> for Backend {
    fn from(db: Database) -> Backend {
        Backend::Single(db)
    }
}

impl From<ShardedDatabase> for Backend {
    fn from(db: ShardedDatabase) -> Backend {
        Backend::Sharded(db)
    }
}

impl Backend {
    /// The server name.
    pub fn name(&self) -> &Name {
        match self {
            Backend::Single(db) => db.name(),
            Backend::Sharded(db) => db.name(),
        }
    }

    /// The shared per-source counters.
    pub fn stats(&self) -> &Stats {
        match self {
            Backend::Single(db) => db.stats(),
            Backend::Sharded(db) => db.stats(),
        }
    }

    /// Send this source's events to `tracer`.
    pub fn set_tracer(&self, tracer: TracerHandle) {
        match self {
            Backend::Single(db) => db.set_tracer(tracer),
            Backend::Sharded(db) => db.set_tracer(tracer),
        }
    }

    /// Install (or clear) a fault-injection policy.
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        match self {
            Backend::Single(db) => db.set_fault_policy(policy),
            Backend::Sharded(db) => db.set_fault_policy(policy),
        }
    }

    /// The currently installed fault policy, if any.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        match self {
            Backend::Single(db) => db.fault_policy(),
            Backend::Sharded(db) => db.fault_policy(),
        }
    }

    /// Model this backend's round-trip time.
    pub fn set_latency_ms(&self, ms: Option<u64>) {
        match self {
            Backend::Single(db) => db.set_latency_ms(ms),
            Backend::Sharded(db) => db.set_latency_ms(ms),
        }
    }

    /// The per-statement RTT override, if any.
    pub fn latency_ms(&self) -> Option<u64> {
        match self {
            Backend::Single(db) => db.latency_ms(),
            Backend::Sharded(db) => db.latency_ms(),
        }
    }

    /// Look up a table (schema view).
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        match self {
            Backend::Single(db) => db.table(name),
            Backend::Sharded(db) => db.table(name),
        }
    }

    /// Table names in the catalog (sorted).
    pub fn table_names(&self) -> Vec<Name> {
        match self {
            Backend::Single(db) => db.table_names(),
            Backend::Sharded(db) => db.table_names(),
        }
    }

    /// Execute a parsed statement, returning a pipelined [`Cursor`].
    pub fn execute(&self, stmt: &SelectStmt) -> Result<Cursor> {
        match self {
            Backend::Single(db) => db.execute(stmt),
            Backend::Sharded(db) => db.execute(stmt),
        }
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<Cursor> {
        match self {
            Backend::Single(db) => db.execute_sql(sql),
            Backend::Sharded(db) => db.execute_sql(sql),
        }
    }

    /// Backend identity for plan-cache keys (instance id for a single
    /// database; instance + shard layout for a federation).
    pub fn fingerprint(&self) -> u64 {
        match self {
            Backend::Single(db) => {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                db.instance_id().hash(&mut h);
                h.finish()
            }
            Backend::Sharded(db) => db.fingerprint(),
        }
    }

    /// The EXPLAIN `shards=` attribute for `stmt` — `None` for a
    /// single backend, so unsharded plans render unchanged.
    pub fn shards_attr(&self, stmt: &SelectStmt) -> Option<String> {
        match self {
            Backend::Single(_) => None,
            Backend::Sharded(db) => Some(db.shards_attr(stmt)),
        }
    }

    /// The declared shard column of `table` (`None` for a single
    /// backend or an undeclared table) — the rewriter's co-partitioning
    /// guard reads this.
    pub fn shard_col(&self, table: &str) -> Option<&Name> {
        match self {
            Backend::Single(_) => None,
            Backend::Sharded(db) => db.spec().shard_col(table),
        }
    }

    /// The sharded federation behind this backend, if it is one.
    pub fn as_sharded(&self) -> Option<&ShardedDatabase> {
        match self {
            Backend::Single(_) => None,
            Backend::Sharded(db) => Some(db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_db;
    use crate::table::Row;

    fn spec() -> ShardSpec {
        ShardSpec::new()
            .with("customer", "id")
            .with("orders", "cid")
    }

    /// sample_db with key-sorted base tables (orderless-scan
    /// equivalence requires the unsharded original to be key-sorted,
    /// like every shard is).
    fn sorted_sample() -> Database {
        let mut db = sample_db();
        db.sort_table_by_key("customer").unwrap();
        db.sort_table_by_key("orders").unwrap();
        db
    }

    fn run(db: &Database, sql: &str) -> Vec<Row> {
        db.execute_sql(sql).unwrap().collect_all().unwrap()
    }

    fn run_sharded(db: &ShardedDatabase, sql: &str) -> Vec<Row> {
        db.execute_sql(sql).unwrap().collect_all().unwrap()
    }

    const QUERIES: &[&str] = &[
        "SELECT * FROM customer ORDER BY id",
        "SELECT * FROM customer WHERE id = 'XYZ123' ORDER BY id",
        "SELECT c.id, c.name, o.orid, o.value FROM customer c, orders o \
         WHERE c.id = o.cid ORDER BY c.id, o.orid",
        "SELECT c.id, o.orid FROM customer c, orders o \
         WHERE c.id = o.cid AND c.id = 'XYZ123' ORDER BY o.orid",
        "SELECT DISTINCT c.id, c.name FROM orders o, customer c \
         WHERE o.cid = c.id ORDER BY c.id",
        "SELECT o.value FROM orders o ORDER BY o.value",
        "SELECT * FROM orders",
        "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id < o.cid \
         ORDER BY c.id, o.orid",
    ];

    #[test]
    fn hash_and_range_layouts_match_unsharded() {
        let base = sorted_sample();
        for scheme in [
            ShardScheme::Hash { shards: 2 },
            ShardScheme::Hash { shards: 4 },
            ShardScheme::range_from(&base, &spec(), 2).unwrap(),
            ShardScheme::range_from(&base, &spec(), 4).unwrap(),
        ] {
            let sharded = ShardedDatabase::partition(&base, spec(), scheme).unwrap();
            for sql in QUERIES {
                assert_eq!(
                    run(&base, sql),
                    run_sharded(&sharded, sql),
                    "{sql} under {:?}",
                    sharded.scheme()
                );
            }
        }
    }

    #[test]
    fn shard_key_conjunct_routes_to_one_shard() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 4 }).unwrap();
        sharded.stats().reset();
        let rows = run_sharded(
            &sharded,
            "SELECT * FROM customer WHERE id = 'XYZ123' ORDER BY id",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 1);
        assert_eq!(sharded.stats().get(Counter::ShardsTargeted), 1);
        assert_eq!(sharded.stats().get(Counter::ScatterMerges), 0);
        // The equality chain c.id = o.cid propagates the pin.
        sharded.stats().reset();
        let _ = run_sharded(
            &sharded,
            "SELECT c.id, o.orid FROM customer c, orders o \
             WHERE c.id = o.cid AND o.cid = 'DEF345' ORDER BY o.orid",
        );
        assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 1);
        assert_eq!(sharded.stats().get(Counter::ShardsTargeted), 1);
    }

    #[test]
    fn unpinned_statement_scatters_and_merges() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 4 }).unwrap();
        sharded.stats().reset();
        let _ = run_sharded(&sharded, "SELECT * FROM customer ORDER BY id");
        assert_eq!(sharded.stats().get(Counter::ScatterMerges), 1);
        assert_eq!(sharded.stats().get(Counter::ShardsTargeted), 4);
        assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 0);
    }

    #[test]
    fn non_co_partitioned_join_falls_back_to_whole() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 2 }).unwrap();
        let sql = "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id < o.cid \
                   ORDER BY c.id, o.orid";
        assert_eq!(sharded.shards_attr(&parse_sql(sql).unwrap()), "whole");
        sharded.stats().reset();
        assert_eq!(run(&base, sql), run_sharded(&sharded, sql));
        assert_eq!(sharded.stats().get(Counter::ScatterMerges), 0);
        assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 0);
    }

    #[test]
    fn shards_attr_reflects_routing() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 4 }).unwrap();
        let routed = parse_sql("SELECT * FROM customer WHERE id = 'XYZ123'").unwrap();
        let scatter = parse_sql("SELECT * FROM customer ORDER BY id").unwrap();
        assert_eq!(sharded.shards_attr(&routed), "1/4");
        assert_eq!(sharded.shards_attr(&scatter), "4/4");
        let backend = Backend::from(sharded);
        assert_eq!(backend.shards_attr(&routed).as_deref(), Some("1/4"));
        let single = Backend::from(sample_db());
        assert_eq!(single.shards_attr(&routed), None);
    }

    #[test]
    fn conflicting_pins_yield_empty_from_one_shard() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 4 }).unwrap();
        sharded.stats().reset();
        let rows = run_sharded(
            &sharded,
            "SELECT c.id, o.orid FROM customer c, orders o \
             WHERE c.id = o.cid AND c.id = 'XYZ123' AND o.cid = 'DEF345'",
        );
        assert!(rows.is_empty());
        assert_eq!(sharded.stats().get(Counter::ScatterMerges), 0);
    }

    #[test]
    fn stable_hash_is_canonical_across_numeric_types() {
        assert_eq!(
            stable_value_hash(&Value::Int(2)),
            stable_value_hash(&Value::Float(2.0))
        );
        assert_ne!(
            stable_value_hash(&Value::Int(2)),
            stable_value_hash(&Value::Float(2.5))
        );
        assert_ne!(
            stable_value_hash(&Value::str("2")),
            stable_value_hash(&Value::Int(2))
        );
    }

    #[test]
    fn fingerprint_distinguishes_layouts_and_data() {
        let base = sorted_sample();
        let two =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 2 }).unwrap();
        let four =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 4 }).unwrap();
        assert_ne!(two.fingerprint(), four.fingerprint());
        // Same layout over the same source database: shareable.
        let again =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 2 }).unwrap();
        assert_eq!(two.fingerprint(), again.fingerprint());
        // Different source data, same layout: distinct.
        let other = sorted_sample();
        let other2 =
            ShardedDatabase::partition(&other, spec(), ShardScheme::Hash { shards: 2 }).unwrap();
        assert_ne!(two.fingerprint(), other2.fingerprint());
        // Single backends: one per instance, stable across clones.
        let db = sample_db();
        let b1 = Backend::from(db.clone());
        let b2 = Backend::from(db);
        assert_eq!(b1.fingerprint(), b2.fingerprint());
        assert_ne!(b1.fingerprint(), Backend::from(sample_db()).fingerprint());
    }

    #[test]
    fn partial_pulls_stream_the_merge() {
        let base = sorted_sample();
        let sharded =
            ShardedDatabase::partition(&base, spec(), ShardScheme::Hash { shards: 2 }).unwrap();
        let sql = "SELECT c.id, o.orid FROM customer c, orders o \
                   WHERE c.id = o.cid ORDER BY c.id, o.orid";
        let all = run(&base, sql);
        let mut cur = sharded.execute_sql(sql).unwrap();
        let mut rows = Vec::new();
        // One row at a time through next().
        while let Some(r) = cur.next().unwrap() {
            rows.push(r);
        }
        assert_eq!(rows, all);
        // Small blocks.
        let mut cur = sharded.execute_sql(sql).unwrap();
        let mut rows = Vec::new();
        while cur.next_block(&mut rows, 2).unwrap() > 0 {}
        assert_eq!(rows, all);
        assert_eq!(cur.delivered(), all.len() as u64);
    }

    #[test]
    fn missing_shard_column_is_rejected() {
        let base = sorted_sample();
        let bad = ShardSpec::new().with("customer", "id"); // orders undeclared
        assert!(ShardedDatabase::partition(&base, bad, ShardScheme::Hash { shards: 2 }).is_err());
        let wrong = ShardSpec::new()
            .with("customer", "nope")
            .with("orders", "cid");
        assert!(ShardedDatabase::partition(&base, wrong, ShardScheme::Hash { shards: 2 }).is_err());
    }
}
