//! The SQL subset's abstract syntax.
//!
//! Covers exactly what the MIX rewriter generates (Fig. 22) and what a
//! relational source must accept: conjunctive select-project-join
//! queries with optional `DISTINCT` and `ORDER BY`:
//!
//! ```sql
//! SELECT c1.id, c1.name, o1.orid, o1.value
//! FROM customer c1, orders o1
//! WHERE c1.id = o1.cid AND o1.value > 20000
//! ORDER BY c1.id, o1.orid
//! ```

use mix_common::{CmpOp, Name, Value};
use std::fmt;

/// A possibly-qualified column reference: `c1.id` or `id`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table alias or table name; `None` when unqualified.
    pub qualifier: Option<Name>,
    /// Column name.
    pub column: Name,
}

impl ColRef {
    /// A qualified reference `q.c`.
    pub fn qualified(q: impl Into<Name>, c: impl Into<Name>) -> ColRef {
        ColRef {
            qualifier: Some(q.into()),
            column: c.into(),
        }
    }

    /// An unqualified reference `c`.
    pub fn bare(c: impl Into<Name>) -> ColRef {
        ColRef {
            qualifier: None,
            column: c.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A projected item (column, optionally `AS alias`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    pub col: ColRef,
    pub alias: Option<Name>,
}

/// A FROM-list entry: table name plus optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    pub table: Name,
    pub alias: Option<Name>,
}

impl FromItem {
    /// The name this item binds in the query (alias, else table name).
    pub fn binding(&self) -> &Name {
        self.alias.as_ref().unwrap_or(&self.table)
    }
}

/// The right-hand side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Col(ColRef),
    Const(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Const(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub lhs: ColRef,
    pub op: CmpOp,
    pub rhs: Operand,
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A SELECT statement in the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    /// Empty means `SELECT *`.
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    /// Conjunctive WHERE clause.
    pub preds: Vec<Pred>,
    pub order_by: Vec<ColRef>,
}

impl SelectStmt {
    /// A `SELECT * FROM table` scan.
    pub fn scan(table: impl Into<Name>) -> SelectStmt {
        SelectStmt {
            distinct: false,
            items: vec![],
            from: vec![FromItem {
                table: table.into(),
                alias: None,
            }],
            preds: vec![],
            order_by: vec![],
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.items.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, it) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", it.col)?;
                if let Some(a) = &it.alias {
                    write!(f, " AS {a}")?;
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if !self.preds.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.preds.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, c) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_fig22_style() {
        let q = SelectStmt {
            distinct: false,
            items: vec![
                SelectItem {
                    col: ColRef::qualified("c1", "id"),
                    alias: None,
                },
                SelectItem {
                    col: ColRef::qualified("o1", "value"),
                    alias: None,
                },
            ],
            from: vec![
                FromItem {
                    table: Name::new("customer"),
                    alias: Some(Name::new("c1")),
                },
                FromItem {
                    table: Name::new("orders"),
                    alias: Some(Name::new("o1")),
                },
            ],
            preds: vec![
                Pred {
                    lhs: ColRef::qualified("c1", "id"),
                    op: CmpOp::Eq,
                    rhs: Operand::Col(ColRef::qualified("o1", "cid")),
                },
                Pred {
                    lhs: ColRef::qualified("o1", "value"),
                    op: CmpOp::Gt,
                    rhs: Operand::Const(Value::Int(20000)),
                },
            ],
            order_by: vec![
                ColRef::qualified("c1", "id"),
                ColRef::qualified("o1", "orid"),
            ],
        };
        assert_eq!(
            q.to_string(),
            "SELECT c1.id, o1.value FROM customer c1, orders o1 \
             WHERE c1.id = o1.cid AND o1.value > 20000 ORDER BY c1.id, o1.orid"
        );
    }

    #[test]
    fn string_constants_are_quoted() {
        let p = Pred {
            lhs: ColRef::bare("name"),
            op: CmpOp::Lt,
            rhs: Operand::Const(Value::str("B's")),
        };
        assert_eq!(p.to_string(), "name < 'B''s'");
    }

    #[test]
    fn scan_displays_star() {
        assert_eq!(
            SelectStmt::scan("customer").to_string(),
            "SELECT * FROM customer"
        );
    }
}
