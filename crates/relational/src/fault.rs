//! Deterministic fault injection — the chaos backend.
//!
//! A [`FaultPolicy`] installed on a [`crate::Database`] wraps every
//! statement's root iterator in a chaos wrapper that injects failures
//! and latency *between* the executor and the cursor:
//!
//! * **transient faults** — scheduled from a seeded RNG rolled on each
//!   successful pull, and injected *before* any row of the faulted
//!   block is produced. A failed pull therefore loses nothing: the
//!   retried pull returns exactly the rows the failed one would have,
//!   which is what makes "retries succeed ⇒ bit-for-bit identical
//!   results" provable rather than probabilistic. Each fault fails
//!   `transient_burst` consecutive pulls and then the data flows
//!   again, so a retry budget `≥ burst` always gets through — even at
//!   rate 1000, where every successful pull schedules the next burst.
//! * **permanent faults** — the statement fails every pull once
//!   `fail_after_rows` rows have been delivered. Rows before the
//!   horizon ship normally (the graceful-degradation test bed: a
//!   navigated prefix stays valid, everything past row *k* errors).
//! * **latency** — an optional per-block-pull delay modelling the
//!   backend's round-trip time (RTT): the wall-clock cost of shipping
//!   one block request to the source and its rows back. `ChaosState`
//!   does not sleep itself — `ChaosState::admit` *returns* the
//!   latency and the caller decides how to pay it. The synchronous
//!   cursor path sleeps inline (an unpipelined connection: each request
//!   waits for the previous response), while the pipelined prefetcher
//!   keeps several requests in flight and defers each block's delivery
//!   to its own arrival time, so consecutive RTTs overlap. Latency is
//!   configured per *statement*: [`crate::Database::set_latency_ms`]
//!   applies to statements executed afterwards, independent of any
//!   fault schedule, which is what lets a bench sweep 0/1/5 ms RTT
//!   cleanly.
//!
//! Determinism: the per-statement RNG is seeded with
//! `seed ^ statement-sequence-number`, so a fixed seed reproduces the
//! exact fault schedule regardless of wall clock, and injection
//! consumes no randomness that could perturb row contents.

use mix_common::{Counter, FaultKind, MixError, Name, Result, Stats};

/// What the chaos backend injects, and how often. The default injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPolicy {
    /// Seed for the fault schedule (same seed ⇒ same schedule).
    pub seed: u64,
    /// Probability, in permille (0–1000), that a block pull hits a
    /// transient fault. 100 = the 10%-per-block chaos-sweep rate.
    pub transient_per_mille: u16,
    /// How many consecutive pulls each transient fault fails before the
    /// data flows again. Retry budgets `≥` this always succeed.
    pub transient_burst: u32,
    /// Fail the statement permanently once this many rows have been
    /// delivered through it.
    pub fail_after_rows: Option<u64>,
    /// Modelled backend round-trip time per successful block pull, in
    /// milliseconds (see the module docs: returned from
    /// `ChaosState::admit`, paid by the caller).
    pub latency_ms: u64,
}

impl FaultPolicy {
    /// Transient faults at `per_mille`/1000 per block, burst 1.
    pub fn transient(seed: u64, per_mille: u16) -> FaultPolicy {
        FaultPolicy {
            seed,
            transient_per_mille: per_mille,
            transient_burst: 1,
            ..FaultPolicy::default()
        }
    }

    /// Fail every pull with this many consecutive transient faults
    /// (`burst` larger than the retry budget exhausts it).
    pub fn with_burst(mut self, burst: u32) -> FaultPolicy {
        self.transient_burst = burst;
        self
    }

    /// Permanent failure after `rows` delivered rows.
    pub fn fail_after(seed: u64, rows: u64) -> FaultPolicy {
        FaultPolicy {
            seed,
            fail_after_rows: Some(rows),
            ..FaultPolicy::default()
        }
    }

    /// Add per-block latency.
    pub fn with_latency_ms(mut self, ms: u64) -> FaultPolicy {
        self.latency_ms = ms;
        self
    }

    /// Does this policy inject anything at all?
    pub fn active(&self) -> bool {
        *self != FaultPolicy::default() || self.seed != 0
    }
}

/// SplitMix64 — tiny, seedable, and good enough for fault schedules.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..1000`.
    fn per_mille(&mut self) -> u16 {
        (self.next() % 1000) as u16
    }
}

/// Per-statement chaos state: wraps the root [`super::exec`] iterator.
pub(crate) struct ChaosState {
    policy: FaultPolicy,
    rng: SplitMix64,
    server: Name,
    stmt: u64,
    stats: Stats,
    /// Remaining consecutive failures of the current transient fault.
    burst_left: u32,
    /// Rows this statement has delivered (the permanent-fault horizon).
    produced: u64,
}

impl ChaosState {
    pub(crate) fn new(policy: FaultPolicy, server: Name, stmt: u64, stats: Stats) -> ChaosState {
        ChaosState {
            rng: SplitMix64::new(policy.seed ^ stmt.wrapping_mul(0x5851f42d4c957f2d)),
            policy,
            server,
            stmt,
            stats,
            burst_left: 0,
            produced: 0,
        }
    }

    fn inject(&self, kind: FaultKind, msg: String) -> MixError {
        self.stats.inc(Counter::FaultsInjected);
        MixError::backend(self.server.clone(), kind, msg)
    }

    /// Gate one pull: `Err` injects a fault *before* any row is
    /// produced, `Ok((allowed, latency_ms))` caps how many rows the
    /// pull may deliver (so a permanent horizon at row `k` never ships
    /// row `k + 1`) and reports the modelled backend RTT for this pull.
    /// The caller pays the latency: the synchronous path sleeps inline,
    /// the prefetcher defers delivery to the block's arrival time so
    /// pipelined requests overlap their RTTs. Failed pulls pay nothing
    /// (the fault fires before the round trip completes).
    ///
    /// The transient schedule is rolled on each *successful* pull, for
    /// the pulls that follow it: a scheduled fault then fails exactly
    /// `transient_burst` consecutive pulls before data flows again.
    /// Failing runs are therefore never longer than the burst — even at
    /// rate 1000 — which is what makes the retry contract ("a budget
    /// `≥ burst` always gets through") a guarantee, not a probability.
    /// Determinism: the schedule depends only on the sequence of admit
    /// calls and their seed, never on the wall clock — which is why a
    /// prefetcher replaying the same pull-size sequence sees the exact
    /// same faults as the synchronous path.
    pub(crate) fn admit(&mut self, want: usize) -> Result<(usize, u64)> {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return Err(self.inject(
                FaultKind::Transient,
                format!("injected transient fault (stmt {})", self.stmt),
            ));
        }
        if let Some(k) = self.policy.fail_after_rows {
            if self.produced >= k {
                return Err(self.inject(
                    FaultKind::Permanent,
                    format!(
                        "injected permanent fault after row {k} (stmt {})",
                        self.stmt
                    ),
                ));
            }
        }
        if self.policy.transient_per_mille > 0
            && self.rng.per_mille() < self.policy.transient_per_mille
        {
            self.burst_left = self.policy.transient_burst;
        }
        let allowed = match self.policy.fail_after_rows {
            Some(k) => want.min((k - self.produced) as usize),
            None => want,
        };
        Ok((allowed.max(1).min(want), self.policy.latency_ms))
    }

    /// Record rows the gated pull actually delivered.
    pub(crate) fn delivered(&mut self, rows: u64) {
        self.produced += rows;
    }

    /// The modelled backend RTT this statement pays per pull —
    /// [`mix_common::PrefetchPolicy::Auto`] only engages when this is
    /// nonzero (there is nothing to overlap on a zero-RTT backend).
    pub(crate) fn latency_ms(&self) -> u64 {
        self.policy.latency_ms
    }

    /// Rows this statement can still deliver before the permanent
    /// horizon (if any) — caps `size_hint` so it never promises rows
    /// the fault schedule will refuse to ship.
    pub(crate) fn remaining_allowance(&self) -> Option<usize> {
        self.policy
            .fail_after_rows
            .map(|k| k.saturating_sub(self.produced) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn default_policy_is_inactive() {
        assert!(!FaultPolicy::default().active());
        assert!(FaultPolicy::transient(1, 100).active());
        assert!(FaultPolicy::fail_after(1, 3).active());
    }

    #[test]
    fn burst_fails_consecutive_pulls_then_recovers() {
        let stats = Stats::new();
        let policy = FaultPolicy::transient(7, 1000).with_burst(3); // always fault
        let mut st = ChaosState::new(policy, Name::new("db1"), 0, stats.clone());
        // A successful pull schedules the burst; the next three burn it.
        assert!(st.admit(8).is_ok());
        for _ in 0..3 {
            let e = st.admit(8).unwrap_err();
            assert!(e.is_transient(), "{e}");
        }
        // Burst spent — the next pull succeeds even at rate 1000, so a
        // retry budget >= burst is guaranteed to get through.
        assert!(st.admit(8).is_ok());
        assert_eq!(stats.get(Counter::FaultsInjected), 3);
    }

    #[test]
    fn permanent_horizon_caps_and_then_fails() {
        let stats = Stats::new();
        let mut st = ChaosState::new(
            FaultPolicy::fail_after(7, 3),
            Name::new("db1"),
            0,
            stats.clone(),
        );
        assert_eq!(st.admit(8).unwrap(), (3, 0)); // capped at the horizon
        st.delivered(3);
        let e = st.admit(8).unwrap_err();
        assert!(!e.is_transient(), "{e}");
        assert!(matches!(e, MixError::Backend(_)));
    }

    #[test]
    fn latency_is_reported_not_slept() {
        let stats = Stats::new();
        let policy = FaultPolicy::default().with_latency_ms(250);
        assert!(policy.active());
        let mut st = ChaosState::new(policy, Name::new("db1"), 0, stats);
        let t0 = std::time::Instant::now();
        assert_eq!(st.admit(8).unwrap(), (8, 250));
        // admit models the RTT, it does not pay it.
        assert!(t0.elapsed() < std::time::Duration::from_millis(200));
    }
}
