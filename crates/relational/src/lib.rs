//! An in-memory relational database substrate.
//!
//! The paper's mediator sits on relational sources that offer exactly
//! two capabilities: answering SQL queries, and delivering results
//! through *cursors* ("relational databases support a basic form of
//! partial result evaluation: the client issues an SQL query … and
//! receives a cursor"), while offering *no* context mechanism — a query
//! cannot refer to previously visited tuples. This crate is that
//! substrate, built from scratch:
//!
//! * [`schema`] / [`table`] / [`Database`] — typed tables with primary
//!   keys (keys become the wrapper's tuple oids, Fig. 2).
//! * [`ast`] + [`parse_sql`] — a SQL subset: `SELECT [DISTINCT] cols
//!   FROM t a, u b WHERE a.x = b.y AND a.z > 5 ORDER BY a.x`.
//! * [`plan`] + [`exec`] — a planner (scan → hash/nested-loop joins with
//!   pushed-down single-table filters → sort → project → distinct) and a
//!   pipelined executor delivering rows through [`Cursor`], which counts
//!   every tuple shipped to the mediator in the shared
//!   [`Stats`](mix_common::Stats).
//!
//! Shipped-tuple counts are the measurable form of the paper's "transfer
//! of the minimum amount of data between the mediator and the sources".

pub mod ast;
pub mod db;
pub mod exec;
pub mod fault;
pub mod fixtures;
pub mod parser;
pub mod plan;
pub mod prefetch;
pub mod reference;
pub mod schema;
pub mod sharded;
pub mod table;

pub use ast::{ColRef, FromItem, Operand, Pred, SelectItem, SelectStmt};
pub use db::Database;
pub use exec::Cursor;
pub use fault::FaultPolicy;
pub use parser::parse_sql;
pub use prefetch::{active_prefetchers, prefetch_pool_stats, prefetch_pool_workers};
pub use schema::{Column, ColumnType, Schema};
pub use sharded::{Backend, ShardScheme, ShardSpec, ShardedDatabase};
pub use table::{Row, Table};
