//! SQL subset lexer and parser.

use crate::ast::{ColRef, FromItem, Operand, Pred, SelectItem, SelectStmt};
use mix_common::{CmpOp, MixError, Name, Result, Value};

/// Parse one SELECT statement (optional trailing `;`).
pub fn parse_sql(text: &str) -> Result<SelectStmt> {
    let tokens = lex(text)?;
    let mut p = P {
        toks: &tokens,
        pos: 0,
    };
    let stmt = p.select()?;
    p.eat_opt(&Tok::Semi);
    if p.pos != p.toks.len() {
        return Err(MixError::parse(
            "sql",
            p.pos,
            format!("unexpected token {:?}", p.toks[p.pos]),
        ));
    }
    Ok(stmt)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(Value),
    Comma,
    Dot,
    Star,
    Semi,
    Op(CmpOp),
}

fn lex(text: &str) -> Result<Vec<Tok>> {
    let b = text.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else {
                    return Err(MixError::parse("sql", i, "stray '!'"));
                }
            }
            b'\'' => {
                // SQL string literal with '' escaping.
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err(MixError::parse("sql", i, "unterminated string")),
                        Some(b'\'') => {
                            if b.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            b'0'..=b'9' | b'-' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        // `1.x` where x is not a digit is a syntax error we let parse fail on
                        if is_float {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let textn = &text[start..i];
                let v = if is_float {
                    textn
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| MixError::parse("sql", start, "bad number"))?
                } else {
                    textn
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| MixError::parse("sql", start, "bad number"))?
                };
                out.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_string()));
            }
            _ => {
                return Err(MixError::parse(
                    "sql",
                    i,
                    format!("unexpected character {:?}", c as char),
                ))
            }
        }
    }
    Ok(out)
}

struct P<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_opt(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        if self.is_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(MixError::parse("sql", self.pos, format!("expected {kw}")))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<Name> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let n = Name::new(s);
                self.pos += 1;
                Ok(n)
            }
            t => Err(MixError::parse(
                "sql",
                self.pos,
                format!("expected identifier, got {t:?}"),
            )),
        }
    }

    fn colref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.eat_opt(&Tok::Dot) {
            let col = self.ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                column: col,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.keyword("SELECT")?;
        let distinct = if self.is_keyword("DISTINCT") {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut items = Vec::new();
        if self.eat_opt(&Tok::Star) {
            // SELECT * — items stays empty
        } else {
            loop {
                let col = self.colref()?;
                let alias = if self.is_keyword("AS") {
                    self.pos += 1;
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { col, alias });
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
        }
        self.keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            // optional alias: a bare identifier that is not a keyword
            let alias = match self.peek() {
                Some(Tok::Ident(s))
                    if !["WHERE", "ORDER", "AS"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            };
            from.push(FromItem { table, alias });
            if !self.eat_opt(&Tok::Comma) {
                break;
            }
        }
        let mut preds = Vec::new();
        if self.is_keyword("WHERE") {
            self.pos += 1;
            loop {
                let lhs = self.colref()?;
                let op = match self.peek() {
                    Some(Tok::Op(op)) => {
                        let op = *op;
                        self.pos += 1;
                        op
                    }
                    t => {
                        return Err(MixError::parse(
                            "sql",
                            self.pos,
                            format!("expected comparison operator, got {t:?}"),
                        ))
                    }
                };
                let rhs = match self.peek() {
                    Some(Tok::Num(v)) => {
                        let v = v.clone();
                        self.pos += 1;
                        Operand::Const(v)
                    }
                    Some(Tok::Str(s)) => {
                        let v = Value::str(s.clone());
                        self.pos += 1;
                        Operand::Const(v)
                    }
                    Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                        self.pos += 1;
                        Operand::Const(Value::Bool(true))
                    }
                    Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                        self.pos += 1;
                        Operand::Const(Value::Bool(false))
                    }
                    _ => Operand::Col(self.colref()?),
                };
                preds.push(Pred { lhs, op, rhs });
                if self.is_keyword("AND") {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.is_keyword("ORDER") {
            self.pos += 1;
            self.keyword("BY")?;
            loop {
                order_by.push(self.colref()?);
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            preds,
            order_by,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::CmpOp;

    #[test]
    fn parses_fig22_query() {
        // The query the rewriter ships to the source in Fig. 22.
        let q = parse_sql(
            "SELECT c1.id, c1.name, c1.addr, o1.orid, o1.value \
             FROM customer c1, orders o1, customer c2, orders o2 \
             WHERE c1.id = o1.cid AND c2.id = o2.cid AND c1.id = c2.id AND o2.value > 20000 \
             ORDER BY c1.id, o1.orid",
        )
        .unwrap();
        assert_eq!(q.items.len(), 5);
        assert_eq!(q.from.len(), 4);
        assert_eq!(q.preds.len(), 4);
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.from[2].binding().as_str(), "c2");
        assert_eq!(q.preds[3].op, CmpOp::Gt);
    }

    #[test]
    fn round_trips_through_display() {
        let text = "SELECT DISTINCT c.id AS cid FROM customer c \
                    WHERE c.name < 'B' AND c.id != 'X' ORDER BY c.id";
        let q = parse_sql(text).unwrap();
        assert_eq!(parse_sql(&q.to_string()).unwrap(), q);
        assert!(q.distinct);
        assert_eq!(q.items[0].alias.as_ref().unwrap().as_str(), "cid");
    }

    #[test]
    fn parses_star_and_bare_columns() {
        let q = parse_sql("SELECT * FROM orders WHERE value >= 100;").unwrap();
        assert!(q.items.is_empty());
        assert_eq!(q.preds[0].lhs, ColRef::bare("value"));
        assert_eq!(q.preds[0].rhs, Operand::Const(Value::Int(100)));
    }

    #[test]
    fn string_escapes_and_numbers() {
        let q = parse_sql("SELECT * FROM t WHERE a = 'it''s' AND b = -2 AND c = 2.5").unwrap();
        assert_eq!(q.preds[0].rhs, Operand::Const(Value::str("it's")));
        assert_eq!(q.preds[1].rhs, Operand::Const(Value::Int(-2)));
        assert_eq!(q.preds[2].rhs, Operand::Const(Value::Float(2.5)));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_sql("select * from t where a = 1 order by a").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_sql("SELECT FROM t").is_err());
        assert!(parse_sql("SELECT a FROM").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE a").is_err());
        assert!(parse_sql("SELECT a FROM t extra garbage here").is_err());
        assert!(parse_sql("UPDATE t SET a = 1").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE a = 'unterminated").is_err());
    }
}
