//! # MIX — Mixing Querying and Navigation
//!
//! A from-scratch Rust implementation of the MIX mediator
//! (Mukhopadhyay & Papakonstantinou, *Mixing Querying and Navigation in
//! MIX*, ICDE 2002): virtual XML views over relational databases with
//! **interleaved querying and navigation** through the QDOM API.
//!
//! ## Quick start
//!
//! ```
//! use mix::prelude::*;
//!
//! // The paper's Fig. 2 database, wrapped as XML sources root1/root2.
//! let (catalog, _db) = mix::wrapper::fig2_catalog();
//! let mediator = Mediator::new(catalog);
//! let mut session = mediator.session();
//!
//! // The running-example query Q1 (Fig. 3).
//! let p0 = session.query(
//!     "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
//!      WHERE $C/id/data() = $O/cid/data() \
//!      RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}",
//! ).unwrap();
//!
//! // Navigate the virtual result: nothing is computed until now.
//! let p1 = session.d(p0).unwrap().unwrap();                 // first CustRec
//! assert_eq!(session.fl(p1).unwrap().unwrap().as_str(), "CustRec");
//!
//! // Query *in place* from the CustRec node (decontextualization).
//! let p9 = session.q(
//!     "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
//!     p1,
//! ).unwrap();
//! assert_eq!(session.child_count(p9).unwrap(), 1);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`common`] | `mix-common` | values, names, counters |
//! | [`xml`] | `mix-xml` | §2 data model, oids/skolems, paths |
//! | [`relational`] | `mix-relational` | the relational source substrate |
//! | [`wrapper`] | `mix-wrapper` | Fig. 2 relational→XML wrapper |
//! | [`xquery`] | `mix-xquery` | Fig. 4 XQuery subset |
//! | [`algebra`] | `mix-algebra` | §3 XMAS algebra + translation |
//! | [`engine`] | `mix-engine` | §4 navigation-driven lazy evaluation |
//! | [`rewrite`] | `mix-rewrite` | §6 rewriting optimizer, Table 2, Fig. 22 SQL |
//! | [`qdom`] | `mix-qdom` | §2 QDOM API, §5 decontextualization |
//! | [`proto`] | `mix-proto` | the framed QDOM wire protocol |
//! | [`serve`] | `mix-serve` | multi-session server front-end |

pub use mix_algebra as algebra;
pub use mix_common as common;
pub use mix_engine as engine;
pub use mix_obs as obs;
pub use mix_proto as proto;
pub use mix_qdom as qdom;
pub use mix_relational as relational;
pub use mix_rewrite as rewrite;
pub use mix_serve as serve;
pub use mix_wrapper as wrapper;
pub use mix_xml as xml;
pub use mix_xquery as xquery;

/// The names most programs need.
pub mod prelude {
    pub use mix_algebra::{translate, translate_with_root, validate, Plan};
    pub use mix_common::{
        intern, BackendError, BlockPolicy, BlockRows, CmpOp, ColumnBlock, Counter, Delta,
        FaultKind, MixError, Name, PrefetchPolicy, Result, ResultContext, RetryPolicy, Snapshot,
        Stats, Value, MAX_AUTO_BLOCK,
    };
    pub use mix_engine::{AccessMode, EvalContext, GByMode, VirtualResult};
    pub use mix_obs::{CollectingTracer, LogTracer, Tracer, TracerHandle};
    pub use mix_proto::{Command, Frame, Reply, WireNode, PROTO_VERSION};
    pub use mix_qdom::{
        Mediator, MediatorOptions, MediatorOptionsBuilder, QNode, QdomSession, SharedPlanCache,
    };
    pub use mix_relational::{
        active_prefetchers, prefetch_pool_workers, Backend, Database, FaultPolicy, Schema,
        ShardScheme, ShardSpec, ShardedDatabase,
    };
    pub use mix_rewrite::{optimize, rewrite, split_plan};
    pub use mix_serve::{Server, ServerConfig, WireClient, WireError};
    pub use mix_wrapper::{Catalog, RelationSource};
    pub use mix_xml::{Document, NavDoc, Oid};
    pub use mix_xquery::parse_query;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let (catalog, _db) = crate::wrapper::fig2_catalog();
        let mediator = Mediator::new(catalog);
        let mut session = mediator.session();
        let p0 = session
            .query("FOR $C IN source(&root1)/customer RETURN $C")
            .unwrap();
        assert_eq!(session.child_count(p0).unwrap(), 2);
    }
}
