//! Shared harness for the experiment suite and the benches.
//!
//! The paper has no quantitative evaluation section; its evaluation is
//! the worked example (Figures 2–22, Tables 1–2) and explicit
//! performance claims. [`figures`] regenerates every figure/table;
//! [`experiments`] measures every claim over parameter sweeps (the
//! tables EXPERIMENTS.md records). `cargo bench` runs the same
//! comparisons under the in-repo [`harness`] for wall-clock numbers.

pub mod experiments;
pub mod figures;
pub mod harness;

use mix::prelude::*;

/// The paper's running-example view Q1 (Fig. 3).
pub const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

/// The Fig. 12 query against the view.
pub const Q_FIG12: &str = "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
     WHERE $S/order/value > 20000 RETURN $R";

/// A mediator over a fresh customers/orders database.
pub fn scaled_mediator(
    n_customers: usize,
    orders_per: usize,
    seed: u64,
    optimize: bool,
    access: AccessMode,
) -> (Mediator, Stats) {
    let (catalog, db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
    let stats = db.stats().clone();
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .access(access)
            .optimize(optimize)
            .build(),
    );
    (m, stats)
}

/// Browse the first `k` children of a result shallowly.
pub fn browse_k(s: &mut mix::qdom::QdomSession, p0: QNode, k: usize) -> usize {
    let mut seen = 0;
    let mut cur = s.d(p0).expect("browse");
    while let Some(c) = cur {
        seen += 1;
        if seen >= k {
            break;
        }
        cur = s.r(c).expect("browse");
    }
    seen
}

/// Walk an entire result (every node).
pub fn drain(s: &mut mix::qdom::QdomSession, p: QNode) -> usize {
    fn walk(s: &mut mix::qdom::QdomSession, p: QNode, n: &mut usize) {
        *n += 1;
        let mut cur = s.d(p).expect("drain");
        while let Some(c) = cur {
            walk(s, c, n);
            cur = s.r(c).expect("drain");
        }
    }
    let mut n = 0;
    walk(s, p, &mut n);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_browse_and_drain() {
        let (m, _stats) = scaled_mediator(10, 2, 1, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        assert_eq!(browse_k(&mut s, p0, 3), 3);
        let nodes = drain(&mut s, p0);
        // 10 CustRecs, each: customer(+3 fields ×2 nodes) + 2 OrderInfo(order + 3 fields ×2)
        assert!(nodes > 10 * 8, "{nodes}");
    }
}
