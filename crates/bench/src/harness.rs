//! Minimal wall-clock benchmark harness.
//!
//! The bench targets are `harness = false` binaries, so they only need
//! a timing loop and reporting; this module provides both without any
//! external dependency (offline builds stay green). Usage:
//!
//! ```ignore
//! let mut h = Harness::from_args("my_group");
//! h.bench("case_name", || expensive());
//! h.finish();
//! ```
//!
//! A positional command-line argument filters cases by substring, like
//! criterion's filter. `finish()` prints a summary table and returns
//! the measurements for machine consumption.

use std::time::{Duration, Instant};

/// One measured case: name plus per-iteration wall time.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case name (`group/case`).
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Iterations measured (after warmup).
    pub iters: u32,
}

/// Nanoseconds for a measurement, for JSON reporting.
impl Measurement {
    /// Median time in nanoseconds.
    pub fn nanos(&self) -> u128 {
        self.median.as_nanos()
    }
}

/// A benchmark group: times closures and reports per-iteration costs.
pub struct Harness {
    group: String,
    filter: Option<String>,
    target: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness reading a substring filter from the command line.
    /// Flags (`--bench`, `--quiet` etc. that cargo passes) are ignored.
    pub fn from_args(group: &str) -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            group: group.to_string(),
            filter,
            target: Duration::from_millis(300),
            results: Vec::new(),
        }
    }

    /// Lower or raise the per-case measuring budget (default 300 ms).
    pub fn measure_for(&mut self, target: Duration) {
        self.target = target;
    }

    /// Time `f`, printing and recording the median per-iteration cost.
    pub fn bench<T>(&mut self, case: &str, mut f: impl FnMut() -> T) {
        let name = format!("{}/{}", self.group, case);
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        // Warmup + calibration run.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        // Enough iterations to fill the budget, capped for slow cases.
        let iters = (self.target.as_nanos() / first.as_nanos()).clamp(1, 1000) as u32;
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!("{name:<44} {:>12} ({iters} iters)", fmt_duration(median));
        self.results.push(Measurement {
            name,
            median,
            iters,
        });
    }

    /// Print a closing line and hand back the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("{}: {} case(s) measured", self.group, self.results.len());
        self.results
    }
}

/// Human-friendly duration rendering (ns/µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_filters() {
        let mut h = Harness {
            group: "g".into(),
            filter: Some("keep".into()),
            target: Duration::from_millis(5),
            results: Vec::new(),
        };
        h.bench("keep_this", || 1 + 1);
        h.bench("skip_this", || panic!("filtered out"));
        let r = h.finish();
        assert_eq!(r.len(), 1);
        assert!(r[0].name.contains("keep"));
        assert!(r[0].iters >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
