//! The experiments harness.
//!
//! ```sh
//! cargo run -p mix-bench --bin experiments            # everything
//! cargo run -p mix-bench --bin experiments -- figures # paper artifacts
//! cargo run -p mix-bench --bin experiments -- e4      # one experiment
//! ```

use mix_bench::{experiments, figures};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "figures" => print!("{}", figures::render_all()),
        "e1" => print!("{}", experiments::e1_lazy_vs_eager()),
        "e2" => print!("{}", experiments::e2_first_result_latency()),
        "e3" => print!("{}", experiments::e3_decontext_vs_materialize()),
        "e4" => print!("{}", experiments::e4_pushdown_selectivity()),
        "e5" => print!("{}", experiments::e5_mediator_work()),
        "e6" => print!("{}", experiments::e6_in_place_scaling()),
        "e7" => print!("{}", experiments::e7_gby_ablation()),
        "e8" => print!("{}", experiments::e8_rule_ablation()),
        "bench-tables" => print!("{}", experiments::run_all()),
        "all" => {
            print!("{}", figures::render_all());
            print!("{}", experiments::run_all());
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected one of: figures, e1..e8, bench-tables, all"
            );
            std::process::exit(2);
        }
    }
}
