//! Regenerate every figure and table of the paper as printable text.

use crate::{Q1, Q_FIG12};
use mix::engine::eager;
use mix::prelude::*;
use std::collections::HashMap;

fn section(out: &mut String, title: &str) {
    out.push_str(&format!(
        "\n==================== {title} ====================\n"
    ));
}

/// Render all paper artifacts, in figure order.
pub fn render_all() -> String {
    let mut out = String::new();

    // Fig. 2 — the XML database.
    section(&mut out, "Fig. 2: XML view of the relational database");
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    for name in ["root1", "root2"] {
        let doc = catalog.materialized(name).expect("fig2 source");
        out.push_str(&mix::xml::print::render_tree(&*doc, doc.root()));
        out.push('\n');
    }

    // Fig. 3/4 — the example query under the grammar.
    section(
        &mut out,
        "Fig. 3: the example query Q1 (parsed and re-printed)",
    );
    let q1 = parse_query(Q1).expect("Q1 parses");
    out.push_str(&mix::xquery::print_query(&q1));

    // Fig. 5 — binding-list tree.
    section(
        &mut out,
        "Fig. 5: tree representation of Q1's binding lists",
    );
    let ctx = EvalContext::new(catalog.clone(), AccessMode::Eager);
    let plan = translate(&q1).expect("Q1 translates");
    if let mix::algebra::Op::TupleDestroy { input, .. } = &plan.root {
        let table = eager::eval_table(input, &ctx, &HashMap::new()).expect("Q1 evaluates");
        out.push_str(&eager::render_binding_table(&ctx, &table));
    }

    // Fig. 6 — the XMAS plan.
    section(&mut out, "Fig. 6: the XMAS plan for Q1");
    out.push_str(&plan.render());

    // Fig. 7 — the result with skolem ids.
    section(&mut out, "Fig. 7: the result of Q1");
    let m = Mediator::new(catalog.clone());
    let mut s = m.session();
    let p0 = s.query(Q1).expect("Q1 runs");
    out.push_str(&s.render(p0));

    // Example 2.1 — the navigation session.
    section(&mut out, "Example 2.1: interleaved navigation and querying");
    let p1 = s.d(p0).expect("nav ok").expect("p1 = d(p0)");
    out.push_str(&format!(
        "p1 = d(p0)  -> {} {}\n",
        s.oid(p1),
        s.fl(p1).unwrap().unwrap()
    ));
    let p2 = s.r(p1).expect("nav ok").expect("p2 = r(p1)");
    out.push_str(&format!(
        "p2 = r(p1)  -> {} {}\n",
        s.oid(p2),
        s.fl(p2).unwrap().unwrap()
    ));
    let p3 = s.d(p1).expect("nav ok").expect("p3 = d(p1)");
    out.push_str(&format!(
        "p3 = d(p1)  -> {} {}\n",
        s.oid(p3),
        s.fl(p3).unwrap().unwrap()
    ));
    let p4 = s
        .q(
            "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P",
            p0,
        )
        .expect("p4 = q(Q2', p0)");
    out.push_str(&format!(
        "p4 = q(Q2', p0) — composition; result:\n{}",
        s.render(p4)
    ));
    let p5 = s.d(p4).expect("nav ok").expect("p5 = d(p4)");
    let p9 = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
            p5,
        )
        .expect("p9 = q(Q3', p5)");
    out.push_str(&format!(
        "p9 = q(Q3', p5) — decontextualization; result:\n{}",
        s.render(p9)
    ));

    // Figs. 8–9 — in-place query plan.
    section(&mut out, "Figs. 8–9: the in-place query q1 and its plan");
    let q_fig8 = "FOR $O IN document(root)/orderInfo/order WHERE $O/value > 2000 RETURN $O";
    out.push_str(q_fig8);
    out.push('\n');
    out.push_str(&translate(&parse_query(q_fig8).unwrap()).unwrap().render());

    // Fig. 10 — decontextualized plan.
    section(
        &mut out,
        "Fig. 10: the decontextualized plan (query from node y)",
    );
    let view = translate(&q1).unwrap();
    let qp = translate(
        &parse_query("FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 2000 RETURN $O")
            .unwrap(),
    )
    .unwrap();
    let node_ctx = mix::engine::NodeContext {
        oid: Oid::skolem("f", "V", vec![Oid::key("XYZ123")]),
        ancestors: vec![],
    };
    let decon = mix::qdom::decontext::decontextualize(&qp, &node_ctx, &view).expect("decontext");
    out.push_str(&decon.render());

    // Figs. 12–13 — composition.
    section(
        &mut out,
        "Figs. 12–13: naive composition of the Fig. 12 query with the Q1 view",
    );
    let view_named = mix::algebra::translate_with_root(&q1, "rootv").unwrap();
    let q12 = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q12, "rootv", &view_named);
    out.push_str(&naive.render());

    // Figs. 14–21 — the rewrite derivation.
    section(&mut out, "Figs. 14–21: the rewriting derivation");
    let rewritten = rewrite(&naive);
    out.push_str(&rewritten.trace.render());

    // Fig. 22 — split plan + SQL.
    section(&mut out, "Fig. 22: split plan with the pushed SQL query");
    let optimized = optimize(&naive, &catalog);
    out.push_str(&optimized.plan.render());

    // Table 1 — the stateless presorted gBy.
    section(
        &mut out,
        "Table 1: stateless presorted gBy (observed behaviour)",
    );
    out.push_str(&table1_narration());

    // Table 2 — the rewrite rules.
    section(&mut out, "Table 2: the rewrite rules (as implemented)");
    for (name, desc) in RULES {
        out.push_str(&format!("{name:28} {desc}\n"));
    }
    out
}

/// The implemented rule catalog (DESIGN.md's reconstruction of Table 2).
pub const RULES: &[(&str, &str)] = &[
    (
        "R1-getd-crelt-push",
        "push getD below crElt (list children), path becomes $W.list.q",
    ),
    (
        "R2-getd-crelt-exact",
        "getD exactly matches the constructed label: alias $X ≡ $Z",
    ),
    (
        "R3-getd-crelt-single",
        "push getD below crElt(list($W)): path becomes $W.q",
    ),
    (
        "R4-unsatisfiable",
        "path cannot match the constructed label: empty plan",
    ),
    (
        "R5-getd-cat-push",
        "push getD into the cat branch whose elements can match",
    ),
    (
        "R9-join-introduction",
        "join a fresh copy of the pre-grouping subplan on the group vars",
    ),
    (
        "R10-chain-merge",
        "merge getD chains over a dead intermediate variable",
    ),
    (
        "R11-td-mksrc",
        "eliminate the view's tD under the query's mksrc; alias vars",
    ),
    (
        "R12-semijoin-below-group",
        "push semijoins below gBy/apply/crElt toward the source",
    ),
    (
        "select-pushdown",
        "push selections below construction and into join branches",
    ),
    (
        "getd-pushdown",
        "push getD toward its start variable's producer",
    ),
    (
        "empty-propagation",
        "an operator over the empty plan is empty",
    ),
    (
        "dead-elimination",
        "live-variable analysis removes dead getD/crElt/cat/apply",
    ),
    (
        "join-to-semijoin",
        "a join whose one side is dead above becomes a semijoin",
    ),
    (
        "schema-prune",
        "source-schema rules: impossible wrapper paths become the empty plan",
    ),
    (
        "split-to-sql",
        "maximal relational fragments become rQ operators (SQL)",
    ),
];

fn table1_narration() -> String {
    use mix::engine::stream::build_stream;
    use std::sync::Arc;
    let (catalog, db) = mix::wrapper::fig2_catalog();
    let ctx = Arc::new(EvalContext::new(catalog, AccessMode::Lazy));
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    let mix::algebra::Op::TupleDestroy { input, .. } = plan.root else {
        unreachable!()
    };
    let mut s = build_stream(&input, &ctx, &Arc::new(HashMap::new())).unwrap();
    let stats = db.stats().clone();
    let mut out = String::new();
    out.push_str("getRoot(): compiled, no source tuples pulled\n");
    let g1 = s.next().expect("pull ok").expect("group 1");
    out.push_str(&format!(
        "d(root):   first group binding ({} source tuples pulled)\n",
        stats.get(Counter::TuplesShipped)
    ));
    if let Some(mix::engine::LVal::Part(p)) = g1.get(&Name::new("X")) {
        out.push_str(&format!(
            "  d(group), r(...): partition holds {} binding(s) — discovered by r() on the input until the key changes\n",
            p.force().unwrap().len()
        ));
    }
    let before = stats.get(Counter::TuplesShipped);
    let g2 = s.next().expect("pull ok").expect("group 2");
    out.push_str(&format!(
        "r(binding): next group; skipping drained the previous group underneath ({} -> {} tuples)\n",
        before,
        stats.get(Counter::TuplesShipped)
    ));
    if let Some(mix::engine::LVal::Part(p)) = g2.get(&Name::new("X")) {
        out.push_str(&format!(
            "  second partition holds {} binding(s)\n",
            p.force().unwrap().len()
        ));
    }
    out.push_str("r(binding): ⊥ (no further groups)\n");
    assert!(s.next().unwrap().is_none());
    out
}
