//! The measured experiments E1–E8 (DESIGN.md §5): every performance
//! claim of the paper, as a parameter sweep printing one table.
//!
//! All tables report *work counters* (tuples shipped from the sources,
//! nodes built at the mediator) and wall-clock milliseconds. Counter
//! columns are deterministic; milliseconds vary with the machine —
//! EXPERIMENTS.md records one reference run.

use crate::{browse_k, drain, scaled_mediator, Q1};
use mix::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// E1 — lazy evaluation ships only what navigation demands.
///
/// Claim (Sections 1, 4): "the MIX mediator produces the XML result
/// tree as the user navigates into it, hence avoiding unnecessary
/// computations"; Web users browse just a few results. Sweep the
/// database size N and the number of results browsed k; compare source
/// tuples shipped and time for lazy vs. the conventional
/// full-materialization baseline.
pub fn e1_lazy_vs_eager() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E1: browse k of N results (orders/customer = 4)");
    let _ = writeln!(
        out,
        "{:>6} {:>5} | {:>12} {:>10} | {:>12} {:>10}",
        "N", "k", "lazy_shipped", "lazy_ms", "eager_shipped", "eager_ms"
    );
    for n in [100usize, 300, 1000, 3000] {
        for k in [1usize, 5, 20] {
            // lazy
            let (m, stats) = scaled_mediator(n, 4, 42, true, AccessMode::Lazy);
            let mut s = m.session();
            stats.reset();
            let t = Instant::now();
            let p0 = s.query(Q1).expect("query");
            browse_k(&mut s, p0, k);
            let lazy_ms = ms(t);
            let lazy_shipped = stats.get(Counter::TuplesShipped);
            // eager
            let (m, stats) = scaled_mediator(n, 4, 42, true, AccessMode::Eager);
            let mut s = m.session();
            stats.reset();
            let t = Instant::now();
            let p0 = s.query(Q1).expect("query");
            browse_k(&mut s, p0, k);
            let eager_ms = ms(t);
            let eager_shipped = stats.get(Counter::TuplesShipped);
            let _ = writeln!(
                out,
                "{n:>6} {k:>5} | {lazy_shipped:>12} {lazy_ms:>10.2} | {eager_shipped:>12} {eager_ms:>10.2}"
            );
        }
    }
    out
}

/// E2 — time-to-first-result is independent of the database size under
/// lazy evaluation (it grows with N under eager evaluation).
pub fn e2_first_result_latency() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E2: cost of reaching the FIRST result");
    let _ = writeln!(
        out,
        "{:>6} | {:>12} {:>10} | {:>12} {:>10}",
        "N", "lazy_shipped", "lazy_ms", "eager_shipped", "eager_ms"
    );
    for n in [100usize, 500, 2000, 8000] {
        let (m, stats) = scaled_mediator(n, 2, 3, true, AccessMode::Lazy);
        let mut s = m.session();
        stats.reset();
        let t = Instant::now();
        let p0 = s.query(Q1).expect("query");
        let _ = s.d(p0).expect("first result");
        let lazy_ms = ms(t);
        let lazy_shipped = stats.get(Counter::TuplesShipped);

        let (m, stats) = scaled_mediator(n, 2, 3, true, AccessMode::Eager);
        let mut s = m.session();
        stats.reset();
        let t = Instant::now();
        let p0 = s.query(Q1).expect("query");
        let _ = s.d(p0).expect("first result");
        let eager_ms = ms(t);
        let eager_shipped = stats.get(Counter::TuplesShipped);
        let _ = writeln!(
            out,
            "{n:>6} | {lazy_shipped:>12} {lazy_ms:>10.2} | {eager_shipped:>12} {eager_ms:>10.2}"
        );
    }
    out
}

/// E3 — queries-in-place via decontextualization vs. materializing the
/// context subtree and querying the copy (Section 1: "this solution is
/// unacceptable … the tree rooted at x may be large").
pub fn e3_decontext_vs_materialize() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3: in-place query from a CustRec with F orders (selective predicate)"
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>14} {:>12} {:>8} | {:>14} {:>12} {:>8}",
        "F", "decon_shipped", "decon_nodes", "ms", "mat_shipped", "mat_nodes", "ms"
    );
    for fanout in [10usize, 50, 200, 500] {
        let (m, stats) = scaled_mediator(50, fanout, 5, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).expect("query");
        let p1 = s.d(p0).expect("nav").expect("first CustRec");
        let med = s.ctx().stats().clone();
        let q = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 99000 RETURN $O";

        stats.reset();
        med.reset();
        let t = Instant::now();
        let a = s.q(q, p1).expect("decontext");
        let _ = s.child_count(a);
        let decon_ms = ms(t);
        let (ds, dn) = (
            stats.get(Counter::TuplesShipped),
            med.get(Counter::NodesBuilt),
        );

        stats.reset();
        med.reset();
        let t = Instant::now();
        let b = s.q_materialized(q, p1).expect("materialize");
        let _ = s.child_count(b);
        let mat_ms = ms(t);
        let (msd, mn) = (
            stats.get(Counter::TuplesShipped),
            med.get(Counter::NodesBuilt),
        );
        let _ = writeln!(
            out,
            "{fanout:>6} | {ds:>14} {dn:>12} {decon_ms:>8.2} | {msd:>14} {mn:>12} {mat_ms:>8.2}"
        );
    }
    out
}

/// E4 — composition optimization pushes the most restrictive query to
/// the source; sweep the selectivity of the composed query's predicate.
pub fn e4_pushdown_selectivity() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4: composed query, threshold sweep (N=400, 6 orders each)"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>6} | {:>12} {:>8} | {:>12} {:>8}",
        "threshold", "hits", "opt_shipped", "opt_ms", "naive_shipped", "naive_ms"
    );
    for threshold in [50_000i64, 90_000, 99_000, 99_900] {
        let report = format!(
            "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        let mut row = Vec::new();
        let mut hits = 0;
        for optimize in [true, false] {
            let (catalog, db) = mix_repro::datagen::customers_orders(400, 6, 9);
            let stats = db.stats().clone();
            let mut m = Mediator::with_options(
                catalog,
                MediatorOptions::builder().optimize(optimize).build(),
            );
            m.define_view("v", VIEW).expect("view");
            let mut s = m.session();
            stats.reset();
            let t = Instant::now();
            let p = s.query(&report).expect("report");
            hits = s.child_count(p).expect("count");
            row.push((stats.get(Counter::TuplesShipped), ms(t)));
        }
        let _ = writeln!(
            out,
            "{threshold:>9} {hits:>6} | {:>12} {:>8.2} | {:>12} {:>8.2}",
            row[0].0, row[0].1, row[1].0, row[1].1
        );
    }
    out
}

/// E5 — rewriting removes unnecessary element construction and grouping
/// at the mediator (Section 6's first bullet).
pub fn e5_mediator_work() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E5: mediator work for the composed query (threshold = 99000)"
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "N", "opt_nodes", "opt_ops", "naive_nodes", "naive_ops"
    );
    for n in [100usize, 300, 1000] {
        let report = "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > 99000 RETURN $R";
        let mut cells = Vec::new();
        for optimize in [true, false] {
            let (catalog, _db) = mix_repro::datagen::customers_orders(n, 5, 13);
            let mut m = Mediator::with_options(
                catalog,
                MediatorOptions::builder().optimize(optimize).build(),
            );
            m.define_view("v", VIEW).expect("view");
            let mut s = m.session();
            let med = s.ctx().stats().clone();
            med.reset();
            let p = s.query(report).expect("report");
            let _ = s.child_count(p);
            cells.push((med.get(Counter::NodesBuilt), med.get(Counter::MediatorOps)));
        }
        let _ = writeln!(
            out,
            "{n:>6} | {:>10} {:>10} | {:>10} {:>10}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }
    out
}

/// E6 — the cost of a decontextualized in-place query tracks the
/// context's data, not the database size.
pub fn e6_in_place_scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6: in-place query from the first CustRec (10 orders), database sweep"
    );
    let _ = writeln!(out, "{:>6} | {:>12} {:>8}", "N", "shipped", "ms");
    for n in [100usize, 400, 1600, 6400] {
        let (m, stats) = scaled_mediator(n, 10, 21, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).expect("query");
        let p1 = s.d(p0).expect("nav").expect("first CustRec");
        stats.reset();
        let t = Instant::now();
        let a = s
            .q(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 50000 RETURN $O",
                p1,
            )
            .expect("in-place");
        let _ = s.child_count(a);
        let _ = writeln!(
            out,
            "{n:>6} | {:>12} {:>8.2}",
            stats.get(Counter::TuplesShipped),
            ms(t)
        );
    }
    out
}

/// E7 — ablation: stateless presorted gBy vs. the buffering stateful
/// implementation (Section 4, Table 1).
pub fn e7_gby_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E7: full drain of Q1, groupBy implementation sweep");
    let _ = writeln!(
        out,
        "{:>7} | {:>13} | {:>12}",
        "groups", "stateless_ms", "stateful_ms"
    );
    for n in [200usize, 1000, 4000] {
        let mut cells = Vec::new();
        for gby in [GByMode::StatelessPresorted, GByMode::Stateful] {
            let (catalog, _db) = mix_repro::datagen::customers_orders(n, 5, 31);
            let m = Mediator::with_options(catalog, MediatorOptions::builder().gby(gby).build());
            let mut s = m.session();
            let t = Instant::now();
            let p0 = s.query(Q1).expect("query");
            let _ = drain(&mut s, p0);
            cells.push(ms(t));
        }
        let _ = writeln!(out, "{n:>7} | {:>13.2} | {:>12.2}", cells[0], cells[1]);
    }
    out
}

/// E8 — ablation: what individual rewrite rules buy, measured as source
/// tuples shipped by the composed query with the rule disabled.
pub fn e8_rule_ablation() -> String {
    use mix::qdom::splice::compose;
    use mix::rewrite::{rewrite_with_disabled, split_plan};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E8: composed query (threshold 99000, N=400), rule ablations"
    );
    let _ = writeln!(
        out,
        "{:>28} | {:>12} {:>6}",
        "disabled rule", "shipped", "#rQ"
    );
    let report = "FOR $R IN document(rootv)/CustRec $S IN $R/OrderInfo \
         WHERE $S/order/value > 99000 RETURN $R";
    for disabled in [
        vec![],
        vec!["R12-semijoin-below-group"],
        vec!["R9-join-introduction"],
        vec!["select-pushdown", "getd-pushdown"],
    ] {
        let (catalog, db) = mix_repro::datagen::customers_orders(400, 6, 9);
        let stats = db.stats().clone();
        let view = mix::algebra::translate_with_root(&parse_query(VIEW).unwrap(), "rootv").unwrap();
        let q = translate(&parse_query(report).unwrap()).unwrap();
        let naive = compose(&q, "rootv", &view);
        let rewritten = rewrite_with_disabled(&naive, &disabled);
        let split = split_plan(&rewritten.plan, &catalog);
        let n_rq = split.render().matches("rQ(").count();
        // Execute the ablated plan lazily and drain it.
        let ctx = std::sync::Arc::new(EvalContext::new(catalog, AccessMode::Lazy));
        stats.reset();
        let v = VirtualResult::new(&split, ctx).expect("ablated plan runs");
        let mut n = 0usize;
        let mut cur = v.first_child(v.root());
        while let Some(c) = cur {
            n += 1;
            cur = v.next_sibling(c);
        }
        let label = if disabled.is_empty() {
            "(none)".to_string()
        } else {
            disabled.join("+")
        };
        let _ = writeln!(
            out,
            "{label:>28} | {:>12} {n_rq:>6}   ({n} results)",
            stats.get(Counter::TuplesShipped)
        );
    }
    out
}

/// Run every experiment, returning the combined report.
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, f) in [
        ("E1", e1_lazy_vs_eager as fn() -> String),
        ("E2", e2_first_result_latency),
        ("E3", e3_decontext_vs_materialize),
        ("E4", e4_pushdown_selectivity),
        ("E5", e5_mediator_work),
        ("E6", e6_in_place_scaling),
        ("E7", e7_gby_ablation),
        ("E8", e8_rule_ablation),
    ] {
        out.push_str(&format!(
            "\n==================== {name} ====================\n"
        ));
        out.push_str(&f());
    }
    out
}
