//! Microbenchmarks: the compilation pipeline (parse → translate →
//! rewrite → split) that runs once per client query, plus the
//! relational substrate the mediator leans on.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::{Q1, Q_FIG12};
use std::hint::black_box;

fn bench_pipeline(h: &mut Harness) {
    h.bench("parse_q1", || parse_query(black_box(Q1)).unwrap());
    let q1 = parse_query(Q1).unwrap();
    h.bench("translate_q1", || translate(black_box(&q1)).unwrap());
    h.bench("parse_sql_fig22", || {
        mix::relational::parse_sql(black_box(
            "SELECT c1.id, c1.name, c1.addr, o1.orid, o1.value \
             FROM customer c1, orders o1, customer c2, orders o2 \
             WHERE c1.id = o1.cid AND c2.id = o2.cid AND c1.id = c2.id \
             AND o2.value > 20000 ORDER BY c1.id, o1.orid",
        ))
        .unwrap()
    });
    // The full Fig. 13→22 pipeline: compose, rewrite, split.
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    let view = mix::algebra::translate_with_root(&q1, "rootv").unwrap();
    let q12 = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q12, "rootv", &view);
    h.bench("rewrite_fig13_to_21", || rewrite(black_box(&naive)));
    let rewritten = rewrite(&naive).plan;
    h.bench("split_fig21_to_22", || {
        split_plan(black_box(&rewritten), black_box(&catalog))
    });
}

fn bench_relational(h: &mut Harness) {
    let db = mix::relational::fixtures::gen_db(2000, 4, 5);
    h.bench("relational/scan_filter_8000_rows", || {
        db.execute_sql("SELECT * FROM orders WHERE value > 90000")
            .unwrap()
            .collect_all()
    });
    h.bench("relational/hash_join_2000x8000", || {
        db.execute_sql("SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid")
            .unwrap()
            .collect_all()
    });
    for k in [1usize, 100] {
        h.bench(&format!("relational/cursor_first_k/{k}"), || {
            let mut cur = db
                .execute_sql("SELECT * FROM orders WHERE value > 1000")
                .unwrap();
            let mut n = 0;
            while n < k {
                if cur.next().unwrap().is_none() {
                    break;
                }
                n += 1;
            }
            n
        });
    }
}

fn main() {
    let mut h = Harness::from_args("operators");
    bench_pipeline(&mut h);
    bench_relational(&mut h);
    h.finish();
}
