//! Microbenchmarks: the compilation pipeline (parse → translate →
//! rewrite → split) that runs once per client query.

use criterion::{criterion_group, criterion_main, Criterion};
use mix::prelude::*;
use mix_bench::{Q1, Q_FIG12};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("parse_q1", |b| {
        b.iter(|| parse_query(black_box(Q1)).unwrap())
    });
    let q1 = parse_query(Q1).unwrap();
    c.bench_function("translate_q1", |b| b.iter(|| translate(black_box(&q1)).unwrap()));
    c.bench_function("parse_sql_fig22", |b| {
        b.iter(|| {
            mix::relational::parse_sql(black_box(
                "SELECT c1.id, c1.name, c1.addr, o1.orid, o1.value \
                 FROM customer c1, orders o1, customer c2, orders o2 \
                 WHERE c1.id = o1.cid AND c2.id = o2.cid AND c1.id = c2.id \
                 AND o2.value > 20000 ORDER BY c1.id, o1.orid",
            ))
            .unwrap()
        })
    });
    // The full Fig. 13→22 pipeline: compose, rewrite, split.
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    let view = mix::algebra::translate_with_root(&q1, "rootv").unwrap();
    let q12 = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q12, "rootv", &view);
    c.bench_function("rewrite_fig13_to_21", |b| b.iter(|| rewrite(black_box(&naive))));
    let rewritten = rewrite(&naive).plan;
    c.bench_function("split_fig21_to_22", |b| {
        b.iter(|| split_plan(black_box(&rewritten), black_box(&catalog)))
    });
}

criterion_group!(benches, bench_pipeline);

// Substrate microbenchmarks: the relational executor the mediator
// leans on.
mod relational_micro {
    use super::*;
    use criterion::BenchmarkId;

    pub fn bench_relational(c: &mut Criterion) {
        let db = mix::relational::fixtures::gen_db(2000, 4, 5);
        let mut g = c.benchmark_group("relational");
        g.bench_function("scan_filter_8000_rows", |b| {
            b.iter(|| {
                db.execute_sql("SELECT * FROM orders WHERE value > 90000")
                    .unwrap()
                    .collect_all()
            })
        });
        g.bench_function("hash_join_2000x8000", |b| {
            b.iter(|| {
                db.execute_sql(
                    "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid",
                )
                .unwrap()
                .collect_all()
            })
        });
        for k in [1usize, 100] {
            g.bench_with_input(BenchmarkId::new("cursor_first_k", k), &k, |b, &k| {
                b.iter(|| {
                    let mut cur = db
                        .execute_sql("SELECT * FROM orders WHERE value > 1000")
                        .unwrap();
                    let mut n = 0;
                    while n < k {
                        if cur.next().is_none() {
                            break;
                        }
                        n += 1;
                    }
                    n
                })
            });
        }
        g.finish();
    }
}

criterion_group!(substrate, relational_micro::bench_relational);

criterion_main!(benches, substrate);
