//! Hash vs. nested-loop join kernels at the mediator: the Q1 join over
//! N customers × M orders, evaluated *unoptimized* so the join runs in
//! the mediator's physical layer rather than being pushed to SQL. The
//! nested loop pays N·M probes; the hash kernel pays O(N + M + output).

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::Q1;

fn main() {
    let mut h = Harness::from_args("join_scaling");
    for (n, per) in [(100usize, 1usize), (300, 3), (1000, 1)] {
        let m_rows = n * per;
        for (label, hash_joins) in [("hash", true), ("nl", false)] {
            h.bench(&format!("{label}/{n}x{m_rows}"), || {
                let (catalog, _db) = mix_repro::datagen::customers_orders(n, per, 31);
                let m = Mediator::with_options(
                    catalog,
                    MediatorOptions::builder()
                        .optimize(false)
                        .hash_joins(hash_joins)
                        .build(),
                );
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                // Enumerating every CustRec drains the whole join.
                s.child_count(p0)
            });
        }
    }
    h.finish();
}
