//! Pipelined-prefetch sweep: full Q1 drains at modelled backend RTTs of
//! 0/1/5 ms, `Prefetch::Off` vs `Prefetch::Auto`.
//!
//! The synchronous path pays one full RTT per block, serially; the
//! prefetcher issues pulls back-to-back (bounded by the channel depth)
//! so consecutive RTTs overlap each other *and* the mediator-side work
//! of decoding, tagging, and assembling the virtual view. Three shapes:
//!
//! * `q1_drain` — fresh mediator per iteration, optimized plan: the
//!   per-query cost a cold client pays, dominated by RTTs once latency
//!   is nonzero.
//! * `q1_repeat` — one session, query re-issued per iteration: the
//!   plan cache absorbs compile/optimize, so the residual is pure
//!   execution — the steady-state cost an interactive client pays.
//! * a counter run per case, recording `BlocksShipped` (must be
//!   *identical* across prefetch policies — the ramp is replayed, not
//!   renegotiated) plus `PrefetchHitBlocks`/`PrefetchStallNs`, the
//!   "overlap is real" evidence for `BENCH_prefetch.json`.
//!
//! Pass `--smoke` for a seconds-scale CI run on a small database.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::Q1;
use std::time::Duration;

fn policies() -> Vec<(&'static str, PrefetchPolicy)> {
    vec![("off", PrefetchPolicy::Off), ("auto", PrefetchPolicy::Auto)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness::from_args("prefetch_overlap");
    let (n, per) = if smoke { (60usize, 2usize) } else { (400, 2) };
    if smoke {
        h.measure_for(Duration::from_millis(30));
    }
    let rows = n * per;
    let (catalog, db) = mix_repro::datagen::customers_orders(n, per, 31);
    let stats = db.stats().clone();

    for latency in [0u64, 1, 5] {
        db.set_latency_ms(if latency == 0 { None } else { Some(latency) });

        // Cold: a fresh mediator per iteration (compile + execute).
        for (label, prefetch) in policies() {
            let catalog = catalog.clone();
            h.bench(&format!("q1_drain/{latency}ms/{label}/{n}x{rows}"), || {
                let m = Mediator::with_options(
                    catalog.clone(),
                    MediatorOptions::builder().prefetch(prefetch).build(),
                );
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.child_count(p0)
            });
        }

        // Warm: one session drains the same query five times. Runs 2–5
        // hit the plan cache (and the session ramp floor), so the case
        // approximates the steady-state cost an interactive client
        // pays. A fresh session per iteration keeps the accumulated
        // result state — and with it the median — bounded.
        for (label, prefetch) in policies() {
            let catalog = catalog.clone();
            h.bench(
                &format!("q1_repeat5/{latency}ms/{label}/{n}x{rows}"),
                || {
                    let m = Mediator::with_options(
                        catalog.clone(),
                        MediatorOptions::builder().prefetch(prefetch).build(),
                    );
                    let mut s = m.session();
                    let mut total = 0usize;
                    for _ in 0..5 {
                        let p0 = s.query(Q1).unwrap();
                        total += s.child_count(p0).unwrap();
                    }
                    total
                },
            );
        }

        // One instrumented drain per policy: the accounting evidence.
        for (label, prefetch) in policies() {
            stats.reset();
            let m = Mediator::with_options(
                catalog.clone(),
                MediatorOptions::builder().prefetch(prefetch).build(),
            );
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            let _ = s.child_count(p0);
            println!(
                "counters/{latency}ms/{label}: tuples_shipped={} blocks_shipped={} \
                 prefetch_hit_blocks={} prefetch_stall_ms={:.2} prefetch_aborted={}",
                stats.get(Counter::TuplesShipped),
                stats.get(Counter::BlocksShipped),
                stats.get(Counter::PrefetchHitBlocks),
                stats.get(Counter::PrefetchStallNs) as f64 / 1.0e6,
                stats.get(Counter::PrefetchAborted),
            );
        }
    }
    db.set_latency_ms(None);

    h.finish();
}
