//! Block-at-a-time sweep: full Q1 drains under `Off` / `Fixed(n)` /
//! `Auto` block policies. Two shapes are measured:
//!
//! * `q1_drain` — the optimized plan (join pushed to SQL), so the
//!   sweep exercises batched cursor shipping plus the whole vectorized
//!   operator spine (`rQ` → `crElt` → `gBy` → `apply` → `cat` →
//!   `crElt`).
//! * `join_drain` — the unoptimized plan, so the hash-join kernel runs
//!   at the mediator and its vectorized probe is on the hot path.
//!
//! `Off` is the paper-faithful one-tuple-per-pull baseline; the gap to
//! `Auto` is the headline number in `BENCH_block.json`. Pass `--smoke`
//! for a seconds-scale CI run on a small database.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::Q1;
use std::time::Duration;

fn policies() -> Vec<(&'static str, BlockPolicy)> {
    vec![
        ("off", BlockPolicy::Off),
        ("fixed1", BlockPolicy::Fixed(1)),
        ("fixed8", BlockPolicy::Fixed(8)),
        ("fixed64", BlockPolicy::Fixed(64)),
        ("fixed512", BlockPolicy::Fixed(512)),
        ("auto", BlockPolicy::Auto),
    ]
}

fn main() {
    // The harness treats `-`-prefixed args as cargo flags, so the
    // smoke switch needs explicit handling.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness::from_args("block_sweep");
    let (n, per) = if smoke { (60usize, 2usize) } else { (2000, 2) };
    if smoke {
        h.measure_for(Duration::from_millis(30));
    }
    let rows = n * per;

    // Data is generated once; each iteration opens a fresh session so
    // every drain re-ships all rows from the source.
    let (catalog, _db) = mix_repro::datagen::customers_orders(n, per, 31);

    for (label, block) in policies() {
        let catalog = catalog.clone();
        h.bench(&format!("q1_drain/{label}/{n}x{rows}"), || {
            let m = Mediator::with_options(
                catalog.clone(),
                MediatorOptions::builder().block(block).build(),
            );
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            // Enumerating every CustRec drains the pushed-down join.
            s.child_count(p0)
        });
    }

    for (label, block) in policies() {
        let catalog = catalog.clone();
        h.bench(&format!("join_drain/{label}/{n}x{rows}"), || {
            let m = Mediator::with_options(
                catalog.clone(),
                MediatorOptions::builder()
                    .optimize(false)
                    .block(block)
                    .build(),
            );
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            s.child_count(p0)
        });
    }

    // Regression pin for the small-block re-ramp: join_drain restarts a
    // fresh `Auto` ramp for every cursor, so the mediator-side join used
    // to re-pay 1-, 2-, 4-row pulls on each drain. One session with
    // repeated drains exercises the session ramp floor: after the first
    // drain, later cursors restart at the learned block size (the
    // median iteration here is a *warm* drain).
    for (label, block) in [("off", BlockPolicy::Off), ("auto", BlockPolicy::Auto)] {
        let m = Mediator::with_options(
            catalog.clone(),
            MediatorOptions::builder()
                .optimize(false)
                .block(block)
                .build(),
        );
        let mut s = m.session();
        h.bench(&format!("join_drain_warm/{label}/{n}x{rows}"), || {
            let p0 = s.query(Q1).unwrap();
            s.child_count(p0)
        });
    }

    h.finish();
}
