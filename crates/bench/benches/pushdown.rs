//! E4/E5: the composition optimizer vs. naive composed plans.
//!
//! The claim (Section 6): the rewriter "combines the conditions of q1
//! and q2 and pushes to the sources the most restrictive queries, which
//! results in the transfer of the minimum amount of data".

use mix::prelude::*;
use mix_bench::drain;
use mix_bench::harness::Harness;

const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn main() {
    let mut h = Harness::from_args("composed_report_N200");
    for threshold in [50_000i64, 99_000] {
        let report = format!(
            "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        for optimize in [true, false] {
            let label = if optimize { "optimized" } else { "naive" };
            h.bench(&format!("{label}/{threshold}"), || {
                let (catalog, _db) = mix_repro::datagen::customers_orders(200, 6, 9);
                let mut m = Mediator::with_options(
                    catalog,
                    MediatorOptions::builder().optimize(optimize).build(),
                );
                m.define_view("v", VIEW).unwrap();
                let mut s = m.session();
                let p = s.query(&report).unwrap();
                drain(&mut s, p)
            });
        }
    }
    h.finish();
}
