//! E3: decontextualized queries-in-place vs. the materialize-the-
//! subtree-then-query strawman.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::{scaled_mediator, Q1};

const IN_PLACE: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 99000 RETURN $O";

fn main() {
    let mut h = Harness::from_args("in_place_query_fanout");
    for fanout in [50usize, 300] {
        h.bench(&format!("decontextualize/{fanout}"), || {
            let (m, _stats) = scaled_mediator(50, fanout, 5, true, AccessMode::Lazy);
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            let p1 = s.d(p0).unwrap().unwrap();
            let a = s.q(IN_PLACE, p1).unwrap();
            s.child_count(a).unwrap()
        });
        h.bench(&format!("materialize/{fanout}"), || {
            let (m, _stats) = scaled_mediator(50, fanout, 5, true, AccessMode::Lazy);
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            let p1 = s.d(p0).unwrap().unwrap();
            let a = s.q_materialized(IN_PLACE, p1).unwrap();
            s.child_count(a).unwrap()
        });
    }

    // Repeated queries-in-place from sibling nodes: with a warm plan
    // cache each call reuses the compiled template (key substitution
    // only); varying the query text defeats the cache and pays the
    // full translate → splice → rewrite pipeline every time.
    {
        let (m, _stats) = scaled_mediator(64, 5, 7, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let sibs = s.children(p0).unwrap();
        let _warm = s.q(IN_PLACE, sibs[0]).unwrap();
        let mut i = 0usize;
        h.bench("repeat_query/cached", || {
            i = (i + 1) % sibs.len();
            let a = s.q(IN_PLACE, sibs[i]).unwrap();
            s.child_count(a).unwrap()
        });
    }
    {
        let (m, _stats) = scaled_mediator(64, 5, 7, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let sibs = s.children(p0).unwrap();
        let mut i = 0usize;
        let mut k = 0u64;
        h.bench("repeat_query/uncached", || {
            i = (i + 1) % sibs.len();
            k += 1;
            // Distinct text every call ⇒ guaranteed plan-cache miss.
            let q = format!(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > {} RETURN $O",
                99000 + k
            );
            let a = s.q(&q, sibs[i]).unwrap();
            s.child_count(a).unwrap()
        });
    }
    h.finish();
}
