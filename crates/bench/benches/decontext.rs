//! E3: decontextualized queries-in-place vs. the materialize-the-
//! subtree-then-query strawman.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix::prelude::*;
use mix_bench::{scaled_mediator, Q1};

fn bench_decontext(c: &mut Criterion) {
    let mut g = c.benchmark_group("in_place_query_fanout");
    g.sample_size(10);
    for fanout in [50usize, 300] {
        g.bench_with_input(BenchmarkId::new("decontextualize", fanout), &fanout, |b, &f| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(50, f, 5, true, AccessMode::Lazy);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                let p1 = s.d(p0).unwrap();
                let a = s
                    .q("FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 99000 RETURN $O", p1)
                    .unwrap();
                s.child_count(a)
            })
        });
        g.bench_with_input(BenchmarkId::new("materialize", fanout), &fanout, |b, &f| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(50, f, 5, true, AccessMode::Lazy);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                let p1 = s.d(p0).unwrap();
                let a = s
                    .q_materialized("FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 99000 RETURN $O", p1)
                    .unwrap();
                s.child_count(a)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decontext);
criterion_main!(benches);
