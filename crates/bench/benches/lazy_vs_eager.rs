//! E1/E2: navigation-driven lazy evaluation vs. full materialization.
//!
//! The claim: browsing the first k results of a large virtual view
//! costs O(k), not O(N) — "evaluating the full result unnecessarily
//! overloads the mediator and the sources [and] reduces the response
//! time as perceived by the client".

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::{browse_k, scaled_mediator, Q1};

fn main() {
    let mut h = Harness::from_args("lazy_vs_eager");
    for n in [100usize, 1000, 4000] {
        for access in [AccessMode::Lazy, AccessMode::Eager] {
            let label = if access == AccessMode::Lazy {
                "lazy"
            } else {
                "eager"
            };
            h.bench(&format!("browse_5_of_N/{label}/{n}"), || {
                let (m, _stats) = scaled_mediator(n, 4, 42, true, access);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                browse_k(&mut s, p0, 5)
            });
        }
    }
    for n in [500usize, 4000] {
        for access in [AccessMode::Lazy, AccessMode::Eager] {
            let label = if access == AccessMode::Lazy {
                "lazy"
            } else {
                "eager"
            };
            h.bench(&format!("first_result_of_N/{label}/{n}"), || {
                let (m, _stats) = scaled_mediator(n, 2, 3, true, access);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.d(p0).unwrap()
            });
        }
    }
    h.finish();
}
