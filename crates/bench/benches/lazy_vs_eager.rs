//! E1/E2: navigation-driven lazy evaluation vs. full materialization.
//!
//! The claim: browsing the first k results of a large virtual view
//! costs O(k), not O(N) — "evaluating the full result unnecessarily
//! overloads the mediator and the sources [and] reduces the response
//! time as perceived by the client".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix::prelude::*;
use mix_bench::{browse_k, scaled_mediator, Q1};

fn bench_browse(c: &mut Criterion) {
    let mut g = c.benchmark_group("browse_5_of_N");
    g.sample_size(20);
    for n in [100usize, 1000, 4000] {
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, &n| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(n, 4, 42, true, AccessMode::Lazy);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                browse_k(&s, p0, 5)
            })
        });
        g.bench_with_input(BenchmarkId::new("eager", n), &n, |b, &n| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(n, 4, 42, true, AccessMode::Eager);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                browse_k(&s, p0, 5)
            })
        });
    }
    g.finish();
}

fn bench_first_result(c: &mut Criterion) {
    let mut g = c.benchmark_group("first_result_of_N");
    g.sample_size(10);
    for n in [500usize, 4000] {
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, &n| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(n, 2, 3, true, AccessMode::Lazy);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.d(p0).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("eager", n), &n, |b, &n| {
            b.iter(|| {
                let (m, _stats) = scaled_mediator(n, 2, 3, true, AccessMode::Eager);
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.d(p0).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_browse, bench_first_result);
criterion_main!(benches);
