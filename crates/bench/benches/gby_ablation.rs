//! E7: the stateless presorted groupBy (Table 1) vs. the buffering
//! stateful implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mix::prelude::*;
use mix_bench::{drain, Q1};

fn bench_gby(c: &mut Criterion) {
    let mut g = c.benchmark_group("gby_drain_q1");
    g.sample_size(10);
    for n in [500usize, 2000] {
        for (label, mode) in [
            ("stateless", GByMode::StatelessPresorted),
            ("stateful", GByMode::Stateful),
        ] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let (catalog, _db) = mix_repro::datagen::customers_orders(n, 5, 31);
                    let m = Mediator::with_options(
                        catalog,
                        MediatorOptions { gby: mode, ..Default::default() },
                    );
                    let mut s = m.session();
                    let p0 = s.query(Q1).unwrap();
                    drain(&s, p0)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_gby);
criterion_main!(benches);
