//! E7: the stateless presorted groupBy (Table 1) vs. the buffering
//! stateful implementation vs. the hash implementation.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::{drain, Q1};

fn main() {
    let mut h = Harness::from_args("gby_drain_q1");
    for n in [500usize, 2000] {
        for (label, mode) in [
            ("stateless", GByMode::StatelessPresorted),
            ("stateful", GByMode::Stateful),
            ("hash", GByMode::Hash),
            ("auto", GByMode::Auto),
        ] {
            h.bench(&format!("{label}/{n}"), || {
                let (catalog, _db) = mix_repro::datagen::customers_orders(n, 5, 31);
                let m =
                    Mediator::with_options(catalog, MediatorOptions::builder().gby(mode).build());
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                drain(&mut s, p0)
            });
        }
    }
    h.finish();
}
