//! Columnar-representation sweep: full Q1 drains with blocks shipped as
//! typed column vectors (the default) versus the boxed per-row
//! representation (`MediatorOptions::columnar(false)`, the ablation
//! baseline — the hot path as it stood before the columnar refactor).
//!
//! Two shapes are measured, both under `BlockPolicy::Auto`:
//!
//! * `q1_drain` — the optimized plan (join pushed to SQL): the columnar
//!   path covers the whole shipping spine — typed `ColumnBlock` pulls
//!   at the cursor, the vectorized scan, and the run-detecting block
//!   decoder in `rQ` — so this is the headline number.
//! * `join_drain` — the unoptimized plan: two scans feed the mediator
//!   hash join, so cursor shipping plus key extraction dominate.
//!
//! Both representations ship identical tuples with identical
//! `BlocksShipped`; the bench asserts that before timing, so the gap is
//! representation cost and nothing else. Pass `--smoke` for a
//! seconds-scale CI run on a small database.

use mix::prelude::*;
use mix_bench::harness::Harness;
use mix_bench::Q1;
use std::time::Duration;

fn reprs() -> [(&'static str, bool); 2] {
    [("row", false), ("col", true)]
}

/// One full Q1 drain; returns (result tuples, blocks shipped).
fn drain(catalog: &Catalog, optimize: bool, columnar: bool) -> (usize, u64) {
    let m = Mediator::with_options(
        catalog.clone(),
        MediatorOptions::builder()
            .optimize(optimize)
            .block(BlockPolicy::Auto)
            .columnar(columnar)
            .build(),
    );
    let mut s = m.session();
    let before = s.ctx().stats().get(Counter::BlocksShipped);
    let p0 = s.query(Q1).unwrap();
    let n = s.child_count(p0).expect("Q1 drain");
    (n, s.ctx().stats().get(Counter::BlocksShipped) - before)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness::from_args("columnar_sweep");
    let (n, per) = if smoke { (60usize, 2usize) } else { (2000, 2) };
    if smoke {
        h.measure_for(Duration::from_millis(30));
    }
    let rows = n * per;
    let (catalog, _db) = mix_repro::datagen::customers_orders(n, per, 31);

    // The equal-work precondition: representation must not change what
    // ships. (The equivalence suite pins content; this pins the bench's
    // own workload.)
    for optimize in [true, false] {
        let (row_n, row_blocks) = drain(&catalog, optimize, false);
        let (col_n, col_blocks) = drain(&catalog, optimize, true);
        assert_eq!(
            row_n, col_n,
            "result cardinality differs (optimize={optimize})"
        );
        assert_eq!(
            row_blocks, col_blocks,
            "BlocksShipped differs (optimize={optimize})"
        );
    }

    for (label, columnar) in reprs() {
        let catalog = catalog.clone();
        h.bench(&format!("q1_drain/{label}/{n}x{rows}"), || {
            drain(&catalog, true, columnar)
        });
    }

    for (label, columnar) in reprs() {
        let catalog = catalog.clone();
        h.bench(&format!("join_drain/{label}/{n}x{rows}"), || {
            drain(&catalog, false, columnar)
        });
    }

    h.finish();
}
