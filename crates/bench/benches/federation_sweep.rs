//! Federation sweep: what sharding buys and what it costs.
//!
//! Three question-shaped case families over the customers/orders
//! schema partitioned as a hash federation (customer by `id`, orders
//! co-partitioned by `cid`):
//!
//! * `routed_point5` — five shard-key point lookups per iteration
//!   (the plan cache is warm after the first) against the unsharded
//!   baseline. Routing prunes the scatter to one shard, so the routed
//!   query must cost about the same as the unsharded one (the
//!   acceptance bound is within 10%).
//! * `scatter_drain` — a full Q1 drain at a modelled 4 ms per-shard
//!   RTT with pipelined prefetch, over 1/2/4 shards of the *same*
//!   data. Each shard child prefetches independently, so per-shard
//!   RTTs overlap across the federation: the 4-shard drain must beat
//!   the 1-shard drain by ≥2x wall-clock.
//! * `merge_overhead` — the same drain at zero latency, prefetch off:
//!   the pure CPU cost of the k-way ordered merge over 4 ways vs 1.
//!
//! A counter run per shard count records the routing/scatter evidence
//! (`ShardQueriesRouted`, `ScatterMerges`, `ShardsTargeted`,
//! `TuplesShipped`). Pass `--smoke` for a seconds-scale CI run (no
//! JSON); the full run rewrites `BENCH_federation.json` at the repo
//! root, including the two acceptance ratios.

use mix::prelude::*;
use mix_bench::harness::{Harness, Measurement};
use mix_bench::Q1;
use mix_repro::datagen::{customers_orders, customers_orders_sharded, ShardLayout};
use std::time::Duration;

fn nanos_of(results: &[Measurement], needle: &str) -> u128 {
    results
        .iter()
        .find(|m| m.name.contains(needle))
        .unwrap_or_else(|| panic!("case {needle} not measured"))
        .nanos()
        .max(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut h = Harness::from_args("federation_sweep");
    let (n, per) = if smoke { (60usize, 2usize) } else { (400, 2) };
    if smoke {
        h.measure_for(Duration::from_millis(30));
    }
    let rows = n * per;
    let seed = 31;

    // ---- routed point lookup vs the unsharded baseline (0 ms RTT) ----
    // Ids are C000000-style; pick one from the middle of the domain.
    let point = format!(
        "FOR $C IN source(&root1)/customer WHERE $C/id/data() = \"C{:06}\" RETURN $C",
        n / 2
    );
    // Steady-state shape (the prefetch bench's repeat-5 idiom): a
    // fresh session runs the lookup five times, so queries 2–5 hit the
    // plan cache and the iteration approximates the per-query cost an
    // interactive client pays.
    {
        let (catalog, _db) = customers_orders(n, per, seed);
        let point = point.clone();
        h.bench(&format!("routed_point5/unsharded/{n}c"), move || {
            let m = Mediator::new(catalog.clone());
            let mut s = m.session();
            let mut total = 0usize;
            for _ in 0..5 {
                let p0 = s.query(&point).unwrap();
                total += s.child_count(p0).unwrap();
            }
            total
        });
    }
    {
        let (catalog, _sharded) = customers_orders_sharded(n, per, seed, ShardLayout::Hash(4));
        let point = point.clone();
        h.bench(&format!("routed_point5/sharded-4/{n}c"), move || {
            let m = Mediator::new(catalog.clone());
            let mut s = m.session();
            let mut total = 0usize;
            for _ in 0..5 {
                let p0 = s.query(&point).unwrap();
                total += s.child_count(p0).unwrap();
            }
            total
        });
    }

    // ---- cross-shard drain: 4 ms per-shard RTT, prefetch overlaps ----
    for shards in [1usize, 2, 4] {
        let (catalog, sharded) = customers_orders_sharded(n, per, seed, ShardLayout::Hash(shards));
        sharded.set_latency_ms(Some(4));
        h.bench(
            &format!("scatter_drain/4ms/{shards}shards/{n}x{rows}"),
            move || {
                let m = Mediator::with_options(
                    catalog.clone(),
                    MediatorOptions::builder()
                        .block(BlockPolicy::Fixed(32))
                        .prefetch(PrefetchPolicy::Depth(2))
                        .build(),
                );
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.child_count(p0)
            },
        );
    }

    // ---- ordered-merge overhead: zero latency, prefetch off ----------
    for shards in [1usize, 4] {
        let (catalog, _sharded) = customers_orders_sharded(n, per, seed, ShardLayout::Hash(shards));
        h.bench(
            &format!("merge_overhead/0ms/{shards}shards/{n}x{rows}"),
            move || {
                let m = Mediator::with_options(
                    catalog.clone(),
                    MediatorOptions::builder().block(BlockPolicy::Auto).build(),
                );
                let mut s = m.session();
                let p0 = s.query(Q1).unwrap();
                s.child_count(p0)
            },
        );
    }

    // ---- one instrumented run per shard count: the routing evidence --
    for shards in [1usize, 2, 4] {
        let (catalog, sharded) = customers_orders_sharded(n, per, seed, ShardLayout::Hash(shards));
        let stats = sharded.stats().clone();
        let m = Mediator::new(catalog.clone());
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let _ = s.child_count(p0);
        let pr = s.query(&point).unwrap();
        let _ = s.child_count(pr);
        println!(
            "counters/{shards}shards: scatter_merges={} shard_queries_routed={} \
             shards_targeted={} tuples_shipped={}",
            stats.get(Counter::ScatterMerges),
            stats.get(Counter::ShardQueriesRouted),
            stats.get(Counter::ShardsTargeted),
            stats.get(Counter::TuplesShipped),
        );
    }

    let results = h.finish();

    // The two acceptance ratios, from the medians just measured.
    let routed = nanos_of(&results, "routed_point5/sharded-4") as f64
        / nanos_of(&results, "routed_point5/unsharded") as f64;
    let speedup = nanos_of(&results, "scatter_drain/4ms/1shards") as f64
        / nanos_of(&results, "scatter_drain/4ms/4shards") as f64;
    println!("routed_vs_unsharded_ratio: {routed:.3} (1.0 = parity; acceptance ≤ 1.10)");
    println!("scatter_drain_speedup_4_vs_1: {speedup:.2}x (acceptance ≥ 2x)");

    if !smoke {
        let cases = results
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"case\": \"{}\", \"median_ns\": {} }}",
                    m.name,
                    m.nanos()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"description\": \"Federation sweep over the customers/orders schema hash-\
             partitioned by shard key (customer by id, orders co-partitioned by cid), {n} \
             customers x {per} orders. routed_point5: five shard-key point lookups per iteration (plan cache warm after \
             the first) routed to one shard vs the unsharded baseline (routing must cost within 10% of unsharded). \
             scatter_drain: full Q1 drains at a modelled 4 ms per-shard RTT with per-shard \
             pipelined prefetch (depth 2, 32-row blocks) over 1/2/4 shards of the same data — \
             shard children prefetch independently, so per-shard RTTs overlap and the 4-shard \
             drain must beat 1-shard by >= 2x. merge_overhead: the same drain at zero latency, \
             prefetch off — the pure CPU cost of the k-way ordered merge. Regenerate with \
             `cargo bench -p mix-bench --bench federation_sweep`.\",\n  \
             \"rows\": {rows},\n  \
             \"routed_vs_unsharded_ratio\": {routed:.3},\n  \
             \"scatter_drain_speedup_4_vs_1\": {speedup:.2},\n  \
             \"cases\": [\n{cases}\n  ]\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_federation.json");
        std::fs::write(path, json).expect("write BENCH_federation.json");
        println!("wrote {path}");
    }
}
