//! Served-mode benchmark: N concurrent wire sessions against one
//! `mix-serve` server over loopback, measuring per-command round-trip
//! latency (p50/p95/p99 by command class) and aggregate command
//! throughput.
//!
//! Each session is the same navigation-heavy script: one Q1 query,
//! then a sibling walk over the first children (`d`/`r` + `fl` each),
//! repeated in-place nested queries of one class (the
//! `shared_cache_repeat` case — sessions after the first ride plan
//! templates other sessions compiled into the process-wide
//! [`SharedPlanCache`]), one bulk `export`, one `stats`. The script
//! matches what the equivalence suite pins against an in-process
//! session, and the bench re-asserts one render against an in-process
//! run before timing, so the numbers describe the wire overhead on
//! *correct* traffic.
//!
//! Besides latency/throughput, the run records the cross-session
//! plan-cache hit rate and the process OS-thread count sampled under
//! load — the pooled server holds `2 + workers (+ prefetch pool)`
//! threads regardless of session count.
//!
//! Pass `--smoke` for a seconds-scale CI run (8 sessions, small
//! database, no JSON). The full run drives 64 concurrent sessions and
//! rewrites `BENCH_serve.json` at the repo root.

use mix::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BROWSE: usize = 50;

/// In-place nested query issued from the first CustRec node; the class
/// every session repeats against the shared plan cache.
const QREPEAT: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 50000 RETURN $O";

/// Issues of `QREPEAT` per session.
const REPEATS: usize = 4;

/// This process's live OS-thread count (Linux `/proc`; 0 elsewhere).
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

#[derive(Default)]
struct Lats {
    query: Vec<u128>,
    nav: Vec<u128>,
    repeat: Vec<u128>,
    export: Vec<u128>,
}

impl Lats {
    fn absorb(&mut self, other: Lats) {
        self.query.extend(other.query);
        self.nav.extend(other.nav);
        self.repeat.extend(other.repeat);
        self.export.extend(other.export);
    }
    fn total(&self) -> usize {
        self.query.len() + self.nav.len() + self.repeat.len() + self.export.len()
    }
}

/// One session's script; returns per-command latencies by class.
fn session_script(addr: std::net::SocketAddr) -> Lats {
    let mut lats = Lats::default();
    let mut client = WireClient::connect(addr).expect("connect");
    let timed = |lat: &mut Vec<u128>, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        lat.push(t.elapsed().as_nanos());
    };
    let mut p0 = None;
    timed(&mut lats.query, &mut || {
        p0 = Some(client.query(mix_bench::Q1).expect("query"));
    });
    let p0 = p0.unwrap();
    // Sibling walk: d once, then (fl, r) per child.
    let mut cur = None;
    timed(&mut lats.nav, &mut || {
        cur = client.d(p0).expect("d");
    });
    let mut seen = 0;
    let first = cur;
    while let Some(c) = cur {
        seen += 1;
        timed(&mut lats.nav, &mut || {
            client.fl(c).expect("fl");
        });
        if seen >= BROWSE {
            break;
        }
        timed(&mut lats.nav, &mut || {
            cur = client.r(c).expect("r");
        });
    }
    // Repeated in-place queries of one class from the first CustRec:
    // after the first session compiles the template, every other issue
    // (this session's and every other session's) is a shared-cache hit.
    if let Some(p1) = first {
        for _ in 0..REPEATS {
            timed(&mut lats.repeat, &mut || {
                client.q(QREPEAT, p1).expect("q");
            });
        }
    }
    timed(&mut lats.export, &mut || {
        client.export(p0, BROWSE as u32).expect("export");
    });
    client.stats().expect("stats");
    client.close().expect("close");
    lats
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, n_customers) = if smoke { (8, 60) } else { (64, 500) };
    let orders_per = 2;

    // One plan cache for the whole process: every session's mediator
    // shares it, so repeated query classes compile once, not once per
    // session.
    let shared = Arc::new(SharedPlanCache::default());
    // Built once, cloned per session: plan-cache keys include backend
    // identity (stable across clones only), so cross-session reuse
    // requires every session to front the same database.
    let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, 31);
    let factory: Arc<dyn Fn() -> Mediator + Send + Sync> = {
        let shared = Arc::clone(&shared);
        Arc::new(move || {
            let catalog = catalog.clone();
            Mediator::with_options(
                catalog,
                MediatorOptions::builder()
                    .access(AccessMode::Lazy)
                    .optimize(true)
                    .shared_plan_cache(Arc::clone(&shared))
                    .build(),
            )
        })
    };

    // Correctness pin before timing: one wire render equals the
    // in-process render of the same node.
    {
        let mut server =
            Server::start("127.0.0.1:0", ServerConfig::default(), Arc::clone(&factory))
                .expect("bind");
        let mut client = WireClient::connect(server.addr()).expect("connect");
        let w0 = client.query(mix_bench::Q1).expect("query");
        let w1 = client.d(w0).expect("d").expect("nonempty");
        let wire_render = client.render(w1).expect("render");
        client.close().expect("close");
        server.shutdown();
        let m = factory();
        let mut s = m.session();
        let p0 = s.query(mix_bench::Q1).expect("query");
        let p1 = s.d(p0).expect("d").expect("nonempty");
        assert_eq!(wire_render, s.render(p1), "wire and in-process diverge");
    }

    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: sessions * 2,
            ..ServerConfig::default()
        },
        Arc::clone(&factory),
    )
    .expect("bind");
    let addr = server.addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|_| std::thread::spawn(move || session_script(addr)))
        .collect();
    // Sample the process thread count while the fleet is in flight:
    // client threads + (2 + workers) server threads + prefetch pool —
    // bounded by hardware, not by session count.
    std::thread::sleep(Duration::from_millis(20));
    let threads_under_load = os_threads();
    let mut lats = Lats::default();
    for h in handles {
        lats.absorb(h.join().expect("session thread"));
    }
    let wall = t0.elapsed();
    let opened = server.stats().get(Counter::SessionsOpened);
    let server_threads = 2 + server.worker_count();
    server.shutdown();
    assert_eq!(opened as usize, sessions, "admission failed under load");
    assert_eq!(active_prefetchers(), 0, "leaked prefetcher threads");
    let (cache_hits, cache_misses) = (
        shared.stats().get(Counter::PlanCacheHits),
        shared.stats().get(Counter::PlanCacheMisses),
    );
    assert!(
        cache_hits > 0,
        "expected cross-session plan-cache hits, got {cache_hits} hits / {cache_misses} misses"
    );

    let total = lats.total();
    let throughput = total as f64 / wall.as_secs_f64();
    let hit_rate = cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64;
    println!(
        "serve_bench: {sessions} concurrent sessions, {total} commands in {:?} \
         ({throughput:.0} cmd/s)",
        wall
    );
    println!(
        "  shared plan cache: {cache_hits} hits / {cache_misses} misses \
         ({:.0}% cross-session hit rate); {server_threads} server threads \
         (+{} prefetch workers), {threads_under_load} process threads under load",
        hit_rate * 100.0,
        prefetch_pool_workers(),
    );
    let mut classes: Vec<(&str, Vec<u128>)> = vec![
        ("query", lats.query),
        ("nav", lats.nav),
        ("shared_cache_repeat", lats.repeat),
        ("export", lats.export),
    ];
    let mut case_lines = Vec::new();
    for (name, lat) in classes.iter_mut() {
        lat.sort();
        let (p50, p95, p99) = (
            percentile(lat, 0.50),
            percentile(lat, 0.95),
            percentile(lat, 0.99),
        );
        println!(
            "  {name:<20} n={:<6} p50={} p95={} p99={}",
            lat.len(),
            fmt_ns(p50),
            fmt_ns(p95),
            fmt_ns(p99),
        );
        case_lines.push(format!(
            "    {{ \"case\": \"{name}\", \"count\": {}, \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"p99_ns\": {p99} }}",
            lat.len()
        ));
    }

    if !smoke {
        let json = format!(
            "{{\n  \"description\": \"Served-mode wire benchmark: {sessions} concurrent loopback \
             sessions multiplexed over one mix-serve worker-pool server (acceptor + poller + \
             {server_threads_minus2} session workers), each session a fresh mediator over a \
             {n_customers}x{orders_per} customers/orders database sharing one process-wide \
             SharedPlanCache. Each session runs one Q1 query, a {BROWSE}-sibling d/r+fl walk, \
             {REPEATS} repeated in-place nested queries of one class (shared_cache_repeat — hits \
             the plan template other sessions compiled), one bulk export and a stats snapshot; \
             latencies are client-observed round trips per command class. os_threads_under_load \
             is the whole process (client threads included) sampled mid-run; server threads are \
             bounded by the pool, not the session count. Wire output is pinned bit-identical to \
             an in-process session by the equivalence suite (crates/serve/tests/serve.rs) and \
             re-asserted by this bench before timing. Regenerate with `cargo bench -p mix-bench \
             --bench serve_bench`.\",\n  \
             \"sessions\": {sessions},\n  \"commands_total\": {total},\n  \
             \"wall_ms\": {},\n  \"throughput_cmds_per_s\": {:.0},\n  \
             \"server_threads\": {server_threads},\n  \
             \"os_threads_under_load\": {threads_under_load},\n  \
             \"plan_cache_hits\": {cache_hits},\n  \"plan_cache_misses\": {cache_misses},\n  \
             \"plan_cache_hit_rate\": {:.3},\n  \"latency\": [\n{}\n  ]\n}}\n",
            wall.as_millis(),
            throughput,
            hit_rate,
            case_lines.join(",\n"),
            server_threads_minus2 = server_threads - 2,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    }
}

fn fmt_ns(ns: u128) -> String {
    mix_bench::harness::fmt_duration(Duration::from_nanos(ns as u64))
}
