//! Served-mode benchmark: N concurrent wire sessions against one
//! `mix-serve` server over loopback, measuring per-command round-trip
//! latency (p50/p95/p99 by command class) and aggregate command
//! throughput.
//!
//! Each session is the same navigation-heavy script: one Q1 query,
//! then a sibling walk over the first children (`d`/`r` + `fl` each),
//! one bulk `export`, one `stats`. The script matches what the
//! equivalence suite pins against an in-process session, and the bench
//! re-asserts one render against an in-process run before timing, so
//! the numbers describe the wire overhead on *correct* traffic.
//!
//! Pass `--smoke` for a seconds-scale CI run (8 sessions, small
//! database, no JSON). The full run drives 64 concurrent sessions and
//! rewrites `BENCH_serve.json` at the repo root.

use mix::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BROWSE: usize = 50;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

#[derive(Default)]
struct Lats {
    query: Vec<u128>,
    nav: Vec<u128>,
    export: Vec<u128>,
}

impl Lats {
    fn absorb(&mut self, other: Lats) {
        self.query.extend(other.query);
        self.nav.extend(other.nav);
        self.export.extend(other.export);
    }
    fn total(&self) -> usize {
        self.query.len() + self.nav.len() + self.export.len()
    }
}

/// One session's script; returns per-command latencies by class.
fn session_script(addr: std::net::SocketAddr) -> Lats {
    let mut lats = Lats::default();
    let mut client = WireClient::connect(addr).expect("connect");
    let timed = |lat: &mut Vec<u128>, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        lat.push(t.elapsed().as_nanos());
    };
    let mut p0 = None;
    timed(&mut lats.query, &mut || {
        p0 = Some(client.query(mix_bench::Q1).expect("query"));
    });
    let p0 = p0.unwrap();
    // Sibling walk: d once, then (fl, r) per child.
    let mut cur = None;
    timed(&mut lats.nav, &mut || {
        cur = client.d(p0).expect("d");
    });
    let mut seen = 0;
    while let Some(c) = cur {
        seen += 1;
        timed(&mut lats.nav, &mut || {
            client.fl(c).expect("fl");
        });
        if seen >= BROWSE {
            break;
        }
        timed(&mut lats.nav, &mut || {
            cur = client.r(c).expect("r");
        });
    }
    timed(&mut lats.export, &mut || {
        client.export(p0, BROWSE as u32).expect("export");
    });
    client.stats().expect("stats");
    client.close().expect("close");
    lats
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, n_customers) = if smoke { (8, 60) } else { (64, 500) };
    let orders_per = 2;

    let factory: Arc<dyn Fn() -> Mediator + Send + Sync> = Arc::new(move || {
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, 31);
        Mediator::with_options(
            catalog,
            MediatorOptions::builder()
                .access(AccessMode::Lazy)
                .optimize(true)
                .build(),
        )
    });

    // Correctness pin before timing: one wire render equals the
    // in-process render of the same node.
    {
        let mut server =
            Server::start("127.0.0.1:0", ServerConfig::default(), Arc::clone(&factory))
                .expect("bind");
        let mut client = WireClient::connect(server.addr()).expect("connect");
        let w0 = client.query(mix_bench::Q1).expect("query");
        let w1 = client.d(w0).expect("d").expect("nonempty");
        let wire_render = client.render(w1).expect("render");
        client.close().expect("close");
        server.shutdown();
        let m = factory();
        let mut s = m.session();
        let p0 = s.query(mix_bench::Q1).expect("query");
        let p1 = s.d(p0).expect("d").expect("nonempty");
        assert_eq!(wire_render, s.render(p1), "wire and in-process diverge");
    }

    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: sessions * 2,
            ..ServerConfig::default()
        },
        Arc::clone(&factory),
    )
    .expect("bind");
    let addr = server.addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|_| std::thread::spawn(move || session_script(addr)))
        .collect();
    let mut lats = Lats::default();
    for h in handles {
        lats.absorb(h.join().expect("session thread"));
    }
    let wall = t0.elapsed();
    let opened = server.stats().get(Counter::SessionsOpened);
    server.shutdown();
    assert_eq!(opened as usize, sessions, "admission failed under load");
    assert_eq!(active_prefetchers(), 0, "leaked prefetcher threads");

    let total = lats.total();
    let throughput = total as f64 / wall.as_secs_f64();
    println!(
        "serve_bench: {sessions} concurrent sessions, {total} commands in {:?} \
         ({throughput:.0} cmd/s)",
        wall
    );
    let mut classes: Vec<(&str, Vec<u128>)> = vec![
        ("query", lats.query),
        ("nav", lats.nav),
        ("export", lats.export),
    ];
    let mut case_lines = Vec::new();
    for (name, lat) in classes.iter_mut() {
        lat.sort();
        let (p50, p95, p99) = (
            percentile(lat, 0.50),
            percentile(lat, 0.95),
            percentile(lat, 0.99),
        );
        println!(
            "  {name:<8} n={:<6} p50={} p95={} p99={}",
            lat.len(),
            fmt_ns(p50),
            fmt_ns(p95),
            fmt_ns(p99),
        );
        case_lines.push(format!(
            "    {{ \"case\": \"{name}\", \"count\": {}, \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"p99_ns\": {p99} }}",
            lat.len()
        ));
    }

    if !smoke {
        let json = format!(
            "{{\n  \"description\": \"Served-mode wire benchmark: {sessions} concurrent loopback \
             sessions against one mix-serve server, each a fresh mediator over a \
             {n_customers}x{orders_per} customers/orders database on its own worker thread. Each \
             session runs one Q1 query, a {BROWSE}-sibling d/r+fl walk, one bulk export and a \
             stats snapshot; latencies are client-observed round trips per command class. Wire \
             output is pinned bit-identical to an in-process session by the equivalence suite \
             (crates/serve/tests/serve.rs) and re-asserted by this bench before timing. \
             Regenerate with `cargo bench -p mix-bench --bench serve_bench`.\",\n  \
             \"sessions\": {sessions},\n  \"commands_total\": {total},\n  \
             \"wall_ms\": {},\n  \"throughput_cmds_per_s\": {:.0},\n  \"latency\": [\n{}\n  ]\n}}\n",
            wall.as_millis(),
            throughput,
            case_lines.join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    }
}

fn fmt_ns(ns: u128) -> String {
    mix_bench::harness::fmt_duration(Duration::from_nanos(ns as u64))
}
