//! Shared foundations for the MIX mediator workspace.
//!
//! This crate holds the pieces every other MIX crate needs and that must
//! agree across crate boundaries:
//!
//! * [`Value`] — the scalar domain `D` of the paper's data model
//!   ("string-like" constants plus the numeric types the relational
//!   sources produce), with the comparison semantics used by `WHERE`
//!   clauses and XMAS `select`/`join` conditions.
//! * [`CmpOp`] — the relational operators `=, !=, <, <=, >, >=` of the
//!   Fig. 4 grammar.
//! * [`Name`] — cheaply clonable identifiers for variables, labels,
//!   table and column names.
//! * [`MixError`] / [`Result`] — the workspace-wide error type, with
//!   [`ResultContext`] for attributing failures to a source.
//! * [`Stats`] — typed per-source counters (queries issued, tuples
//!   shipped, navigation commands served) that make the paper's
//!   performance claims measurable; re-exported from `mix-obs`
//!   together with [`Counter`], [`Snapshot`] and [`Delta`].

pub mod block;
pub mod column;
pub mod error;
pub mod intern;
pub mod name;
pub mod pool;
pub mod prefetch;
pub mod retry;
pub mod ring;
pub mod shard;
pub mod stats;
pub mod value;

pub use block::{BlockPolicy, BlockRamp, MAX_AUTO_BLOCK};
pub use column::{ColData, Column, ColumnBlock};
pub use error::{BackendError, FaultKind, MixError, Result, ResultContext};
pub use intern::intern;
pub use name::Name;
pub use pool::{JobHandle, Pool, PoolJob, Step};
pub use prefetch::{PrefetchPolicy, AUTO_PREFETCH_DEPTH};
pub use retry::RetryPolicy;
pub use shard::{ShardedLru, DEFAULT_SHARDS};
pub use stats::{BlockRows, Counter, Delta, Snapshot, Stats};
pub use value::{CmpOp, Value};
