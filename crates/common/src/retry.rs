//! Retry policy for fallible backends.
//!
//! Remote sources fail; the mediator's job is to keep a session alive
//! through the failures a retry can fix. [`RetryPolicy`] bounds that
//! effort along two axes: a retry-count budget and (optionally) a
//! wall-clock deadline per command, with exponential backoff between
//! attempts. Transient faults within budget are invisible to the
//! layers above (the lazy cursor re-issues the same block pull, so the
//! adaptive ramp is undisturbed); permanent faults and exhausted
//! budgets surface as [`crate::MixError::Backend`].

/// Bounded retry with exponential backoff and a per-command deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a failed pull may be re-issued (0 disables
    /// retrying entirely).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds. Doubles per
    /// attempt up to [`RetryPolicy::max_backoff_ms`]. The default is 0:
    /// deterministic tests should not sleep.
    pub base_backoff_ms: u64,
    /// Ceiling for the exponential backoff.
    pub max_backoff_ms: u64,
    /// Total budget (milliseconds of backoff) a single command may
    /// spend retrying; `None` means only `max_retries` bounds the loop.
    pub deadline_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 0,
            max_backoff_ms: 100,
            deadline_ms: None,
        }
    }
}

impl RetryPolicy {
    /// No retrying at all: every backend error surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            deadline_ms: None,
        }
    }

    /// The backoff to sleep before retry number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped at `max_backoff_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let factor = 1u64 << attempt.saturating_sub(1).min(32);
        self.base_backoff_ms
            .saturating_mul(factor)
            .min(self.max_backoff_ms)
    }

    /// Would retry `attempt` (1-based) exceed the budget, given the
    /// backoff milliseconds already spent?
    pub fn allows(&self, attempt: u32, spent_backoff_ms: u64) -> bool {
        if attempt > self.max_retries {
            return false;
        }
        match self.deadline_ms {
            Some(budget) => spent_backoff_ms.saturating_add(self.backoff_ms(attempt)) <= budget,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            deadline_ms: None,
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 50); // capped
        assert_eq!(p.backoff_ms(60), 50); // huge attempts don't overflow
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy::default();
        for a in 1..10 {
            assert_eq!(p.backoff_ms(a), 0);
        }
    }

    #[test]
    fn budget_bounds_the_loop() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            deadline_ms: None,
        };
        assert!(p.allows(1, 0));
        assert!(p.allows(3, 0));
        assert!(!p.allows(4, 0));
        assert!(!RetryPolicy::none().allows(1, 0));
        // Deadline: attempt 2 would sleep 20ms on top of 90ms spent.
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            deadline_ms: Some(100),
        };
        assert!(p.allows(1, 0));
        assert!(!p.allows(2, 90));
    }
}
