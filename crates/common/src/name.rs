//! Cheap, clonable identifiers.
//!
//! Variables (`$C`), element labels (`CustRec`), table and column names
//! are copied around constantly by the translator, rewriter and engine.
//! [`Name`] wraps `Arc<str>` so clones are reference-count bumps, while
//! still comparing and hashing by string content. The atomic count (vs
//! `Rc`) is what lets rows crossing the prefetch thread boundary carry
//! their names along: `Name` is `Send + Sync`.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned-style identifier: variable, label, table or column name.
///
/// Variables are stored *without* the `$` sigil; [`Name::display_var`]
/// renders them with it.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Create a name from any string-ish input, stripping one leading
    /// `$` sigil if present (so `Name::new("$C") == Name::new("C")`).
    pub fn new(s: impl AsRef<str>) -> Name {
        let s = s.as_ref();
        let s = s.strip_prefix('$').unwrap_or(s);
        Name(Arc::from(s))
    }

    /// The raw text (no sigil).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Render as a variable: `$C`.
    pub fn display_var(&self) -> String {
        format!("${}", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigil_is_stripped() {
        assert_eq!(Name::new("$C"), Name::new("C"));
        assert_eq!(Name::new("$C").as_str(), "C");
        assert_eq!(Name::new("$C").display_var(), "$C");
    }

    #[test]
    fn compares_by_content() {
        let a = Name::new("x");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(
            Name::new("a").cmp(&Name::new("b")),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn borrows_as_str_for_map_lookup() {
        use std::collections::HashMap;
        let mut m: HashMap<Name, i32> = HashMap::new();
        m.insert(Name::new("k"), 1);
        assert_eq!(m.get("k"), Some(&1));
    }
}
