//! Block-at-a-time execution policy.
//!
//! The paper's lazy mediator ships **one tuple per navigation command**
//! end-to-end, which is exactly right for partial result evaluation but
//! makes every row of a full drain pay the whole per-call overhead of
//! the cursor → wrapper → engine → QDOM stack. [`BlockPolicy`] controls
//! how many rows each pull may fetch:
//!
//! * [`BlockPolicy::Off`] — the paper-faithful mode: every pull ships
//!   exactly one tuple. All laziness counters match the paper's model
//!   bit for bit.
//! * [`BlockPolicy::Fixed`]`(n)` — every pull after the first fetches up
//!   to `n` rows.
//! * [`BlockPolicy::Auto`] (default) — adaptive ramp-up: 1, 2, 4, …
//!   doubling up to [`MAX_AUTO_BLOCK`]. The first pull still ships
//!   exactly one tuple, so a session that navigates to the first tuple
//!   and stops is indistinguishable from `Off`; a drain converges to
//!   full blocks and the total overfetch of an early stop is bounded by
//!   the rows already consumed (< 2x).
//!
//! The ramp state lives in [`BlockRamp`], one per cursor-like consumer.

/// How many rows a lazy consumer may fetch per pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockPolicy {
    /// One tuple per pull (the paper's model).
    Off,
    /// Up to `n` rows per pull after the first (values are clamped to
    /// at least 1; `Fixed(1)` is equivalent to `Off`).
    Fixed(usize),
    /// Adaptive ramp-up: 1, 2, 4, … up to [`MAX_AUTO_BLOCK`].
    #[default]
    Auto,
}

/// Ceiling for [`BlockPolicy::Auto`]'s ramp.
pub const MAX_AUTO_BLOCK: usize = 512;

impl BlockPolicy {
    /// A fresh ramp for one cursor under this policy. `Fixed(0)` is
    /// normalized to `Fixed(1)` here, so no ramp can ever ask a cursor
    /// for a zero-row block (which consumers would read as exhaustion).
    pub fn ramp(self) -> BlockRamp {
        BlockRamp {
            policy: self.normalized(),
            next: 1,
        }
    }

    /// The policy with degenerate parameters pinned: `Fixed(0)` →
    /// `Fixed(1)`; everything else unchanged.
    pub fn normalized(self) -> BlockPolicy {
        match self {
            BlockPolicy::Fixed(0) => BlockPolicy::Fixed(1),
            other => other,
        }
    }

    /// Short label for EXPLAIN output and span attributes.
    pub fn label(self) -> String {
        match self {
            BlockPolicy::Off => "off".to_string(),
            BlockPolicy::Fixed(n) => format!("fixed({})", n.max(1)),
            BlockPolicy::Auto => "auto".to_string(),
        }
    }
}

/// Per-cursor adaptive block sizing (see [`BlockPolicy`]).
///
/// ```
/// use mix_common::block::BlockPolicy;
/// let mut ramp = BlockPolicy::Auto.ramp();
/// assert_eq!(ramp.next_size(), 1); // first pull: exactly one tuple
/// assert_eq!(ramp.next_size(), 2);
/// assert_eq!(ramp.next_size(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BlockRamp {
    policy: BlockPolicy,
    next: usize,
}

impl BlockRamp {
    /// Floor the ramp's restart point: the next `Auto` pull starts at
    /// `floor` (capped at [`MAX_AUTO_BLOCK`]) instead of 1 and doubles
    /// from there. `Off` and `Fixed` ramps are unchanged — their sizes
    /// are the policy, not an adaptation.
    ///
    /// This is the fix for the small-block re-ramp regression: when a
    /// session has already demonstrated block-sized appetite (a join
    /// drain, say), restarting every subsequent cursor at 1-row blocks
    /// just re-pays per-pull overhead the ramp already learned to
    /// amortize. The *first* cursor of a session still starts at 1, so
    /// first-`d()`-ships-one-row laziness is untouched.
    pub fn with_floor(mut self, floor: usize) -> BlockRamp {
        if matches!(self.policy, BlockPolicy::Auto) {
            self.next = self.next.max(floor.clamp(1, MAX_AUTO_BLOCK));
        }
        self
    }

    /// The number of rows the next pull should fetch; advances the
    /// ramp. Always ≥ 1, and always exactly 1 on the first call.
    pub fn next_size(&mut self) -> usize {
        match self.policy {
            BlockPolicy::Off => 1,
            BlockPolicy::Fixed(n) => {
                let size = self.next.min(n.max(1));
                self.next = n.max(1);
                size
            }
            BlockPolicy::Auto => {
                // Saturating: on an arbitrarily long drain the ramp
                // pins at the ceiling instead of wrapping.
                let size = self.next.min(MAX_AUTO_BLOCK);
                self.next = self.next.saturating_mul(2).min(MAX_AUTO_BLOCK);
                size
            }
        }
    }

    /// The policy this ramp follows.
    pub fn policy(&self) -> BlockPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_fixed_one_always_ship_one() {
        let mut off = BlockPolicy::Off.ramp();
        let mut one = BlockPolicy::Fixed(1).ramp();
        for _ in 0..5 {
            assert_eq!(off.next_size(), 1);
            assert_eq!(one.next_size(), 1);
        }
    }

    #[test]
    fn auto_doubles_to_the_ceiling() {
        let mut r = BlockPolicy::Auto.ramp();
        let mut sizes = Vec::new();
        for _ in 0..12 {
            sizes.push(r.next_size());
        }
        assert_eq!(sizes[..4], [1, 2, 4, 8]);
        assert_eq!(*sizes.last().unwrap(), MAX_AUTO_BLOCK);
        assert!(sizes.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn fixed_ramps_from_one() {
        // Fixed(n) still starts at 1 so the first d(root) ships exactly
        // one tuple, then jumps straight to n.
        let mut r = BlockPolicy::Fixed(8).ramp();
        assert_eq!(r.next_size(), 1);
        assert_eq!(r.next_size(), 8);
        assert_eq!(r.next_size(), 8);
        // Fixed(0) is clamped.
        let mut z = BlockPolicy::Fixed(0).ramp();
        assert_eq!(z.next_size(), 1);
        assert_eq!(z.next_size(), 1);
    }

    #[test]
    fn ramp_is_pinned_at_the_boundaries() {
        // A drain far longer than any relation never overflows and
        // never exceeds the ceiling.
        let mut r = BlockPolicy::Auto.ramp();
        for _ in 0..10_000 {
            let s = r.next_size();
            assert!((1..=MAX_AUTO_BLOCK).contains(&s));
        }
        assert_eq!(r.next_size(), MAX_AUTO_BLOCK);
        // Fixed(0) is normalized to Fixed(1) at ramp construction.
        let z = BlockPolicy::Fixed(0).ramp();
        assert_eq!(z.policy(), BlockPolicy::Fixed(1));
        assert_eq!(BlockPolicy::Fixed(0).normalized(), BlockPolicy::Fixed(1));
        assert_eq!(BlockPolicy::Auto.normalized(), BlockPolicy::Auto);
        assert_eq!(BlockPolicy::Fixed(8).normalized(), BlockPolicy::Fixed(8));
    }

    #[test]
    fn floor_lifts_auto_restart_only() {
        // Auto: the ramp restarts at the floor and doubles from there.
        let mut r = BlockPolicy::Auto.ramp().with_floor(16);
        assert_eq!(r.next_size(), 16);
        assert_eq!(r.next_size(), 32);
        // The floor never exceeds the ceiling and never lowers a ramp
        // that is already past it.
        let mut hi = BlockPolicy::Auto.ramp().with_floor(10_000);
        assert_eq!(hi.next_size(), MAX_AUTO_BLOCK);
        let mut warm = BlockPolicy::Auto.ramp();
        warm.next_size(); // 1
        warm.next_size(); // 2
        let mut warm = warm.with_floor(2);
        assert_eq!(warm.next_size(), 4);
        // Off and Fixed are policies, not adaptations: unchanged.
        let mut off = BlockPolicy::Off.ramp().with_floor(64);
        assert_eq!(off.next_size(), 1);
        let mut fixed = BlockPolicy::Fixed(8).ramp().with_floor(64);
        assert_eq!(fixed.next_size(), 1);
        assert_eq!(fixed.next_size(), 8);
    }

    #[test]
    fn labels_for_explain() {
        assert_eq!(BlockPolicy::Off.label(), "off");
        assert_eq!(BlockPolicy::Fixed(64).label(), "fixed(64)");
        assert_eq!(BlockPolicy::Fixed(0).label(), "fixed(1)");
        assert_eq!(BlockPolicy::Auto.label(), "auto");
        assert_eq!(BlockPolicy::default(), BlockPolicy::Auto);
    }
}
