//! The scalar value domain `D` and comparison semantics.
//!
//! The paper's data model gives vertices labels from a set of constants
//! `D` that "includes all string-like data, i.e., element names,
//! character content, etc.". Because MIX wraps relational databases, the
//! leaf values flowing through the engine are typed: integers, floats,
//! booleans and strings. [`Value`] covers that domain; comparisons
//! follow SQL-ish rules (numeric cross-type comparison, lexicographic
//! strings, `Null` incomparable).

use crate::intern::intern;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A scalar constant: the domain `D` of the labeled-ordered-tree model,
/// plus the typed values relational sources produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL / absent value. Never equal to anything, including itself,
    /// under [`Value::compare`]; equal to itself under `Eq` (so values can
    /// key hash maps and be deduplicated).
    Null,
    /// Boolean constant.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to `Null` at construction sites;
    /// `Float` payloads are expected to be non-NaN.
    Float(f64),
    /// String / character content. The payload is a shared `Arc<str>`
    /// (see [`mod@crate::intern`]): cloning a string cell is a
    /// reference-count bump, and repeated parsed literals share one
    /// allocation.
    Str(Arc<str>),
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a textual token into the most specific value type:
    /// integer, then float, then bool, falling back to an interned
    /// string.
    ///
    /// This is how the XML parser and the wrapper type leaf content.
    /// A numeric parse is accepted only when re-rendering the parsed
    /// value reproduces the input exactly, so `parse_literal` is a
    /// left inverse of [`Display`](fmt::Display) and canonicalization
    /// can never change observable output: `"007"`, `"1e3"` or `"+5"`
    /// stay strings instead of collapsing to `7`, `1000.0` or `5`.
    pub fn parse_literal(s: &str) -> Value {
        if let Ok(i) = s.parse::<i64>() {
            let v = Value::Int(i);
            if v.to_string() == s {
                return v;
            }
        }
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                let v = Value::Float(f);
                if v.to_string() == s {
                    return v;
                }
            }
        }
        match s {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Str(intern(s)),
        }
    }

    /// Total ordering used for deterministic output (sorting, group
    /// keys). Unlike [`Value::compare`], this orders across types
    /// (Null < Bool < numeric < Str) and is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// SQL-style comparison: `None` when the operands are incomparable
    /// (either is `Null`, or the types are incompatible, e.g. a string
    /// against an integer).
    ///
    /// Query conditions built on this treat `None` as *false*, matching
    /// the paper's select semantics (a tuple qualifies only when the
    /// condition evaluates to true).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Evaluate `self op other` with [`Value::compare`] semantics;
    /// incomparable operands yield `false`.
    pub fn satisfies(&self, op: CmpOp, other: &Value) -> bool {
        match self.compare(other) {
            Some(ord) => op.matches(ord),
            None => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // Integral floats always render with a `.0` suffix — even at
            // and above 1e15, where they previously printed like plain
            // integers and broke the `parse_literal` round trip.
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

/// The comparison operators of the Fig. 4 grammar
/// (`RelOp ::= = | != | < | <= | > | >=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does an ordering outcome satisfy this operator?
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with operands swapped: `a op b == b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation: `!(a op b) == a op.negate() b` (for non-null
    /// comparable operands).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Parse the textual operator as it appears in XQuery and SQL.
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" | "==" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_literal_types() {
        assert_eq!(Value::parse_literal("42"), Value::Int(42));
        assert_eq!(Value::parse_literal("-7"), Value::Int(-7));
        assert_eq!(Value::parse_literal("2.5"), Value::Float(2.5));
        assert_eq!(Value::parse_literal("true"), Value::Bool(true));
        assert_eq!(Value::parse_literal("XYZ123"), Value::str("XYZ123"));
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert!(Value::Int(2).satisfies(CmpOp::Lt, &Value::Float(2.5)));
        assert!(Value::Float(3.0).satisfies(CmpOp::Eq, &Value::Int(3)));
    }

    #[test]
    fn null_is_incomparable() {
        assert!(!Value::Null.satisfies(CmpOp::Eq, &Value::Null));
        assert!(!Value::Int(1).satisfies(CmpOp::Ne, &Value::Null));
    }

    #[test]
    fn incompatible_types_are_false() {
        assert!(!Value::str("a").satisfies(CmpOp::Lt, &Value::Int(1)));
        assert!(!Value::str("a").satisfies(CmpOp::Eq, &Value::Int(1)));
    }

    #[test]
    fn string_compare_is_lexicographic() {
        // The paper's Q2: customer name < "B" selects names starting with "A".
        assert!(Value::str("ABCInc.").satisfies(CmpOp::Lt, &Value::str("B")));
        assert!(!Value::str("XYZInc.").satisfies(CmpOp::Lt, &Value::str("B")));
    }

    #[test]
    fn total_cmp_is_total_and_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::str("a")), Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Equal);
    }

    #[test]
    fn op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn display_round_trip() {
        for v in [Value::Int(5), Value::str("x"), Value::Bool(true)] {
            assert_eq!(Value::parse_literal(&v.to_string()), v);
        }
    }

    #[test]
    fn display_round_trip_large_integral_floats() {
        // ≥ 1e15 with zero fraction used to print like an integer and
        // come back as Value::Int.
        for x in [1e15, 1e16, 2.0f64.powi(60), 1e300, -1e15] {
            let v = Value::Float(x);
            assert_eq!(Value::parse_literal(&v.to_string()), v, "x={x}");
        }
    }

    #[test]
    fn numeric_looking_strings_stay_strings() {
        // Non-canonical numeric spellings must not collapse: rendering
        // would change the observable text.
        for s in ["007", "+5", "1e3", "0x10", " 42", "2.50", "1_000", "-0"] {
            let v = Value::parse_literal(s);
            assert_eq!(v, Value::str(s), "literal {s:?}");
            assert_eq!(v.to_string(), s, "round trip {s:?}");
        }
        // Canonical spellings still parse to their typed values.
        assert_eq!(Value::parse_literal("-7"), Value::Int(-7));
        assert_eq!(Value::parse_literal("2.5"), Value::Float(2.5));
        assert_eq!(Value::parse_literal("-0.0"), Value::Float(-0.0));
    }

    #[test]
    fn parsed_string_literals_are_interned() {
        let a = Value::parse_literal("not-a-number-at-all");
        let b = Value::parse_literal("not-a-number-at-all");
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(std::sync::Arc::ptr_eq(x, y)),
            _ => panic!("expected strings, got {a:?} / {b:?}"),
        }
    }
}
