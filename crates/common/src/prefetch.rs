//! Pipelined-prefetch policy.
//!
//! The paper's mediator pulls from a backend cursor *synchronously*:
//! every block pull stalls the whole mediator for one backend round
//! trip. [`PrefetchPolicy`] controls whether a cursor, once its first
//! block has been demanded, hands the remaining pulls to a background
//! prefetcher thread that keeps up to `depth` blocks in flight over a
//! bounded channel — overlapping backend latency with mediator-side
//! operator work.
//!
//! Laziness is preserved by construction: the prefetcher is armed only
//! *after* the first demanded pull (which is served synchronously, so
//! the first `d()` still ships exactly one row), and it follows the
//! same [`crate::BlockRamp`] schedule the synchronous path would, so
//! `BlocksShipped`/`BlockRows` accounting — and the chaos backend's
//! fault schedule, which keys off the pull-size sequence — are
//! bit-for-bit identical.

/// How many blocks a cursor may speculatively keep in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchPolicy {
    /// No speculation — every pull is a synchronous backend round trip
    /// (the paper's model).
    #[default]
    Off,
    /// Keep up to `n` blocks in flight (values are clamped to at least
    /// 1; `Depth(0)` is normalized to `Depth(1)`).
    Depth(usize),
    /// Speculate only when it can pay: on statements whose backend
    /// models a nonzero round-trip time, keep [`AUTO_PREFETCH_DEPTH`]
    /// blocks in flight; on zero-RTT (local) backends stay synchronous,
    /// since there is no latency to overlap and the thread + channel
    /// would be pure overhead.
    Auto,
}

/// Channel capacity used by [`PrefetchPolicy::Auto`]. Four in-flight
/// blocks is enough to hide one block of backend round-trip time behind
/// mediator work at every ramp stage while bounding readahead to a
/// small constant multiple of what the consumer already demanded.
pub const AUTO_PREFETCH_DEPTH: usize = 4;

impl PrefetchPolicy {
    /// Is any speculation enabled at all?
    pub fn enabled(self) -> bool {
        !matches!(self, PrefetchPolicy::Off)
    }

    /// The channel depth this policy wants, or `None` for `Off`.
    pub fn depth(self) -> Option<usize> {
        match self {
            PrefetchPolicy::Off => None,
            PrefetchPolicy::Depth(n) => Some(n.max(1)),
            PrefetchPolicy::Auto => Some(AUTO_PREFETCH_DEPTH),
        }
    }

    /// The policy with degenerate parameters pinned: `Depth(0)` →
    /// `Depth(1)`; everything else unchanged. Plan-cache keys use this
    /// so equivalent knob settings share cache entries.
    pub fn normalized(self) -> PrefetchPolicy {
        match self {
            PrefetchPolicy::Depth(0) => PrefetchPolicy::Depth(1),
            other => other,
        }
    }

    /// Short label for EXPLAIN output and span attributes.
    pub fn label(self) -> String {
        match self {
            PrefetchPolicy::Off => "off".to_string(),
            PrefetchPolicy::Depth(n) => format!("depth({})", n.max(1)),
            PrefetchPolicy::Auto => "auto".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_disables_depth() {
        assert_eq!(PrefetchPolicy::default(), PrefetchPolicy::Off);
        assert!(!PrefetchPolicy::Off.enabled());
        assert_eq!(PrefetchPolicy::Off.depth(), None);
    }

    #[test]
    fn depth_is_clamped_and_normalized() {
        assert_eq!(PrefetchPolicy::Depth(0).depth(), Some(1));
        assert_eq!(PrefetchPolicy::Depth(3).depth(), Some(3));
        assert_eq!(
            PrefetchPolicy::Depth(0).normalized(),
            PrefetchPolicy::Depth(1)
        );
        assert_eq!(PrefetchPolicy::Auto.normalized(), PrefetchPolicy::Auto);
        assert_eq!(PrefetchPolicy::Auto.depth(), Some(AUTO_PREFETCH_DEPTH));
    }

    #[test]
    fn labels_for_explain() {
        assert_eq!(PrefetchPolicy::Off.label(), "off");
        assert_eq!(PrefetchPolicy::Depth(0).label(), "depth(1)");
        assert_eq!(PrefetchPolicy::Depth(4).label(), "depth(4)");
        assert_eq!(PrefetchPolicy::Auto.label(), "auto");
    }
}
