//! A bounded SPSC channel for the prefetch pipeline.
//!
//! `std::sync::mpsc` has no bounded non-blocking/blocking hybrid with
//! the close semantics the prefetcher needs, and the workspace takes no
//! external dependencies — so this is a small `Mutex` + `Condvar` ring:
//!
//! * [`Sender::send`] blocks while the ring is full (this is the
//!   back-pressure that bounds readahead to the channel capacity) and
//!   returns `Err` once the receiver is gone, which is how a dropped
//!   cursor cancels a producer blocked mid-`send`.
//! * [`Receiver::recv`] blocks while the ring is empty and returns
//!   `None` once the sender is gone *and* the ring is drained — channel
//!   close is how the producer signals exhaustion.
//! * [`Receiver::try_recv`] never blocks; the prefetching cursor uses
//!   it to distinguish "block was already waiting" (a prefetch hit)
//!   from "must stall" (counted in `PrefetchStallNs`).
//!
//! For the *pooled* prefetch executor the producer must never block a
//! shared worker, so the ring also offers [`Sender::try_send`] plus a
//! consumer-side waker hook ([`Receiver::set_waker`]): the callback
//! fires whenever a slot frees up (an item is popped) or the receiver
//! is dropped, which is how a parked producer job gets re-enqueued.
//!
//! Capacity is fixed at construction. One producer, one consumer; the
//! handles are `Send` but not `Clone`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    q: Mutex<Ring<T>>,
    /// Producer waits on this when full; consumer when empty. One
    /// condvar is enough for SPSC: at most one thread waits per side.
    cv: Condvar,
    /// Fired (outside the ring lock) when a slot frees up or the
    /// receiver goes away — the pooled producer's wake signal.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl<T> Shared<T> {
    fn fire_waker(&self) {
        let w = self.waker.lock().unwrap().clone();
        if let Some(w) = w {
            w();
        }
    }
}

struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Producer half of a [`channel`].
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a [`channel`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Result of a non-blocking [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySend<T> {
    /// The item was enqueued.
    Sent,
    /// The ring is full; the item is handed back — park and retry
    /// after the waker fires.
    Full(T),
    /// The receiver is gone; the item is handed back — the producer
    /// has been cancelled.
    Closed(T),
}

/// Result of a non-blocking [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// An item was waiting.
    Item(T),
    /// Nothing buffered, but the producer is still running.
    Empty,
    /// Producer gone and the ring drained: the stream is exhausted.
    Closed,
}

/// A bounded channel of capacity `cap` (clamped to at least 1).
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        q: Mutex::new(Ring {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            sender_alive: true,
            receiver_alive: true,
        }),
        cv: Condvar::new(),
        waker: Mutex::new(None),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue `item`. Returns
    /// `Err(item)` if the receiver is gone — the producer should treat
    /// that as cancellation and wind down.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut q = self.shared.q.lock().unwrap();
        loop {
            if !q.receiver_alive {
                return Err(item);
            }
            if q.buf.len() < q.cap {
                q.buf.push_back(item);
                self.shared.cv.notify_all();
                return Ok(());
            }
            q = self.shared.cv.wait(q).unwrap();
        }
    }

    /// Non-blocking enqueue: never waits, handing the item back when
    /// the ring is full ([`TrySend::Full`]) or the receiver is gone
    /// ([`TrySend::Closed`]). The pooled prefetch producer's send path.
    pub fn try_send(&self, item: T) -> TrySend<T> {
        let mut q = self.shared.q.lock().unwrap();
        if !q.receiver_alive {
            return TrySend::Closed(item);
        }
        if q.buf.len() < q.cap {
            q.buf.push_back(item);
            self.shared.cv.notify_all();
            TrySend::Sent
        } else {
            TrySend::Full(item)
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().unwrap();
        q.sender_alive = false;
        self.shared.cv.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Register the free-slot callback: fired after every successful
    /// pop and when this receiver is dropped. At most one waker; a
    /// later call replaces the earlier one.
    pub fn set_waker(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.shared.waker.lock().unwrap() = Some(Arc::new(f));
    }

    /// Block until an item arrives; `None` once the channel is closed
    /// and drained.
    pub fn recv(&self) -> Option<T> {
        let item = {
            let mut q = self.shared.q.lock().unwrap();
            loop {
                if let Some(item) = q.buf.pop_front() {
                    self.shared.cv.notify_all();
                    break item;
                }
                if !q.sender_alive {
                    return None;
                }
                q = self.shared.cv.wait(q).unwrap();
            }
        };
        self.shared.fire_waker();
        Some(item)
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> TryRecv<T> {
        let popped = {
            let mut q = self.shared.q.lock().unwrap();
            match q.buf.pop_front() {
                Some(item) => {
                    self.shared.cv.notify_all();
                    Some(item)
                }
                None if !q.sender_alive => return TryRecv::Closed,
                None => None,
            }
        };
        match popped {
            Some(item) => {
                self.shared.fire_waker();
                TryRecv::Item(item)
            }
            None => TryRecv::Empty,
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().unwrap();
        q.receiver_alive = false;
        // Unbuffered items are dropped with the shared ring; what
        // matters is waking a producer blocked in `send` so it can see
        // the cancellation.
        self.shared.cv.notify_all();
        drop(q);
        // And waking a *parked* pooled producer so it can wind down.
        self.shared.fire_waker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ships_in_order_and_closes_on_sender_drop() {
        let (tx, rx) = channel(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.try_recv(), TryRecv::Item(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), TryRecv::<i32>::Closed);
    }

    #[test]
    fn empty_try_recv_does_not_block() {
        let (tx, rx) = channel::<i32>(1);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        drop(tx);
        assert_eq!(rx.try_recv(), TryRecv::<i32>::Closed);
    }

    #[test]
    fn full_channel_blocks_until_consumed() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the consumer makes room; succeeds after.
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        t.join().unwrap();
    }

    #[test]
    fn receiver_drop_unblocks_and_cancels_sender() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        // Give the producer a moment to block on the full ring, then
        // drop the consumer: the blocked send must return Err(2).
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(2));
    }

    #[test]
    fn try_send_full_and_closed() {
        let (tx, rx) = channel(1);
        assert_eq!(tx.try_send(1), TrySend::Sent);
        assert_eq!(tx.try_send(2), TrySend::Full(2));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.try_send(3), TrySend::Sent);
        drop(rx);
        assert_eq!(tx.try_send(4), TrySend::Closed(4));
    }

    #[test]
    fn waker_fires_on_pop_and_receiver_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fired = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel(2);
        {
            let fired = Arc::clone(&fired);
            rx.set_waker(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Some(1)); // pop → wake
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(rx.try_recv(), TryRecv::Item(2)); // pop → wake
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(rx.try_recv(), TryRecv::Empty); // no pop → no wake
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        drop(rx); // drop → wake
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = channel(0);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Some(7));
    }
}
