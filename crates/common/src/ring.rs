//! A bounded SPSC channel for the prefetch pipeline.
//!
//! `std::sync::mpsc` has no bounded non-blocking/blocking hybrid with
//! the close semantics the prefetcher needs, and the workspace takes no
//! external dependencies — so this is a small `Mutex` + `Condvar` ring:
//!
//! * [`Sender::send`] blocks while the ring is full (this is the
//!   back-pressure that bounds readahead to the channel capacity) and
//!   returns `Err` once the receiver is gone, which is how a dropped
//!   cursor cancels a producer blocked mid-`send`.
//! * [`Receiver::recv`] blocks while the ring is empty and returns
//!   `None` once the sender is gone *and* the ring is drained — channel
//!   close is how the producer signals exhaustion.
//! * [`Receiver::try_recv`] never blocks; the prefetching cursor uses
//!   it to distinguish "block was already waiting" (a prefetch hit)
//!   from "must stall" (counted in `PrefetchStallNs`).
//!
//! Capacity is fixed at construction. One producer, one consumer; the
//! handles are `Send` but not `Clone`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    q: Mutex<Ring<T>>,
    /// Producer waits on this when full; consumer when empty. One
    /// condvar is enough for SPSC: at most one thread waits per side.
    cv: Condvar,
}

struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Producer half of a [`channel`].
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a [`channel`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Result of a non-blocking [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// An item was waiting.
    Item(T),
    /// Nothing buffered, but the producer is still running.
    Empty,
    /// Producer gone and the ring drained: the stream is exhausted.
    Closed,
}

/// A bounded channel of capacity `cap` (clamped to at least 1).
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        q: Mutex::new(Ring {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            sender_alive: true,
            receiver_alive: true,
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue `item`. Returns
    /// `Err(item)` if the receiver is gone — the producer should treat
    /// that as cancellation and wind down.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut q = self.shared.q.lock().unwrap();
        loop {
            if !q.receiver_alive {
                return Err(item);
            }
            if q.buf.len() < q.cap {
                q.buf.push_back(item);
                self.shared.cv.notify_all();
                return Ok(());
            }
            q = self.shared.cv.wait(q).unwrap();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().unwrap();
        q.sender_alive = false;
        self.shared.cv.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Block until an item arrives; `None` once the channel is closed
    /// and drained.
    pub fn recv(&self) -> Option<T> {
        let mut q = self.shared.q.lock().unwrap();
        loop {
            if let Some(item) = q.buf.pop_front() {
                self.shared.cv.notify_all();
                return Some(item);
            }
            if !q.sender_alive {
                return None;
            }
            q = self.shared.cv.wait(q).unwrap();
        }
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> TryRecv<T> {
        let mut q = self.shared.q.lock().unwrap();
        if let Some(item) = q.buf.pop_front() {
            self.shared.cv.notify_all();
            return TryRecv::Item(item);
        }
        if !q.sender_alive {
            return TryRecv::Closed;
        }
        TryRecv::Empty
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().unwrap();
        q.receiver_alive = false;
        // Unbuffered items are dropped with the shared ring; what
        // matters is waking a producer blocked in `send` so it can see
        // the cancellation.
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ships_in_order_and_closes_on_sender_drop() {
        let (tx, rx) = channel(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.try_recv(), TryRecv::Item(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), TryRecv::<i32>::Closed);
    }

    #[test]
    fn empty_try_recv_does_not_block() {
        let (tx, rx) = channel::<i32>(1);
        assert_eq!(rx.try_recv(), TryRecv::Empty);
        drop(tx);
        assert_eq!(rx.try_recv(), TryRecv::<i32>::Closed);
    }

    #[test]
    fn full_channel_blocks_until_consumed() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the consumer makes room; succeeds after.
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        t.join().unwrap();
    }

    #[test]
    fn receiver_drop_unblocks_and_cancels_sender() {
        let (tx, rx) = channel(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        // Give the producer a moment to block on the full ring, then
        // drop the consumer: the blocked send must return Err(2).
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(2));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = channel(0);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Some(7));
    }
}
