//! A mutex-striped, sharded LRU map — the substrate of the process-wide
//! plan cache shared across server sessions.
//!
//! Keys hash to one of N shards; each shard is a small `Mutex<Vec<..>>`
//! LRU (front = most recent), mirroring the per-session plan cache's
//! eviction order. Values travel behind `Arc`, so a hit is clone-free:
//! the caller gets a reference-counted handle to the cached template
//! and the lock is held only for the lookup/bump itself.
//!
//! Contention is observable: a `get`/`insert` that finds its shard lock
//! taken counts one `PlanCacheShardContention` before blocking. Hits
//! and misses are counted on the same [`Stats`] (process-wide, distinct
//! from any session's own counters) so a served workload can report its
//! *cross-session* hit rate separately from per-session numbers.

use crate::stats::{Counter, Stats};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Default shard count for a process-wide cache: enough stripes that
/// tens of concurrent sessions rarely collide on one lock.
pub const DEFAULT_SHARDS: usize = 8;

struct Shard<K, V> {
    /// Front = most recently used, like the per-session plan cache.
    entries: Vec<(K, Arc<V>)>,
}

/// A sharded LRU of `Arc`'d values, safe to share across threads.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_cap: usize,
    stats: Stats,
}

impl<K: Hash + Eq, V> ShardedLru<K, V> {
    /// A cache of `shards` stripes holding at most `per_shard_cap`
    /// entries each (both clamped to at least 1).
    pub fn new(shards: usize, per_shard_cap: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::new(),
                    })
                })
                .collect(),
            per_shard_cap: per_shard_cap.max(1),
            stats: Stats::new(),
        }
    }

    /// Process-wide cache counters: `PlanCacheHits`/`Misses` (the
    /// cross-session hit rate) and `PlanCacheShardContention`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-stripe capacity.
    pub fn per_shard_cap(&self) -> usize {
        self.per_shard_cap
    }

    /// Total entries across all shards (racy snapshot; test/debug use).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True when no shard holds anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn lock<'a>(&self, shard: &'a Mutex<Shard<K, V>>) -> std::sync::MutexGuard<'a, Shard<K, V>> {
        match shard.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.stats.inc(Counter::PlanCacheShardContention);
                shard.lock().unwrap()
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Look `key` up, bumping it to most-recent on hit. The returned
    /// `Arc` is a clone-free handle to the shared value.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let shard = self.shard_for(key);
        let mut g = self.lock(shard);
        match g.entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                let e = g.entries.remove(pos);
                let v = Arc::clone(&e.1);
                g.entries.insert(0, e);
                self.stats.inc(Counter::PlanCacheHits);
                Some(v)
            }
            None => {
                self.stats.inc(Counter::PlanCacheMisses);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's least-recent
    /// entry beyond capacity.
    pub fn insert(&self, key: K, value: Arc<V>) {
        let shard = self.shard_for(&key);
        let mut g = self.lock(shard);
        g.entries.retain(|(k, _)| k != &key);
        g.entries.insert(0, (key, value));
        g.entries.truncate(self.per_shard_cap);
    }
}

impl<K, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("per_shard_cap", &self.per_shard_cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_lru_bump() {
        let c: ShardedLru<u32, String> = ShardedLru::new(1, 2);
        assert!(c.get(&1).is_none());
        c.insert(1, Arc::new("a".into()));
        c.insert(2, Arc::new("b".into()));
        assert_eq!(*c.get(&1).unwrap(), "a"); // bumps 1 to front
        c.insert(3, Arc::new("c".into())); // evicts 2 (LRU)
        assert!(c.get(&2).is_none());
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().get(Counter::PlanCacheHits), 3);
        assert_eq!(c.stats().get(Counter::PlanCacheMisses), 2);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(4, 4);
        c.insert(7, Arc::new(1));
        c.insert(7, Arc::new(2));
        assert_eq!(*c.get(&7).unwrap(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(4, 8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 31 + i) % 32;
                        c.insert(k, Arc::new(k * 10));
                        if let Some(v) = c.get(&k) {
                            assert_eq!(*v % 10, 0);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 4 * 8);
    }

    #[test]
    fn shards_and_caps_clamped() {
        let c: ShardedLru<u8, u8> = ShardedLru::new(0, 0);
        assert_eq!(c.shard_count(), 1);
        assert_eq!(c.per_shard_cap(), 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        assert_eq!(c.len(), 1);
    }
}
