//! A fixed-size worker pool for cooperative, parkable jobs — the
//! substrate of the pooled prefetch executor.
//!
//! Thread-per-cursor prefetching cannot survive many concurrent
//! sessions, so prefetch work runs on a small shared pool instead. The
//! catch: a prefetch producer is *paced by its consumer* (the bounded
//! SPSC ring is the backpressure), and a producer that blocked inside
//! `send` would pin a pool worker for as long as its consumer dawdles —
//! with enough slow consumers, every worker is pinned and the pool
//! deadlocks. Jobs here are therefore cooperative: [`PoolJob::step`]
//! does one bounded unit of work and *returns* [`Step::Park`] instead
//! of blocking when its output is full. A parked job is re-enqueued by
//! [`JobHandle::wake`] (wired to the ring's free-slot notification), so
//! workers only ever run jobs that can make progress.
//!
//! Wake-while-running is latched: a `wake` that arrives while the job
//! is being stepped marks it pending, and the worker re-enqueues the
//! job instead of parking it — the notification is never lost.

use crate::stats::{Counter, Stats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What one [`PoolJob::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Progress was made and more work is immediately possible.
    Again,
    /// Output is full (or input not ready): stop running until
    /// [`JobHandle::wake`].
    Park,
    /// The job is finished (exhausted, failed, or cancelled).
    Done,
}

/// A cooperative job: each `step` does one bounded unit of work (for
/// the prefetcher: produce at most one block and offer it to the ring)
/// and must not block on its consumer.
pub trait PoolJob: Send {
    /// Do one unit of work.
    fn step(&mut self) -> Step;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    /// In the injector queue, waiting for a worker.
    Queued,
    /// A worker is stepping it; `true` = a wake arrived meanwhile.
    Running(bool),
    /// Waiting for a wake.
    Parked,
    /// Finished; the boxed job has been dropped.
    Done,
}

struct SlotInner {
    job: Option<Box<dyn PoolJob>>,
    state: JobState,
}

struct JobSlot {
    inner: Mutex<SlotInner>,
    done: Condvar,
}

/// A handle to one spawned job. Cloneable; used to wake a parked job
/// and to await its completion.
#[derive(Clone)]
pub struct JobHandle {
    slot: Arc<JobSlot>,
    pool: Arc<PoolInner>,
}

impl JobHandle {
    /// Re-enqueue the job if it is parked; latch the wake if it is
    /// running. No-op if queued or done.
    pub fn wake(&self) {
        let mut g = self.slot.inner.lock().unwrap();
        match g.state {
            JobState::Parked => {
                g.state = JobState::Queued;
                drop(g);
                self.pool.enqueue(Arc::clone(&self.slot));
            }
            JobState::Running(_) => g.state = JobState::Running(true),
            JobState::Queued | JobState::Done => {}
        }
    }

    /// Block until the job has fully finished (its boxed state, and
    /// anything it owned, has been dropped by the worker).
    pub fn wait_done(&self) {
        let mut g = self.slot.inner.lock().unwrap();
        while g.state != JobState::Done {
            g = self.slot.done.wait(g).unwrap();
        }
    }

    /// Whether the job has finished.
    pub fn is_done(&self) -> bool {
        self.slot.inner.lock().unwrap().state == JobState::Done
    }
}

struct PoolInner {
    injector: Mutex<VecDeque<Arc<JobSlot>>>,
    ready: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
}

impl PoolInner {
    fn enqueue(&self, slot: Arc<JobSlot>) {
        let mut q = self.injector.lock().unwrap();
        q.push_back(slot);
        // Cumulative queue-depth samples: depth observed at each
        // enqueue. depth/PoolTasksRun ≈ average backlog per dispatch.
        self.stats.add(Counter::PrefetchQueueDepth, q.len() as u64);
        drop(q);
        self.ready.notify_one();
    }
}

/// A fixed-size pool of named worker threads consuming jobs from one
/// shared injector queue.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Start `workers` threads (clamped to at least 1) named
    /// `<name>-<i>`.
    pub fn new(name: &str, workers: usize) -> Pool {
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, workers }
    }

    /// The default worker count: one per hardware thread.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Pool counters: `PoolTasksRun` (dispatches) and
    /// `PrefetchQueueDepth` (cumulative depth samples at enqueue).
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// Submit a job; it starts queued and runs as soon as a worker is
    /// free.
    pub fn spawn(&self, job: Box<dyn PoolJob>) -> JobHandle {
        let slot = Arc::new(JobSlot {
            inner: Mutex::new(SlotInner {
                job: Some(job),
                state: JobState::Queued,
            }),
            done: Condvar::new(),
        });
        self.inner.enqueue(Arc::clone(&slot));
        JobHandle {
            slot,
            pool: Arc::clone(&self.inner),
        }
    }

    /// Stop accepting work, drop queued jobs, and join every worker.
    /// Queued (never-run) jobs are marked done so `wait_done` callers
    /// do not hang.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let drained: Vec<_> = self.inner.injector.lock().unwrap().drain(..).collect();
        for slot in drained {
            let mut g = slot.inner.lock().unwrap();
            g.job = None;
            g.state = JobState::Done;
            slot.done.notify_all();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let slot = {
            let mut q = inner.injector.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(s) = q.pop_front() {
                    break s;
                }
                q = inner.ready.wait(q).unwrap();
            }
        };
        inner.stats.inc(Counter::PoolTasksRun);
        let mut job = {
            let mut g = slot.inner.lock().unwrap();
            debug_assert_eq!(g.state, JobState::Queued);
            g.state = JobState::Running(false);
            match g.job.take() {
                Some(j) => j,
                None => {
                    g.state = JobState::Done;
                    slot.done.notify_all();
                    continue;
                }
            }
        };
        // Step without holding the slot lock; a wake arriving now is
        // latched into Running(true) and honoured at the Park decision.
        loop {
            match job.step() {
                Step::Again => {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        // Finish promptly on shutdown; the job is
                        // dropped below as if done.
                        let mut g = slot.inner.lock().unwrap();
                        g.state = JobState::Done;
                        drop(g);
                        drop(job);
                        slot.done.notify_all();
                        break;
                    }
                }
                Step::Park => {
                    let mut g = slot.inner.lock().unwrap();
                    let woken = matches!(g.state, JobState::Running(true));
                    g.job = Some(job);
                    if woken {
                        g.state = JobState::Queued;
                        drop(g);
                        inner.enqueue(Arc::clone(&slot));
                    } else {
                        g.state = JobState::Parked;
                    }
                    break;
                }
                Step::Done => {
                    let mut g = slot.inner.lock().unwrap();
                    g.state = JobState::Done;
                    drop(g);
                    // Drop the job (and everything it owns — active
                    // gauges, ring sender) before announcing done.
                    drop(job);
                    slot.done.notify_all();
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountJob {
        n: usize,
        counter: Arc<AtomicUsize>,
    }

    impl PoolJob for CountJob {
        fn step(&mut self) -> Step {
            if self.n == 0 {
                return Step::Done;
            }
            self.n -= 1;
            self.counter.fetch_add(1, Ordering::SeqCst);
            Step::Again
        }
    }

    #[test]
    fn jobs_run_to_completion() {
        let mut pool = Pool::new("test-pool", 2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                pool.spawn(Box::new(CountJob {
                    n: 10,
                    counter: Arc::clone(&counter),
                }))
            })
            .collect();
        for h in &handles {
            h.wait_done();
            assert!(h.is_done());
        }
        assert_eq!(counter.load(Ordering::SeqCst), 80);
        assert!(pool.stats().get(Counter::PoolTasksRun) >= 8);
        pool.shutdown();
    }

    struct ParkingJob {
        gate: Arc<AtomicBool>,
        ran_after_wake: Arc<AtomicBool>,
    }

    impl PoolJob for ParkingJob {
        fn step(&mut self) -> Step {
            if self.gate.load(Ordering::SeqCst) {
                self.ran_after_wake.store(true, Ordering::SeqCst);
                Step::Done
            } else {
                Step::Park
            }
        }
    }

    #[test]
    fn parked_jobs_resume_on_wake() {
        let pool = Pool::new("test-pool", 1);
        let gate = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicBool::new(false));
        let h = pool.spawn(Box::new(ParkingJob {
            gate: Arc::clone(&gate),
            ran_after_wake: Arc::clone(&ran),
        }));
        // Let it park, then open the gate and wake it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_done());
        gate.store(true, Ordering::SeqCst);
        h.wake();
        h.wait_done();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn wake_during_run_is_latched() {
        // A job that parks instantly; wake it many times concurrently
        // with its own stepping — it must never lose the final wake.
        struct Flaky {
            remaining: usize,
        }
        impl PoolJob for Flaky {
            fn step(&mut self) -> Step {
                if self.remaining == 0 {
                    Step::Done
                } else {
                    self.remaining -= 1;
                    Step::Park
                }
            }
        }
        let pool = Pool::new("test-pool", 2);
        let h = pool.spawn(Box::new(Flaky { remaining: 100 }));
        while !h.is_done() {
            h.wake();
            std::thread::yield_now();
        }
        h.wait_done();
    }

    #[test]
    fn shutdown_joins_workers_and_releases_queued_jobs() {
        let mut pool = Pool::new("test-pool", 1);
        // A job that parks forever holds its slot; a queued job behind
        // it must be released by shutdown.
        let h = pool.spawn(Box::new(ParkingJob {
            gate: Arc::new(AtomicBool::new(false)),
            ran_after_wake: Arc::new(AtomicBool::new(false)),
        }));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let queued = pool.spawn(Box::new(CountJob {
            n: 1,
            counter: Arc::new(AtomicUsize::new(0)),
        }));
        pool.shutdown();
        queued.wait_done();
        // The parked job is dropped with its slot (handle keeps the
        // state readable; it never completes).
        assert!(!h.is_done());
    }
}
