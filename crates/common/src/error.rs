//! The workspace-wide error type.

use crate::name::Name;
use std::fmt;

/// Result alias used across the MIX workspace.
pub type Result<T> = std::result::Result<T, MixError>;

/// How a backend failure behaves under retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation may succeed if re-issued (network blip, overload).
    Transient,
    /// Re-issuing can never help (server gone, statement rejected).
    Permanent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// A failure reported by (or injected into) a relational backend.
///
/// Carries enough structure for the layers above to make decisions:
/// the failing server, whether a retry can help ([`FaultKind`]), and —
/// once a retry loop has given up — how many retries were spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// The database server the failure is attributed to.
    pub server: Name,
    /// Transient (retryable) or permanent.
    pub kind: FaultKind,
    /// Human-readable description.
    pub msg: String,
    /// Retries attempted before the error was surfaced (0 when the
    /// error is reported raw, before any retry loop saw it).
    pub retries: u32,
}

/// Errors surfaced by the MIX mediator stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// A parser rejected its input (XQuery, SQL, or XML). Carries the
    /// offending position (byte offset or line) and a message.
    Parse {
        what: &'static str,
        pos: usize,
        msg: String,
    },
    /// A name (table, column, variable, source, view) is unknown.
    Unknown { what: &'static str, name: String },
    /// A query or plan is structurally invalid (variable scoping,
    /// operator arity, type mismatch).
    Invalid(String),
    /// A navigation command was applied to a node id that does not
    /// support it (e.g. `fv` on a non-leaf).
    Navigation(String),
    /// The rewriter or engine hit an internal invariant violation.
    Internal(String),
    /// An error attributable to one registered source (a wrapper or
    /// relational server failure), so the mediator can say *which*
    /// source failed instead of collapsing everything into
    /// [`MixError::Internal`].
    Source { source: Name, msg: String },
    /// A relational backend failed (for real or by fault injection)
    /// and the failure could not be retried away. Surfaces at the
    /// navigation command that needed the missing data.
    Backend(BackendError),
    /// A decontextualized/rewritten plan violated an engine invariant
    /// ("validated:" conditions). Fails the query, not the process.
    Plan(String),
}

impl MixError {
    /// Shorthand for a parse error.
    pub fn parse(what: &'static str, pos: usize, msg: impl Into<String>) -> MixError {
        MixError::Parse {
            what,
            pos,
            msg: msg.into(),
        }
    }

    /// Shorthand for an unknown-name error.
    pub fn unknown(what: &'static str, name: impl Into<String>) -> MixError {
        MixError::Unknown {
            what,
            name: name.into(),
        }
    }

    /// Shorthand for an invalid-structure error.
    pub fn invalid(msg: impl Into<String>) -> MixError {
        MixError::Invalid(msg.into())
    }

    /// Shorthand for an internal invariant violation.
    pub fn internal(msg: impl Into<String>) -> MixError {
        MixError::Internal(msg.into())
    }

    /// Shorthand for a source-attributed error.
    pub fn source(source: impl Into<Name>, msg: impl Into<String>) -> MixError {
        MixError::Source {
            source: source.into(),
            msg: msg.into(),
        }
    }

    /// Shorthand for a backend failure (retries not yet spent).
    pub fn backend(server: impl Into<Name>, kind: FaultKind, msg: impl Into<String>) -> MixError {
        MixError::Backend(BackendError {
            server: server.into(),
            kind,
            msg: msg.into(),
            retries: 0,
        })
    }

    /// Shorthand for a plan-invariant violation.
    pub fn plan(msg: impl Into<String>) -> MixError {
        MixError::Plan(msg.into())
    }

    /// Is this a backend failure a retry could fix?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MixError::Backend(BackendError {
                kind: FaultKind::Transient,
                ..
            })
        )
    }
}

/// Attach source attribution to an error as it crosses the wrapper or
/// engine boundary: `db.execute(sql).context(&server)?` turns any
/// failure into [`MixError::Source`] naming the failing source.
/// Errors that already carry attribution pass through unchanged.
pub trait ResultContext<T> {
    /// Wrap the error case in [`MixError::Source`] for `source`.
    fn context(self, source: impl Into<Name>) -> Result<T>;
}

impl<T> ResultContext<T> for Result<T> {
    fn context(self, source: impl Into<Name>) -> Result<T> {
        self.map_err(|e| match e {
            // Backend errors already name their server; wrapping them in
            // `Source` would erase the retryability the layers above
            // dispatch on.
            MixError::Source { .. } | MixError::Backend(_) => e,
            other => MixError::Source {
                source: source.into(),
                msg: other.to_string(),
            },
        })
    }
}

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixError::Parse { what, pos, msg } => {
                write!(f, "{what} parse error at {pos}: {msg}")
            }
            MixError::Unknown { what, name } => write!(f, "unknown {what}: {name}"),
            MixError::Invalid(m) => write!(f, "invalid query/plan: {m}"),
            MixError::Navigation(m) => write!(f, "navigation error: {m}"),
            MixError::Internal(m) => write!(f, "internal error: {m}"),
            MixError::Source { source, msg } => write!(f, "source {source}: {msg}"),
            MixError::Backend(BackendError {
                server,
                kind,
                msg,
                retries,
            }) => write!(f, "backend {server} ({kind}, retries={retries}): {msg}"),
            MixError::Plan(m) => write!(f, "plan invariant violated: {m}"),
        }
    }
}

impl std::error::Error for MixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = MixError::parse("xquery", 10, "expected FOR");
        assert_eq!(e.to_string(), "xquery parse error at 10: expected FOR");
        let e = MixError::unknown("table", "custs");
        assert_eq!(e.to_string(), "unknown table: custs");
    }

    #[test]
    fn backend_errors_format_and_classify() {
        let e = MixError::backend("db1", FaultKind::Transient, "connection reset");
        assert_eq!(
            e.to_string(),
            "backend db1 (transient, retries=0): connection reset"
        );
        assert!(e.is_transient());
        let e = MixError::backend("db1", FaultKind::Permanent, "server gone");
        assert!(!e.is_transient());
        // `context` never re-wraps backend errors.
        let r: Result<()> = Err(e.clone());
        assert_eq!(r.context("db2").unwrap_err(), e);
        let p = MixError::plan("apply param must be a partition");
        assert_eq!(
            p.to_string(),
            "plan invariant violated: apply param must be a partition"
        );
        assert!(!p.is_transient());
    }

    #[test]
    fn context_attributes_errors_to_a_source() {
        let r: Result<()> = Err(MixError::unknown("table", "custs"));
        let e = r.context("db1").unwrap_err();
        assert_eq!(e.to_string(), "source db1: unknown table: custs");
        // Already-attributed errors pass through unchanged.
        let r: Result<()> = Err(e.clone());
        assert_eq!(r.context("db2").unwrap_err(), e);
        // The Ok case is untouched.
        assert!(Ok::<_, MixError>(7).context("db1").is_ok());
    }
}
