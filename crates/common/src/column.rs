//! Typed column vectors: the columnar block representation.
//!
//! Blocks used to be `Vec<Row>` — every cell a boxed [`Value`], every
//! string its own allocation, every operator dispatching on the value
//! tag once per cell. A [`ColumnBlock`] stores the same tuples
//! column-major in typed vectors (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`,
//! `Vec<Arc<str>>`), so the hot drain path moves machine words and
//! reference-counted string handles instead of enum-tagged boxes, and
//! kernels (predicate masks, range copies, gathers) run
//! column-at-a-time with one type dispatch per *column* per block.
//!
//! Layout and nullability:
//!
//! * Each column is a typed data vector plus an optional validity mask
//!   (`None` means every cell is valid — the common case pays nothing).
//! * A column that has only ever seen `Null` stores no data at all
//!   ([`ColData::Null`]).
//! * Heterogeneously typed columns demote to [`ColData::Mixed`]
//!   (`Vec<Value>`), which preserves arbitrary rows exactly — any
//!   `Vec<Value>` survives a round trip through a block (pinned by a
//!   property test).
//!
//! The row-compat view ([`ColumnBlock::iter_rows`] /
//! [`ColumnBlock::value_at`]) lets not-yet-vectorized operators consume
//! columnar blocks; string cells come back as `Arc` clones (refcount
//! bumps), never re-allocations.

use crate::value::{CmpOp, Value};
use std::mem::size_of;
use std::sync::{Arc, OnceLock};

/// The shared placeholder stored in `Str` columns under a null cell.
fn empty_str() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from("")))
}

/// Typed storage for one column of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum ColData {
    /// Every cell seen so far is null: no storage.
    Null,
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Interned / shared strings.
    Str(Vec<Arc<str>>),
    /// Heterogeneous fallback: boxed values, stored exactly.
    Mixed(Vec<Value>),
}

/// One column: typed data plus an optional validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColData,
    /// `None` = all cells valid. `Some(mask)` runs parallel to the
    /// data vector; `false` marks a null cell (the data slot holds a
    /// placeholder). [`ColData::Mixed`] stores `Value::Null` inline and
    /// keeps the mask `None`; [`ColData::Null`] is implicitly all-null.
    valid: Option<Vec<bool>>,
}

impl Column {
    fn new() -> Column {
        Column {
            data: ColData::Null,
            valid: None,
        }
    }

    /// The typed data vector (exposed for column-at-a-time kernels).
    pub fn data(&self) -> &ColData {
        &self.data
    }

    /// The validity mask, if one is materialized (`None` = every cell
    /// valid; [`ColData::Null`] is implicitly all-null and carries no
    /// mask). Exposed so serializers can write the column verbatim.
    pub fn validity(&self) -> Option<&[bool]> {
        self.valid.as_deref()
    }

    /// Rebuild a column from its parts (the wire-decode constructor).
    /// `len` is the row count of the enclosing block. Fails — instead
    /// of panicking later — when the data vector or mask disagrees with
    /// `len`, or when a mask is attached to a representation that never
    /// carries one ([`ColData::Null`] and [`ColData::Mixed`] encode
    /// nullness in the data itself).
    pub fn from_parts(
        data: ColData,
        valid: Option<Vec<bool>>,
        len: usize,
    ) -> crate::Result<Column> {
        let data_len = match &data {
            ColData::Null => len,
            ColData::Int(xs) => xs.len(),
            ColData::Float(xs) => xs.len(),
            ColData::Bool(xs) => xs.len(),
            ColData::Str(xs) => xs.len(),
            ColData::Mixed(xs) => xs.len(),
        };
        if data_len != len {
            return Err(crate::MixError::invalid(format!(
                "column data holds {data_len} rows, block claims {len}"
            )));
        }
        if let Some(mask) = &valid {
            if matches!(data, ColData::Null | ColData::Mixed(_)) {
                return Err(crate::MixError::invalid(
                    "null/mixed columns never carry a validity mask",
                ));
            }
            if mask.len() != len {
                return Err(crate::MixError::invalid(format!(
                    "validity mask holds {} rows, block claims {len}",
                    mask.len()
                )));
            }
        }
        Ok(Column { data, valid })
    }

    /// Is cell `r` valid (non-null)?
    pub fn is_valid(&self, r: usize) -> bool {
        match &self.data {
            ColData::Null => false,
            ColData::Mixed(xs) => !matches!(xs[r], Value::Null),
            _ => self.valid.as_ref().is_none_or(|m| m[r]),
        }
    }

    /// Cell `r` as a boxed [`Value`] (strings are `Arc` clones).
    pub fn get(&self, r: usize) -> Value {
        if let Some(m) = &self.valid {
            if !m[r] {
                return Value::Null;
            }
        }
        match &self.data {
            ColData::Null => Value::Null,
            ColData::Int(xs) => Value::Int(xs[r]),
            ColData::Float(xs) => Value::Float(xs[r]),
            ColData::Bool(xs) => Value::Bool(xs[r]),
            ColData::Str(xs) => Value::Str(Arc::clone(&xs[r])),
            ColData::Mixed(xs) => xs[r].clone(),
        }
    }

    /// Ensure the validity mask is materialized for `len` existing rows.
    fn mask_mut(&mut self, len: usize) -> &mut Vec<bool> {
        self.valid.get_or_insert_with(|| vec![true; len])
    }

    /// Rebuild this column as [`ColData::Mixed`] over its `len` rows.
    fn demote_to_mixed(&mut self, len: usize) {
        let xs: Vec<Value> = (0..len).map(|r| self.get(r)).collect();
        self.data = ColData::Mixed(xs);
        self.valid = None;
    }

    /// Append `v` to a column currently holding `len` rows.
    fn push(&mut self, v: Value, len: usize) {
        match (&mut self.data, v) {
            (ColData::Null, Value::Null) => {}
            (ColData::Mixed(xs), v) => xs.push(v),
            (ColData::Null, v) => {
                // First non-null cell: materialize typed storage with
                // placeholders (all invalid) for the prior rows.
                self.data = match v {
                    Value::Int(i) => {
                        let mut xs = vec![0i64; len];
                        xs.push(i);
                        ColData::Int(xs)
                    }
                    Value::Float(f) => {
                        let mut xs = vec![0f64; len];
                        xs.push(f);
                        ColData::Float(xs)
                    }
                    Value::Bool(b) => {
                        let mut xs = vec![false; len];
                        xs.push(b);
                        ColData::Bool(xs)
                    }
                    Value::Str(s) => {
                        let mut xs = vec![empty_str(); len];
                        xs.push(s);
                        ColData::Str(xs)
                    }
                    Value::Null => unreachable!("null handled above"),
                };
                if len > 0 {
                    let mut m = vec![false; len];
                    m.push(true);
                    self.valid = Some(m);
                }
            }
            (ColData::Int(xs), Value::Int(i)) => {
                xs.push(i);
                if let Some(m) = &mut self.valid {
                    m.push(true);
                }
            }
            (ColData::Float(xs), Value::Float(f)) => {
                xs.push(f);
                if let Some(m) = &mut self.valid {
                    m.push(true);
                }
            }
            (ColData::Bool(xs), Value::Bool(b)) => {
                xs.push(b);
                if let Some(m) = &mut self.valid {
                    m.push(true);
                }
            }
            (ColData::Str(xs), Value::Str(s)) => {
                xs.push(s);
                if let Some(m) = &mut self.valid {
                    m.push(true);
                }
            }
            (_, Value::Null) => {
                // A null lands in a typed column: placeholder + mask.
                match &mut self.data {
                    ColData::Int(xs) => xs.push(0),
                    ColData::Float(xs) => xs.push(0.0),
                    ColData::Bool(xs) => xs.push(false),
                    ColData::Str(xs) => xs.push(empty_str()),
                    ColData::Null | ColData::Mixed(_) => unreachable!("handled above"),
                }
                self.mask_mut(len).push(false);
            }
            (_, v) => {
                // Type clash: demote to Mixed and store exactly.
                self.demote_to_mixed(len);
                match &mut self.data {
                    ColData::Mixed(xs) => xs.push(v),
                    _ => unreachable!("just demoted"),
                }
            }
        }
    }

    /// Append rows `pick`ed from `src` (which holds `src_len` rows) to
    /// this column currently holding `len` rows.
    fn append_from(&mut self, src: &Column, pick: Pick<'_>, len: usize) {
        // All-null source: just extend with nulls.
        if matches!(src.data, ColData::Null) {
            if matches!(self.data, ColData::Null) {
                return; // stays implicitly all-null
            }
            for _ in 0..pick.count() {
                self.push(Value::Null, len);
            }
            return;
        }
        // Typed bulk path: destination empty-null or same variant, and
        // neither side is Mixed.
        let same = matches!(
            (&self.data, &src.data),
            (ColData::Null, _)
                | (ColData::Int(_), ColData::Int(_))
                | (ColData::Float(_), ColData::Float(_))
                | (ColData::Bool(_), ColData::Bool(_))
                | (ColData::Str(_), ColData::Str(_))
        ) && !matches!(src.data, ColData::Mixed(_));
        if !same {
            // Fallback: per-cell through boxed values (rare — only
            // heterogeneous columns take this path).
            let mut at = len;
            pick.for_each(|r| {
                self.push(src.get(r), at);
                at += 1;
            });
            return;
        }
        if matches!(self.data, ColData::Null) {
            if len == 0 {
                // Adopt the source variant with empty storage.
                self.data = match &src.data {
                    ColData::Int(_) => ColData::Int(Vec::new()),
                    ColData::Float(_) => ColData::Float(Vec::new()),
                    ColData::Bool(_) => ColData::Bool(Vec::new()),
                    ColData::Str(_) => ColData::Str(Vec::new()),
                    ColData::Null | ColData::Mixed(_) => unreachable!("filtered above"),
                };
            } else {
                // Prior rows were all null: materialize placeholders.
                self.data = match &src.data {
                    ColData::Int(_) => ColData::Int(vec![0; len]),
                    ColData::Float(_) => ColData::Float(vec![0.0; len]),
                    ColData::Bool(_) => ColData::Bool(vec![false; len]),
                    ColData::Str(_) => ColData::Str(vec![empty_str(); len]),
                    ColData::Null | ColData::Mixed(_) => unreachable!("filtered above"),
                };
                self.valid = Some(vec![false; len]);
            }
        }
        match (&mut self.data, &src.data) {
            (ColData::Int(dst), ColData::Int(s)) => pick.extend_copy(dst, s),
            (ColData::Float(dst), ColData::Float(s)) => pick.extend_copy(dst, s),
            (ColData::Bool(dst), ColData::Bool(s)) => pick.extend_copy(dst, s),
            (ColData::Str(dst), ColData::Str(s)) => pick.extend_clone(dst, s),
            _ => unreachable!("variants matched above"),
        }
        // Merge validity: needed if either side carries a mask.
        if src.valid.is_some() || self.valid.is_some() {
            let mask = self.mask_mut(len);
            match &src.valid {
                Some(sm) => pick.for_each(|r| mask.push(sm[r])),
                None => mask.extend(std::iter::repeat_n(true, pick.count())),
            }
        }
    }
}

/// Row selection for bulk copies: a contiguous range or an index list.
#[derive(Clone, Copy)]
enum Pick<'a> {
    Range(usize, usize),
    Index(&'a [usize]),
}

impl Pick<'_> {
    fn count(&self) -> usize {
        match self {
            Pick::Range(a, b) => b - a,
            Pick::Index(idx) => idx.len(),
        }
    }

    fn for_each(&self, mut f: impl FnMut(usize)) {
        match self {
            Pick::Range(a, b) => (*a..*b).for_each(&mut f),
            Pick::Index(idx) => idx.iter().copied().for_each(&mut f),
        }
    }

    fn extend_copy<T: Copy>(&self, dst: &mut Vec<T>, src: &[T]) {
        match self {
            Pick::Range(a, b) => dst.extend_from_slice(&src[*a..*b]),
            Pick::Index(idx) => dst.extend(idx.iter().map(|&r| src[r])),
        }
    }

    fn extend_clone<T: Clone>(&self, dst: &mut Vec<T>, src: &[T]) {
        match self {
            Pick::Range(a, b) => dst.extend_from_slice(&src[*a..*b]),
            Pick::Index(idx) => dst.extend(idx.iter().map(|&r| src[r].clone())),
        }
    }
}

/// A block of tuples stored column-major in typed vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBlock {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnBlock {
    /// An empty block with `arity` columns.
    pub fn new(arity: usize) -> ColumnBlock {
        ColumnBlock {
            cols: (0..arity).map(|_| Column::new()).collect(),
            len: 0,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns, for column-at-a-time kernels.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Drop all rows (column types and capacity are kept where
    /// possible, so a reused block does not re-allocate).
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            match &mut c.data {
                ColData::Null => {}
                ColData::Int(xs) => xs.clear(),
                ColData::Float(xs) => xs.clear(),
                ColData::Bool(xs) => xs.clear(),
                ColData::Str(xs) => xs.clear(),
                ColData::Mixed(xs) => xs.clear(),
            }
            if let Some(m) = &mut c.valid {
                m.clear();
            }
        }
        self.len = 0;
    }

    /// Reserve room for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.cols {
            match &mut c.data {
                ColData::Null => {}
                ColData::Int(xs) => xs.reserve(additional),
                ColData::Float(xs) => xs.reserve(additional),
                ColData::Bool(xs) => xs.reserve(additional),
                ColData::Str(xs) => xs.reserve(additional),
                ColData::Mixed(xs) => xs.reserve(additional),
            }
            if let Some(m) = &mut c.valid {
                m.reserve(additional);
            }
        }
    }

    /// Append one row, consuming it (string handles move, no refcount
    /// traffic). The row length must equal the block arity.
    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(v, self.len);
        }
        self.len += 1;
    }

    /// Rebuild a block from decoded columns (the wire constructor —
    /// the inverse of walking [`ColumnBlock::columns`]). Every column
    /// must hold exactly `len` rows; see [`Column::from_parts`].
    pub fn from_columns(cols: Vec<Column>, len: usize) -> ColumnBlock {
        debug_assert!(cols.iter().all(|c| match c.data() {
            ColData::Null => true,
            ColData::Int(xs) => xs.len() == len,
            ColData::Float(xs) => xs.len() == len,
            ColData::Bool(xs) => xs.len() == len,
            ColData::Str(xs) => xs.len() == len,
            ColData::Mixed(xs) => xs.len() == len,
        }));
        ColumnBlock { cols, len }
    }

    /// Build a block from row-major tuples (arity taken from the first
    /// row; an empty input yields an empty zero-arity block).
    pub fn from_rows(rows: Vec<Vec<Value>>) -> ColumnBlock {
        let arity = rows.first().map_or(0, Vec::len);
        let mut b = ColumnBlock::new(arity);
        b.reserve(rows.len());
        for r in rows {
            b.push_row(r);
        }
        b
    }

    /// Cell `(r, c)` as a boxed [`Value`].
    pub fn value_at(&self, r: usize, c: usize) -> Value {
        self.cols[c].get(r)
    }

    /// True when cells `(a, col)` and `(b, col)` hold the same value,
    /// without cloning. Nulls compare equal to nulls (run detection
    /// treats two null keys as one run, matching the rendered-text
    /// comparison of the row-at-a-time decoder). Floats compare by bit
    /// pattern so `-0.0` and `0.0` — which render differently — never
    /// merge a run.
    pub fn cell_eq(&self, a: usize, b: usize, col: usize) -> bool {
        let c = &self.cols[col];
        match (c.is_valid(a), c.is_valid(b)) {
            (false, false) => return true,
            (true, true) => {}
            _ => return false,
        }
        match c.data() {
            ColData::Null => true,
            ColData::Int(xs) => xs[a] == xs[b],
            ColData::Float(xs) => xs[a].to_bits() == xs[b].to_bits(),
            ColData::Bool(xs) => xs[a] == xs[b],
            ColData::Str(xs) => Arc::ptr_eq(&xs[a], &xs[b]) || xs[a] == xs[b],
            ColData::Mixed(xs) => match (&xs[a], &xs[b]) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (x, y) => x == y,
            },
        }
    }

    /// Append row `r`'s cells to `out`.
    pub fn emit_row(&self, r: usize, out: &mut Vec<Value>) {
        out.reserve(self.cols.len());
        for c in &self.cols {
            out.push(c.get(r));
        }
    }

    /// Row `r` as a boxed tuple.
    pub fn row(&self, r: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.cols.len());
        for c in &self.cols {
            out.push(c.get(r));
        }
        out
    }

    /// Row-compat view: iterate rows as boxed tuples. This is the
    /// migration seam for operators that are not vectorized yet.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len).map(|r| self.row(r))
    }

    /// Append every row to `out` as boxed tuples.
    pub fn append_rows_to(&self, out: &mut Vec<Vec<Value>>) {
        out.reserve(self.len);
        out.extend(self.iter_rows());
    }

    /// Append rows `start..end` of `self` to `out` column-at-a-time
    /// (bulk slice copies on matching typed columns).
    pub fn append_range(&self, start: usize, end: usize, out: &mut ColumnBlock) {
        debug_assert!(start <= end && end <= self.len);
        debug_assert_eq!(self.cols.len(), out.cols.len(), "arity mismatch");
        for (dst, src) in out.cols.iter_mut().zip(&self.cols) {
            dst.append_from(src, Pick::Range(start, end), out.len);
        }
        out.len += end - start;
    }

    /// Append rows `start..end` of the source columns listed in `cols`
    /// (in that order) to `out`, whose arity must be `cols.len()` — the
    /// vectorized projection kernel: one bulk column copy per output
    /// column instead of one `Vec<Value>` per row.
    pub fn append_projected(
        &self,
        cols: &[usize],
        start: usize,
        end: usize,
        out: &mut ColumnBlock,
    ) {
        debug_assert!(start <= end && end <= self.len);
        debug_assert!(cols.iter().all(|&c| c < self.cols.len()));
        debug_assert_eq!(cols.len(), out.cols.len(), "projection arity mismatch");
        for (dst, &c) in out.cols.iter_mut().zip(cols) {
            dst.append_from(&self.cols[c], Pick::Range(start, end), out.len);
        }
        out.len += end - start;
    }

    /// Column-wise join append (an hstack gather): for every `k`,
    /// append row `idx[k]` of `self` concatenated with row `ridx[k]`
    /// of `right` to `out`, whose arity must be the sum of the two
    /// input arities. One bulk column gather per output column — no
    /// per-row tuple is ever built.
    pub fn append_join(
        &self,
        idx: &[usize],
        right: &ColumnBlock,
        ridx: &[usize],
        out: &mut ColumnBlock,
    ) {
        debug_assert_eq!(idx.len(), ridx.len(), "join selection length mismatch");
        debug_assert!(idx.iter().all(|&r| r < self.len));
        debug_assert!(ridx.iter().all(|&r| r < right.len));
        debug_assert_eq!(
            self.cols.len() + right.cols.len(),
            out.cols.len(),
            "join arity mismatch"
        );
        let (lout, rout) = out.cols.split_at_mut(self.cols.len());
        for (dst, src) in lout.iter_mut().zip(&self.cols) {
            dst.append_from(src, Pick::Index(idx), out.len);
        }
        for (dst, src) in rout.iter_mut().zip(&right.cols) {
            dst.append_from(src, Pick::Index(ridx), out.len);
        }
        out.len += idx.len();
    }

    /// Append the rows selected by `idx` to `out` column-at-a-time.
    pub fn gather_rows(&self, idx: &[usize], out: &mut ColumnBlock) {
        debug_assert!(idx.iter().all(|&r| r < self.len));
        debug_assert_eq!(self.cols.len(), out.cols.len(), "arity mismatch");
        for (dst, src) in out.cols.iter_mut().zip(&self.cols) {
            dst.append_from(src, Pick::Index(idx), out.len);
        }
        out.len += idx.len();
    }

    /// Vectorized predicate against a constant: fill `out` with
    /// `cell(r, col) op rhs` for `r` in `start..end`, under
    /// [`Value::satisfies`] semantics (null or incomparable cells are
    /// `false`). One type dispatch per call, not per cell.
    pub fn cmp_const_mask(
        &self,
        col: usize,
        op: CmpOp,
        rhs: &Value,
        start: usize,
        end: usize,
        out: &mut Vec<bool>,
    ) {
        debug_assert!(start <= end && end <= self.len);
        out.clear();
        out.reserve(end - start);
        let c = &self.cols[col];
        match (&c.data, rhs) {
            (ColData::Int(xs), Value::Int(b)) => {
                out.extend(xs[start..end].iter().map(|x| op.matches(x.cmp(b))))
            }
            (ColData::Int(xs), Value::Float(b)) => out.extend(
                xs[start..end]
                    .iter()
                    .map(|&x| (x as f64).partial_cmp(b).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Float(xs), Value::Float(b)) => out.extend(
                xs[start..end]
                    .iter()
                    .map(|x| x.partial_cmp(b).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Float(xs), Value::Int(b)) => out.extend(
                xs[start..end]
                    .iter()
                    .map(|x| x.partial_cmp(&(*b as f64)).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Bool(xs), Value::Bool(b)) => {
                out.extend(xs[start..end].iter().map(|x| op.matches(x.cmp(b))))
            }
            (ColData::Str(xs), Value::Str(b)) => {
                let rhs: &str = b;
                out.extend(xs[start..end].iter().map(|x| op.matches((**x).cmp(rhs))));
            }
            (ColData::Mixed(xs), rhs) => {
                out.extend(xs[start..end].iter().map(|x| x.satisfies(op, rhs)))
            }
            // Null column, null rhs, or incompatible types: all false.
            _ => out.extend(std::iter::repeat_n(false, end - start)),
        }
        if let Some(m) = &c.valid {
            for (o, v) in out.iter_mut().zip(&m[start..end]) {
                *o &= v;
            }
        }
    }

    /// Vectorized column-vs-column predicate: fill `out` with
    /// `cell(r, lcol) op cell(r, rcol)` for `r` in `start..end` under
    /// [`Value::satisfies`] semantics.
    pub fn cmp_cols_mask(
        &self,
        lcol: usize,
        op: CmpOp,
        rcol: usize,
        start: usize,
        end: usize,
        out: &mut Vec<bool>,
    ) {
        debug_assert!(start <= end && end <= self.len);
        out.clear();
        out.reserve(end - start);
        let l = &self.cols[lcol];
        let r = &self.cols[rcol];
        match (&l.data, &r.data) {
            (ColData::Int(a), ColData::Int(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(x, y)| op.matches(x.cmp(y))),
            ),
            (ColData::Float(a), ColData::Float(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(x, y)| x.partial_cmp(y).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Int(a), ColData::Float(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(&x, y)| (x as f64).partial_cmp(y).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Float(a), ColData::Int(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(x, &y)| x.partial_cmp(&(y as f64)).is_some_and(|o| op.matches(o))),
            ),
            (ColData::Str(a), ColData::Str(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(x, y)| op.matches((**x).cmp(&**y))),
            ),
            (ColData::Bool(a), ColData::Bool(b)) => out.extend(
                a[start..end]
                    .iter()
                    .zip(&b[start..end])
                    .map(|(x, y)| op.matches(x.cmp(y))),
            ),
            // Heterogeneous / null columns: boxed fallback per cell.
            _ => out.extend((start..end).map(|i| l.get(i).satisfies(op, &r.get(i)))),
        }
        let lv = l.valid.as_ref();
        let rv = r.valid.as_ref();
        if lv.is_some() || rv.is_some() {
            for (off, o) in out.iter_mut().enumerate() {
                let i = start + off;
                *o &= lv.is_none_or(|m| m[i]) && rv.is_none_or(|m| m[i]);
            }
        }
    }

    /// Approximate heap footprint in bytes. String payload bytes are
    /// charged only for unshared cells (`Arc::strong_count == 1`) —
    /// interned or otherwise shared content counts just its 16-byte
    /// handle, which is what makes the `BlockBytes` counter reflect the
    /// interning win.
    pub fn byte_size(&self) -> u64 {
        let str_cell = |s: &Arc<str>| {
            let handle = size_of::<Arc<str>>() as u64;
            if Arc::strong_count(s) > 1 {
                handle
            } else {
                handle + s.len() as u64
            }
        };
        let mut total = 0u64;
        for c in &self.cols {
            total += match &c.data {
                ColData::Null => 0,
                ColData::Int(xs) => (xs.len() * size_of::<i64>()) as u64,
                ColData::Float(xs) => (xs.len() * size_of::<f64>()) as u64,
                ColData::Bool(xs) => xs.len() as u64,
                ColData::Str(xs) => xs.iter().map(str_cell).sum(),
                ColData::Mixed(xs) => {
                    (xs.len() * size_of::<Value>()) as u64
                        + xs.iter()
                            .map(|v| match v {
                                Value::Str(s) if Arc::strong_count(s) > 1 => 0,
                                Value::Str(s) => s.len() as u64,
                                _ => 0,
                            })
                            .sum::<u64>()
                }
            };
            if let Some(m) = &c.valid {
                total += m.len() as u64;
            }
        }
        total
    }

    /// Number of string cells whose allocation is shared with another
    /// owner (`Arc::strong_count > 1`) — the `InternHits` measurement.
    pub fn shared_str_cells(&self) -> u64 {
        let mut n = 0u64;
        for c in &self.cols {
            match &c.data {
                ColData::Str(xs) => {
                    n += xs.iter().filter(|s| Arc::strong_count(s) > 1).count() as u64
                }
                ColData::Mixed(xs) => {
                    n += xs
                        .iter()
                        .filter(|v| matches!(v, Value::Str(s) if Arc::strong_count(s) > 1))
                        .count() as u64
                }
                _ => {}
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn typed_round_trip() {
        let rows = vec![
            vec![Value::Int(1), vs("a"), Value::Float(1.5), Value::Bool(true)],
            vec![
                Value::Int(2),
                vs("b"),
                Value::Float(2.5),
                Value::Bool(false),
            ],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 4);
        assert!(matches!(b.columns()[0].data(), ColData::Int(_)));
        assert!(matches!(b.columns()[1].data(), ColData::Str(_)));
        assert_eq!(b.iter_rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn nulls_use_validity_masks() {
        let rows = vec![
            vec![Value::Null, Value::Int(1)],
            vec![Value::Int(7), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        // Column 0 saw null first: the typed vec materializes late.
        assert!(matches!(b.columns()[0].data(), ColData::Int(_)));
        assert_eq!(b.iter_rows().collect::<Vec<_>>(), rows);
        assert!(!b.columns()[0].is_valid(0));
        assert!(b.columns()[0].is_valid(1));
    }

    #[test]
    fn all_null_column_stores_nothing() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let b = ColumnBlock::from_rows(rows.clone());
        assert!(matches!(b.columns()[0].data(), ColData::Null));
        assert_eq!(b.iter_rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn heterogeneous_column_demotes_to_mixed() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![vs("two")],
            vec![Value::Null],
            vec![Value::Bool(true)],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        assert!(matches!(b.columns()[0].data(), ColData::Mixed(_)));
        assert_eq!(b.iter_rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn append_range_and_gather_preserve_rows() {
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![
                    Value::Int(i),
                    vs(&format!("s{i}")),
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64)
                    },
                ]
            })
            .collect();
        let b = ColumnBlock::from_rows(rows.clone());
        let mut out = ColumnBlock::new(3);
        b.append_range(2, 5, &mut out);
        b.gather_rows(&[0, 9, 3], &mut out);
        let got: Vec<_> = out.iter_rows().collect();
        let want: Vec<_> = [2, 3, 4, 0, 9, 3]
            .iter()
            .map(|&i| rows[i].clone())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cmp_mask_matches_row_at_a_time_semantics() {
        let rows = vec![
            vec![Value::Int(5)],
            vec![Value::Int(50)],
            vec![Value::Null],
            vec![Value::Int(7)],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        let mut mask = Vec::new();
        b.cmp_const_mask(0, CmpOp::Gt, &Value::Int(6), 0, b.len(), &mut mask);
        let want: Vec<bool> = rows
            .iter()
            .map(|r| r[0].satisfies(CmpOp::Gt, &Value::Int(6)))
            .collect();
        assert_eq!(mask, want);
        // Cross-type numeric comparison stays vectorized.
        b.cmp_const_mask(0, CmpOp::Lt, &Value::Float(7.5), 0, b.len(), &mut mask);
        let want: Vec<bool> = rows
            .iter()
            .map(|r| r[0].satisfies(CmpOp::Lt, &Value::Float(7.5)))
            .collect();
        assert_eq!(mask, want);
        // Sub-range evaluation.
        b.cmp_const_mask(0, CmpOp::Gt, &Value::Int(6), 1, 3, &mut mask);
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn cmp_cols_mask_matches_row_at_a_time_semantics() {
        let rows = vec![
            vec![Value::Int(5), Value::Int(5)],
            vec![Value::Int(2), Value::Int(9)],
            vec![Value::Null, Value::Int(1)],
            vec![Value::Int(3), Value::Null],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        let mut mask = Vec::new();
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            b.cmp_cols_mask(0, op, 1, 0, b.len(), &mut mask);
            let want: Vec<bool> = rows.iter().map(|r| r[0].satisfies(op, &r[1])).collect();
            assert_eq!(mask, want, "op={op}");
        }
        // Mixed-typed columns fall back but still agree.
        let rows = vec![
            vec![vs("a"), vs("b")],
            vec![Value::Int(1), vs("b")],
            vec![vs("c"), vs("c")],
        ];
        let b = ColumnBlock::from_rows(rows.clone());
        b.cmp_cols_mask(0, CmpOp::Eq, 1, 0, b.len(), &mut mask);
        let want: Vec<bool> = rows
            .iter()
            .map(|r| r[0].satisfies(CmpOp::Eq, &r[1]))
            .collect();
        assert_eq!(mask, want);
    }

    #[test]
    fn clear_keeps_column_types() {
        let mut b = ColumnBlock::from_rows(vec![vec![Value::Int(1), vs("x")]]);
        b.clear();
        assert!(b.is_empty());
        assert!(matches!(b.columns()[0].data(), ColData::Int(_)));
        b.push_row(vec![Value::Int(2), vs("y")]);
        assert_eq!(b.row(0), vec![Value::Int(2), vs("y")]);
    }

    #[test]
    fn shared_strings_are_counted_and_cheap() {
        let s = crate::intern::intern("columnar-shared-label");
        let rows = vec![
            vec![Value::Str(Arc::clone(&s))],
            vec![Value::Str(Arc::clone(&s))],
            vec![Value::Str(Arc::from("unique-not-pooled-here"))],
        ];
        let b = ColumnBlock::from_rows(rows);
        assert_eq!(b.shared_str_cells(), 2);
        // Shared cells charge only their handle, unshared ones their payload.
        assert!(b.byte_size() >= 3 * 16);
    }

    /// Property: *any* row-major `Vec<Value>` sequence survives the
    /// column round-trip exactly — per-cell, per-row, and through the
    /// row-compat iterator — across seeded random type mixes (forcing
    /// typed columns, null masks, and `Mixed` demotion alike).
    #[test]
    fn any_rows_survive_column_round_trip() {
        // Small seeded LCG; the crate takes no property-testing deps.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..200u32 {
            let arity = 1 + (next() % 5) as usize;
            let len = (next() % 17) as usize;
            let rows: Vec<Vec<Value>> = (0..len)
                .map(|_| {
                    (0..arity)
                        .map(|_| match next() % 8 {
                            0 => Value::Null,
                            1 => Value::Bool(next() % 2 == 0),
                            2 => Value::Int(next() as i64 - (1 << 30)),
                            3 => Value::Int(i64::MIN / 2 + next() as i64),
                            4 => Value::Float(next() as f64 / 7.0 - 1e8),
                            5 => Value::Float(if next() % 2 == 0 { -0.0 } else { 1e300 }),
                            6 => Value::str(format!("s{}", next() % 50)),
                            // Numeric-looking and empty strings stay strings.
                            _ => Value::str(if next() % 2 == 0 { "007" } else { "" }),
                        })
                        .collect()
                })
                .collect();
            let mut b = ColumnBlock::from_rows(rows.clone());
            if rows.is_empty() {
                // from_rows of nothing has arity 0; nothing to check.
                continue;
            }
            assert_eq!(b.len(), rows.len(), "case {case}");
            assert_eq!(b.arity(), arity, "case {case}");
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(&b.row(r), row, "case {case} row {r}");
                for (c, cell) in row.iter().enumerate() {
                    assert_eq!(&b.value_at(r, c), cell, "case {case} cell {r},{c}");
                }
            }
            let back: Vec<Vec<Value>> = b.iter_rows().collect();
            assert_eq!(back, rows, "case {case}");
            // Incremental append after a bulk build keeps the invariants.
            let extra: Vec<Value> = rows[rows.len() - 1].clone();
            b.push_row(extra.clone());
            assert_eq!(b.row(b.len() - 1), extra, "case {case} appended row");
        }
    }
}
