//! Work counters, re-exported from `mix-obs`.
//!
//! The counter substrate lives in the dedicated observability crate so
//! layers below `mix-common` could use it too; this module keeps the
//! historical `mix_common::Stats` path working. See [`Stats`] for the
//! API: counters are addressed by the typed [`Counter`] enum
//! (`stats.inc(Counter::SqlQueries)`, `stats.get(Counter::TuplesShipped)`)
//! and read in bulk via [`Stats::snapshot`] / [`Delta::between`].

pub use mix_obs::{BlockRows, Counter, Delta, Snapshot, Stats};
