//! Measurement counters.
//!
//! The paper's performance argument is about *work avoided*: lazy
//! evaluation "produces the XML result tree as the user navigates into
//! it", and the rewriter pushes "the most restrictive queries" to the
//! sources so that "the minimum amount of data" is transferred. Those
//! claims are only checkable if the substrate counts its work, so every
//! source and the engine share a [`Stats`] handle.
//!
//! Counters use `Cell` (the engine is single-threaded by design — the
//! QDOM protocol is a synchronous command loop) wrapped in `Rc` by the
//! owners that share them.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Shared mutable counter set. Clone to share (reference semantics).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    inner: Rc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    /// SQL queries issued to a relational source.
    sql_queries: Cell<u64>,
    /// Tuples actually shipped from source cursors to the mediator
    /// (the high-watermark of rows pulled; the paper's "partial result
    /// evaluation" shows up as this staying far below the full result).
    tuples_shipped: Cell<u64>,
    /// Rows scanned inside the relational executor (internal work).
    rows_scanned: Cell<u64>,
    /// Navigation commands answered by the mediator (d/r/fl/fv/getRoot).
    nav_commands: Cell<u64>,
    /// XMAS operator invocations at the mediator (element creations,
    /// group formations, …) — the "mediator work" metric of claim E5.
    mediator_ops: Cell<u64>,
    /// Result-tree nodes materialized at the mediator.
    nodes_built: Cell<u64>,
    /// Hash indexes built by the physical join/semi-join/groupBy
    /// kernels (each is one full drain of the build side).
    hash_builds: Cell<u64>,
    /// Join predicate evaluations: every candidate pair a join or
    /// semi-join examines. Nested loops pay |L|·|R|; the hash kernels
    /// pay one per probe-side tuple plus bucket matches, i.e.
    /// O(|L| + |R| + |output|).
    join_probes: Cell<u64>,
    /// Joins/semi-joins that fell back to the nested-loop kernel
    /// because no equi-conjunct was extractable.
    nl_fallbacks: Cell<u64>,
    /// Decontextualized-plan cache hits in the QDOM session.
    plan_cache_hits: Cell<u64>,
    /// Decontextualized-plan cache misses (full translate + rewrite).
    plan_cache_misses: Cell<u64>,
}

macro_rules! counter {
    ($field:ident, $add:ident, $get:ident) => {
        /// Increment this counter by `n`.
        pub fn $add(&self, n: u64) {
            let c = &self.inner.$field;
            c.set(c.get() + n);
        }
        /// Read this counter.
        pub fn $get(&self) -> u64 {
            self.inner.$field.get()
        }
    };
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    counter!(sql_queries, add_sql_query, sql_queries);
    counter!(tuples_shipped, add_tuples_shipped, tuples_shipped);
    counter!(rows_scanned, add_rows_scanned, rows_scanned);
    counter!(nav_commands, add_nav_command, nav_commands);
    counter!(mediator_ops, add_mediator_op, mediator_ops);
    counter!(nodes_built, add_nodes_built, nodes_built);
    counter!(hash_builds, add_hash_build, hash_builds);
    counter!(join_probes, add_join_probe, join_probes);
    counter!(nl_fallbacks, add_nl_fallback, nl_fallbacks);
    counter!(plan_cache_hits, add_plan_cache_hit, plan_cache_hits);
    counter!(plan_cache_misses, add_plan_cache_miss, plan_cache_misses);

    /// Reset every counter to zero (between benchmark trials).
    pub fn reset(&self) {
        self.inner.sql_queries.set(0);
        self.inner.tuples_shipped.set(0);
        self.inner.rows_scanned.set(0);
        self.inner.nav_commands.set(0);
        self.inner.mediator_ops.set(0);
        self.inner.nodes_built.set(0);
        self.inner.hash_builds.set(0);
        self.inner.join_probes.set(0);
        self.inner.nl_fallbacks.set(0);
        self.inner.plan_cache_hits.set(0);
        self.inner.plan_cache_misses.set(0);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sql_queries: self.sql_queries(),
            tuples_shipped: self.tuples_shipped(),
            rows_scanned: self.rows_scanned(),
            nav_commands: self.nav_commands(),
            mediator_ops: self.mediator_ops(),
            nodes_built: self.nodes_built(),
            hash_builds: self.hash_builds(),
            join_probes: self.join_probes(),
            nl_fallbacks: self.nl_fallbacks(),
            plan_cache_hits: self.plan_cache_hits(),
            plan_cache_misses: self.plan_cache_misses(),
        }
    }
}

/// An immutable point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub sql_queries: u64,
    pub tuples_shipped: u64,
    pub rows_scanned: u64,
    pub nav_commands: u64,
    pub mediator_ops: u64,
    pub nodes_built: u64,
    pub hash_builds: u64,
    pub join_probes: u64,
    pub nl_fallbacks: u64,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
}

impl StatsSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            sql_queries: self.sql_queries.saturating_sub(earlier.sql_queries),
            tuples_shipped: self.tuples_shipped.saturating_sub(earlier.tuples_shipped),
            rows_scanned: self.rows_scanned.saturating_sub(earlier.rows_scanned),
            nav_commands: self.nav_commands.saturating_sub(earlier.nav_commands),
            mediator_ops: self.mediator_ops.saturating_sub(earlier.mediator_ops),
            nodes_built: self.nodes_built.saturating_sub(earlier.nodes_built),
            hash_builds: self.hash_builds.saturating_sub(earlier.hash_builds),
            join_probes: self.join_probes.saturating_sub(earlier.join_probes),
            nl_fallbacks: self.nl_fallbacks.saturating_sub(earlier.nl_fallbacks),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
            plan_cache_misses: self
                .plan_cache_misses
                .saturating_sub(earlier.plan_cache_misses),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sql={} shipped={} scanned={} nav={} medops={} nodes={} \
             hash={} probes={} nlfb={} pc={}+{}",
            self.sql_queries,
            self.tuples_shipped,
            self.rows_scanned,
            self.nav_commands,
            self.mediator_ops,
            self.nodes_built,
            self.hash_builds,
            self.join_probes,
            self.nl_fallbacks,
            self.plan_cache_hits,
            self.plan_cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_by_clone() {
        let a = Stats::new();
        let b = a.clone();
        a.add_tuples_shipped(3);
        b.add_tuples_shipped(2);
        assert_eq!(a.tuples_shipped(), 5);
    }

    #[test]
    fn snapshot_delta() {
        let s = Stats::new();
        s.add_sql_query(1);
        let before = s.snapshot();
        s.add_sql_query(2);
        s.add_nav_command(7);
        let d = s.snapshot().since(&before);
        assert_eq!(d.sql_queries, 2);
        assert_eq!(d.nav_commands, 7);
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.add_rows_scanned(9);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
