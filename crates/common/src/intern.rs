//! String interning for the value domain.
//!
//! [`Name`](crate::Name) already gives labels and variable names a
//! cheaply clonable `Arc<str>` representation, but each *value* cell
//! used to carry its own `String` allocation — and relational sources
//! repeat themselves constantly (the same city, the same status code,
//! the same rendered id in every row). This module extends the interning
//! idea to the value domain: [`intern`] returns a pooled `Arc<str>` so
//! repeated character content shares one allocation, and cloning a cell
//! is a reference-count bump.
//!
//! Lifetime: the pool is process-global and append-only up to
//! [`MAX_POOL_ENTRIES`] distinct strings. Strings longer than
//! [`MAX_INTERN_LEN`] bytes are never pooled (large character content
//! would pin memory forever for little sharing benefit) — they still get
//! an `Arc<str>`, just an unshared one. When the pool is full, new
//! distinct strings also bypass it. This keeps the pool a bounded cache,
//! not a leak: worst case is `MAX_POOL_ENTRIES × MAX_INTERN_LEN` bytes.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Longest string (in bytes) the pool will retain.
pub const MAX_INTERN_LEN: usize = 128;

/// Most distinct strings the pool will retain.
pub const MAX_POOL_ENTRIES: usize = 1 << 16;

struct Pool {
    set: Mutex<HashSet<Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        set: Mutex::new(HashSet::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// An `Arc<str>` for `s`, shared with every previous and future caller
/// that interned the same text (within the pool bounds documented at
/// the module level).
pub fn intern(s: &str) -> Arc<str> {
    if s.len() > MAX_INTERN_LEN {
        return Arc::from(s);
    }
    let p = pool();
    let mut set = p.set.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = set.get(s) {
        p.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(existing);
    }
    p.misses.fetch_add(1, Ordering::Relaxed);
    let arc: Arc<str> = Arc::from(s);
    if set.len() < MAX_POOL_ENTRIES {
        set.insert(Arc::clone(&arc));
    }
    arc
}

/// Pool statistics `(hits, misses)` since process start; a hit means
/// the returned `Arc` shares an existing allocation.
pub fn intern_stats() -> (u64, u64) {
    let p = pool();
    (
        p.hits.load(Ordering::Relaxed),
        p.misses.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_strings_share_one_allocation() {
        let a = intern("mix-intern-test-alpha");
        let b = intern("mix-intern-test-alpha");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::strong_count(&a) >= 3); // a, b, and the pool entry
    }

    #[test]
    fn distinct_strings_do_not_alias() {
        let a = intern("mix-intern-test-beta");
        let b = intern("mix-intern-test-gamma");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "mix-intern-test-beta");
    }

    #[test]
    fn oversized_strings_bypass_the_pool() {
        let big = "x".repeat(MAX_INTERN_LEN + 1);
        let a = intern(&big);
        let b = intern(&big);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(Arc::strong_count(&a), 1);
    }

    #[test]
    fn hit_counter_advances_on_reuse() {
        let (h0, _) = intern_stats();
        let _a = intern("mix-intern-test-delta");
        let _b = intern("mix-intern-test-delta");
        let (h1, _) = intern_stats();
        assert!(h1 > h0);
    }
}
