//! Deterministic property checks for the value domain: comparison laws
//! that WHERE clause semantics depend on, verified exhaustively over a
//! value pool (no external randomness so offline builds stay green).

use mix_common::{CmpOp, Value};

/// A pool covering every variant, sign, boundary and cross-type case
/// the old randomized strategies sampled.
fn pool() -> Vec<Value> {
    vec![
        Value::Null,
        Value::Bool(false),
        Value::Bool(true),
        Value::Int(i64::MIN),
        Value::Int(-7),
        Value::Int(0),
        Value::Int(3),
        Value::Int(i64::MAX),
        Value::Float(-1e12),
        Value::Float(-0.0),
        Value::Float(0.0),
        Value::Float(2.5),
        Value::Float(3.0),
        Value::Float(1e12),
        Value::str(""),
        Value::str("a"),
        Value::str("abc"),
        Value::str("3"),
    ]
}

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// total_cmp is a total order.
#[test]
fn total_cmp_laws() {
    use std::cmp::Ordering;
    let vs = pool();
    for a in &vs {
        assert_eq!(a.total_cmp(a), Ordering::Equal, "{a:?}");
        for b in &vs {
            assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "{a:?} {b:?}");
            for c in &vs {
                if a.total_cmp(b) == Ordering::Less && b.total_cmp(c) == Ordering::Less {
                    assert_eq!(a.total_cmp(c), Ordering::Less, "{a:?} {b:?} {c:?}");
                }
            }
        }
    }
}

/// satisfies respects flip: `a op b == b op.flip() a`.
#[test]
fn satisfies_flip() {
    let vs = pool();
    for a in &vs {
        for b in &vs {
            for o in OPS {
                assert_eq!(
                    a.satisfies(o, b),
                    b.satisfies(o.flip(), a),
                    "{a:?} {o} {b:?}"
                );
            }
        }
    }
}

/// For comparable operands, negation complements; for incomparable
/// operands both are false (the paper's "qualifies only when true").
#[test]
fn satisfies_negate() {
    let vs = pool();
    for a in &vs {
        for b in &vs {
            for o in OPS {
                let pos = a.satisfies(o, b);
                let neg = a.satisfies(o.negate(), b);
                if a.compare(b).is_some() {
                    assert_ne!(pos, neg, "{a:?} {o} {b:?}");
                } else {
                    assert!(!pos && !neg, "{a:?} {o} {b:?}");
                }
            }
        }
    }
}

/// Null never satisfies anything.
#[test]
fn null_satisfies_nothing() {
    for a in &pool() {
        for o in OPS {
            assert!(!Value::Null.satisfies(o, a));
            assert!(!a.satisfies(o, &Value::Null));
        }
    }
}

/// parse_literal ∘ to_string is the identity for ints.
#[test]
fn int_display_roundtrip() {
    let mut probes: Vec<i64> = vec![i64::MIN, i64::MAX, 0, -1, 1];
    let mut x = 1i64;
    for _ in 0..60 {
        probes.push(x);
        probes.push(-x);
        x = x.wrapping_mul(3).wrapping_add(7);
    }
    for n in probes {
        assert_eq!(
            Value::parse_literal(&Value::Int(n).to_string()),
            Value::Int(n)
        );
    }
}
