//! Property tests for the value domain: comparison laws that WHERE
//! clause semantics depend on.

use mix_common::{CmpOp, Value};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ]
}

fn op() -> impl Strategy<Value = CmpOp> {
    use CmpOp::*;
    prop::sample::select(vec![Eq, Ne, Lt, Le, Gt, Ge])
}

proptest! {
    /// total_cmp is a total order.
    #[test]
    fn total_cmp_laws(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// satisfies respects flip: `a op b == b op.flip() a`.
    #[test]
    fn satisfies_flip(a in value(), b in value(), o in op()) {
        prop_assert_eq!(a.satisfies(o, &b), b.satisfies(o.flip(), &a));
    }

    /// For comparable operands, negation complements; for incomparable
    /// operands both are false (the paper's "qualifies only when true").
    #[test]
    fn satisfies_negate(a in value(), b in value(), o in op()) {
        let pos = a.satisfies(o, &b);
        let neg = a.satisfies(o.negate(), &b);
        if a.compare(&b).is_some() {
            prop_assert_ne!(pos, neg);
        } else {
            prop_assert!(!pos && !neg);
        }
    }

    /// Null never satisfies anything.
    #[test]
    fn null_satisfies_nothing(a in value(), o in op()) {
        prop_assert!(!Value::Null.satisfies(o, &a));
        prop_assert!(!a.satisfies(o, &Value::Null));
    }

    /// parse_literal ∘ to_string is the identity for ints and simple strings.
    #[test]
    fn int_display_roundtrip(n in any::<i64>()) {
        prop_assert_eq!(Value::parse_literal(&Value::Int(n).to_string()), Value::Int(n));
    }
}
