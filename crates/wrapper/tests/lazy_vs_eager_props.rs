//! Property test: the lazy wrapper view is indistinguishable from the
//! materialized view (content, order, oids) on random databases, and
//! its fetch count equals the navigation high-watermark.

use mix_relational::fixtures::gen_db;
use mix_wrapper::RelationSource;
use mix_xml::{print, NavDoc};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lazy_equals_materialized(
        n in 0usize..30,
        per in 0usize..4,
        seed in 0u64..1000,
        relation_pick in 0usize..2,
    ) {
        let db = gen_db(n, per, seed);
        let (rel, elem) = if relation_pick == 0 {
            ("customer", "customer")
        } else {
            ("orders", "order")
        };
        let src = RelationSource::new(db.clone(), rel, elem, "rootx");
        let eager = src.materialize().unwrap();
        let lazy = src.lazy();
        let lt = print::render_tree(&lazy, lazy.root());
        let et = print::render_tree(&eager, eager.root());
        prop_assert_eq!(lt, et);
    }

    #[test]
    fn fetch_count_tracks_navigation(
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let db = gen_db(n, 0, seed);
        let src = RelationSource::new(db.clone(), "customer", "customer", "rootx");
        let stats = db.stats().clone();
        stats.reset();
        let lazy = src.lazy();
        let mut cur = lazy.first_child(lazy.root());
        let mut walked = 0;
        while let Some(node) = cur {
            walked += 1;
            if walked >= k {
                break;
            }
            cur = lazy.next_sibling(node);
        }
        let expect = walked.min(n);
        prop_assert_eq!(lazy.fetched(), expect);
        prop_assert_eq!(stats.tuples_shipped(), expect as u64);
    }
}
