//! Deterministic property checks: the lazy wrapper view is
//! indistinguishable from the materialized view (content, order, oids)
//! on generated databases, and its fetch count equals the navigation
//! high-watermark.

use mix_common::{BlockPolicy, Counter};
use mix_relational::fixtures::{gen_db, Lcg};
use mix_wrapper::RelationSource;
use mix_xml::{print, NavDoc};

#[test]
fn lazy_equals_materialized() {
    let mut rng = Lcg(0xC0FFEE);
    for case in 0..32u64 {
        let n = rng.below(30) as usize;
        let per = rng.below(4) as usize;
        let seed = rng.below(1000);
        let (rel, elem) = if case % 2 == 0 {
            ("customer", "customer")
        } else {
            ("orders", "order")
        };
        let db = gen_db(n, per, seed);
        let src = RelationSource::new(db.clone(), rel, elem, "rootx");
        let eager = src.materialize().unwrap();
        let lazy = src.lazy();
        let lt = print::render_tree(&lazy, lazy.root());
        let et = print::render_tree(&eager, eager.root());
        assert_eq!(lt, et, "case {case}: n={n} per={per} seed={seed} rel={rel}");
    }
}

#[test]
fn fetch_count_tracks_navigation() {
    let mut rng = Lcg(0xBEEF);
    for case in 0..32u64 {
        let n = 1 + rng.below(39) as usize;
        let k = 1 + rng.below(39) as usize;
        let seed = rng.below(1000);
        let db = gen_db(n, 0, seed);
        let src = RelationSource::new(db.clone(), "customer", "customer", "rootx");
        let stats = db.stats().clone();
        stats.reset();
        // The paper-faithful mode: fetch count is exactly the
        // navigation high-watermark.
        let lazy = src.lazy_with_block(BlockPolicy::Off);
        let mut cur = lazy.first_child(lazy.root());
        let mut walked = 0;
        while let Some(node) = cur {
            walked += 1;
            if walked >= k {
                break;
            }
            cur = lazy.next_sibling(node);
        }
        let expect = walked.min(n);
        assert_eq!(
            lazy.fetched(),
            expect,
            "case {case}: n={n} k={k} seed={seed}"
        );
        assert_eq!(
            stats.get(Counter::TuplesShipped),
            expect as u64,
            "case {case}"
        );
    }
}

#[test]
fn auto_overfetch_is_bounded() {
    // Under the adaptive ramp the fetch count may run ahead of
    // navigation, but never past the whole relation and never to 2x
    // the rows the client actually consumed (and a client that stops
    // at the first tuple still gets exactly one row).
    let mut rng = Lcg(0xFEED);
    for case in 0..32u64 {
        let n = 1 + rng.below(200) as usize;
        let k = 1 + rng.below(60) as usize;
        let seed = rng.below(1000);
        let db = gen_db(n, 0, seed);
        let src = RelationSource::new(db.clone(), "customer", "customer", "rootx");
        let lazy = src.lazy_with_block(BlockPolicy::Auto);
        let mut cur = lazy.first_child(lazy.root());
        assert_eq!(lazy.fetched(), 1, "first descent ships one tuple");
        let mut walked = 0;
        while let Some(node) = cur {
            walked += 1;
            if walked >= k {
                break;
            }
            cur = lazy.next_sibling(node);
        }
        let walked = walked.min(n);
        assert!(lazy.fetched() >= walked, "case {case}");
        assert!(
            lazy.fetched() <= n.min(2 * walked),
            "case {case}: n={n} k={k} fetched={} walked={walked}",
            lazy.fetched()
        );
    }
}
