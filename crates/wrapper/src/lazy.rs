//! The lazy navigable view of a wrapped relation.
//!
//! A [`LazyRelationalDoc`] looks exactly like the materialized document
//! of Fig. 2 through the [`NavDoc`] interface, but tuples are fetched
//! from the source cursor *one at a time, as navigation reaches them*:
//!
//! * the root exists immediately — no SQL has been issued yet;
//! * the first `d(root)` issues `SELECT * FROM r ORDER BY key` and pulls
//!   one row;
//! * each `r(tuple_i)` on the most recent tuple pulls row `i+1`;
//! * navigation *within* an already-fetched tuple touches the source
//!   not at all.
//!
//! Fetched tuples are kept (node ids handed to the client must remain
//! valid), so the memory high-watermark equals the furthest point the
//! client navigated — the paper's partial-evaluation claim in
//! measurable form.

use crate::relsource::RelationSource;
use mix_common::{
    BlockPolicy, BlockRamp, MixError, Name, PrefetchPolicy, Result, RetryPolicy, Value,
};
use mix_relational::{Cursor, Row};
use mix_xml::{Document, NavDoc, NodeRef, Oid};
use std::sync::Mutex;

/// A virtual document over one relation, fetching tuples on demand.
pub struct LazyRelationalDoc {
    source: RelationSource,
    retry: RetryPolicy,
    prefetch: PrefetchPolicy,
    state: Mutex<State>,
}

struct State {
    /// Arena holding the root plus every tuple subtree fetched so far.
    doc: Document,
    /// Live cursor; `None` before the first fetch and after exhaustion.
    cursor: Option<Cursor>,
    /// Whether the cursor has been opened at least once.
    opened: bool,
    /// A backend error the retry policy could not absorb. Latched: the
    /// already-fetched prefix stays navigable, but every navigation
    /// step that needs *more* data reports this error again.
    error: Option<MixError>,
    /// Tuple element nodes, in fetch order.
    tuples: Vec<NodeRef>,
    /// Column names (cached at open).
    columns: Vec<Name>,
    /// Adaptive block sizing for successive fetches: the first pull
    /// ships exactly one tuple regardless of policy, so navigate-and-
    /// stop sessions are indistinguishable from `BlockPolicy::Off`.
    ramp: BlockRamp,
    /// Scratch buffer reused across block fetches.
    buf: Vec<Row>,
}

impl LazyRelationalDoc {
    /// Wrap `source` lazily. No SQL is issued yet. Fetches follow the
    /// default block policy ([`BlockPolicy::Auto`]) and retry policy;
    /// see [`LazyRelationalDoc::with_opts`].
    pub fn new(source: RelationSource) -> LazyRelationalDoc {
        LazyRelationalDoc::with_block(source, BlockPolicy::default())
    }

    /// Wrap `source` lazily with an explicit block policy.
    /// [`BlockPolicy::Off`] pulls one tuple per navigation step (the
    /// paper's model); the others prefetch ahead of navigation in
    /// blocks, bounded by the ramp.
    pub fn with_block(source: RelationSource, block: BlockPolicy) -> LazyRelationalDoc {
        LazyRelationalDoc::with_opts(source, block, RetryPolicy::default())
    }

    /// Wrap `source` lazily with explicit block and retry policies.
    /// Transient backend faults are retried inside the fetch (invisible
    /// to the caller and to the block ramp); what `retry` cannot absorb
    /// surfaces as an error from the navigation step that needed the
    /// data.
    pub fn with_opts(
        source: RelationSource,
        block: BlockPolicy,
        retry: RetryPolicy,
    ) -> LazyRelationalDoc {
        LazyRelationalDoc::with_policies(source, block, retry, PrefetchPolicy::Off)
    }

    /// Wrap `source` lazily with explicit block, retry and prefetch
    /// policies. With prefetch enabled, a background thread keeps up to
    /// `depth` blocks in flight *after* the first navigation step has
    /// demanded data — laziness before the first demand and all
    /// shipped-tuple accounting are unchanged (the thread replays the
    /// same block ramp the synchronous path would have run).
    pub fn with_policies(
        source: RelationSource,
        block: BlockPolicy,
        retry: RetryPolicy,
        prefetch: PrefetchPolicy,
    ) -> LazyRelationalDoc {
        let doc = Document::new(source.root().clone(), "list");
        LazyRelationalDoc {
            source,
            retry,
            prefetch,
            state: Mutex::new(State {
                doc,
                cursor: None,
                opened: false,
                error: None,
                tuples: Vec::new(),
                columns: Vec::new(),
                ramp: block.ramp(),
                buf: Vec::new(),
            }),
        }
    }

    /// Number of tuples fetched so far (the laziness metric).
    pub fn fetched(&self) -> usize {
        self.state.lock().unwrap().tuples.len()
    }

    /// The latched backend error, if fetching has failed permanently.
    pub fn last_error(&self) -> Option<MixError> {
        self.state.lock().unwrap().error.clone()
    }

    /// Ensure at least `n + 1` tuples are fetched (so index `n` exists),
    /// stopping early if the cursor runs dry. Returns the tuple node at
    /// index `n` if it exists; a backend failure the retry policy could
    /// not absorb is latched and re-reported on every further call.
    fn fetch_to(&self, n: usize) -> Result<Option<NodeRef>> {
        let mut st = self.state.lock().unwrap();
        // Already-materialized tuples are served even after a failure —
        // the latched error only gates *new* fetches.
        if let Some(&t) = st.tuples.get(n) {
            return Ok(Some(t));
        }
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        if !st.opened {
            st.opened = true;
            let stmt = self.source.scan_stmt()?;
            let mut cursor = self.source.db().execute(&stmt)?;
            if self.prefetch.enabled() {
                // The ramp clone must predate the consumer's first
                // `next_size` call: the cursor mirrors one step per
                // synchronous pull before handing it to the thread.
                cursor.enable_prefetch(self.prefetch, st.ramp.clone(), self.retry);
            }
            st.cursor = Some(cursor);
            st.columns = self.source.columns()?;
        }
        while st.tuples.len() <= n {
            let st = &mut *st;
            let Some(cur) = st.cursor.as_mut() else { break };
            // Fetch a whole block per ramp step; the schema lookup is
            // hoisted out of the per-row loop. Transient faults are
            // retried inside `next_block_retrying`, re-requesting the
            // same block size so the ramp is undisturbed.
            let want = st.ramp.next_size();
            st.buf.clear();
            let got = match cur.next_block_retrying(&mut st.buf, want, &self.retry) {
                Ok(got) => got,
                Err(e) => {
                    st.cursor = None;
                    st.error = Some(e.clone());
                    return Err(e);
                }
            };
            if got == 0 {
                st.cursor = None;
                break;
            }
            let schema = self
                .source
                .db()
                .table(self.source.relation().as_str())
                .ok()
                .map(|t| t.schema().clone());
            let root = st.doc.root_ref();
            let elem = self.source.element();
            for row in st.buf.drain(..) {
                let key = match &schema {
                    Some(s) => s.key_text(&row),
                    None => String::new(),
                };
                let tuple = st
                    .doc
                    .add_elem_with_oid(root, elem.clone(), Oid::key(key.clone()));
                for (c, v) in st.columns.iter().zip(row) {
                    let field =
                        st.doc
                            .add_elem_with_oid(tuple, c.clone(), Oid::key(format!("{key}.{c}")));
                    st.doc.add_text_with_oid(field, v.clone(), Oid::lit(v));
                }
                st.tuples.push(tuple);
            }
        }
        Ok(st.tuples.get(n).copied())
    }
}

impl NavDoc for LazyRelationalDoc {
    fn doc_name(&self) -> &Name {
        self.source.root()
    }

    fn root(&self) -> NodeRef {
        self.state.lock().unwrap().doc.root_ref()
    }

    /// Infallible view of [`NavDoc::try_first_child`]: a backend
    /// failure degrades to "no child" (legacy callers; the engine's
    /// navigation path uses the `try_` form and sees the error).
    fn first_child(&self, n: NodeRef) -> Option<NodeRef> {
        self.try_first_child(n).unwrap_or(None)
    }

    fn next_sibling(&self, n: NodeRef) -> Option<NodeRef> {
        self.try_next_sibling(n).unwrap_or(None)
    }

    fn try_first_child(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        if n == self.root() {
            return self.fetch_to(0);
        }
        Ok(self.state.lock().unwrap().doc.first_child(n))
    }

    fn try_next_sibling(&self, n: NodeRef) -> Result<Option<NodeRef>> {
        {
            let st = self.state.lock().unwrap();
            if let Some(s) = st.doc.next_sibling(n) {
                return Ok(Some(s));
            }
            // Not the last fetched tuple ⇒ genuinely no sibling.
            if st.tuples.last() != Some(&n) {
                return Ok(None);
            }
        }
        let idx = self.state.lock().unwrap().tuples.len();
        self.fetch_to(idx)
    }

    fn label(&self, n: NodeRef) -> Option<Name> {
        self.state.lock().unwrap().doc.label(n)
    }

    fn value(&self, n: NodeRef) -> Option<Value> {
        self.state.lock().unwrap().doc.value(n)
    }

    fn oid(&self, n: NodeRef) -> Oid {
        self.state.lock().unwrap().doc.oid(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::{BlockPolicy, Counter};
    use mix_relational::fixtures::{gen_db, sample_db};
    use mix_xml::nav::nav_children;

    fn lazy_customers() -> LazyRelationalDoc {
        RelationSource::new(sample_db(), "customer", "customer", "root1").lazy()
    }

    #[test]
    fn no_sql_until_first_descent() {
        // Fresh view: root exists, zero queries issued.
        let src = RelationSource::new(sample_db(), "customer", "customer", "root1");
        let stats = src.db().stats().clone();
        let lazy = src.lazy();
        let _root = lazy.root();
        assert_eq!(stats.get(Counter::SqlQueries), 0);
        let _ = lazy.first_child(lazy.root());
        assert_eq!(stats.get(Counter::SqlQueries), 1);
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
    }

    #[test]
    fn tuples_fetch_one_per_sibling_step() {
        // The paper-faithful mode: exactly one tuple per navigation step.
        let src = RelationSource::new(gen_db(50, 0, 1), "customer", "customer", "root1");
        let stats = src.db().stats().clone();
        let lazy = src.lazy_with_block(BlockPolicy::Off);
        let mut n = lazy.first_child(lazy.root()).unwrap();
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        for expect in 2..=10u64 {
            n = lazy.next_sibling(n).unwrap();
            assert_eq!(stats.get(Counter::TuplesShipped), expect);
        }
        assert_eq!(lazy.fetched(), 10);
        // Navigation inside a fetched tuple costs nothing.
        let field = lazy.first_child(n).unwrap();
        let _ = lazy.next_sibling(field);
        let _ = lazy.label(field);
        assert_eq!(stats.get(Counter::TuplesShipped), 10);
    }

    #[test]
    fn auto_ramp_ships_one_first_then_blocks() {
        let src = RelationSource::new(gen_db(50, 0, 1), "customer", "customer", "root1");
        let stats = src.db().stats().clone();
        let lazy = src.lazy(); // default = Auto
        let mut n = lazy.first_child(lazy.root()).unwrap();
        // The first descent ships exactly one tuple — same as Off.
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        assert_eq!(lazy.fetched(), 1);
        // Stepping to tuple 4 (index 3) fetches blocks 2 then 4:
        // cumulative 1, 3, 7 — overfetch stays under 2x consumption.
        for _ in 0..3 {
            n = lazy.next_sibling(n).unwrap();
        }
        assert_eq!(stats.get(Counter::TuplesShipped), 7);
        assert_eq!(lazy.fetched(), 7);
        // Draining everything ships all 50 exactly once, in blocks.
        let mut count = 4;
        while let Some(next) = lazy.next_sibling(n) {
            n = next;
            count += 1;
        }
        assert_eq!(count, 50);
        assert_eq!(stats.get(Counter::TuplesShipped), 50);
        // 1+2+4+8+16 = 31, then a final partial block of 19.
        assert_eq!(stats.get(Counter::BlocksShipped), 6);
        // Fixed(n) also starts at one tuple, then jumps to n.
        let src = RelationSource::new(gen_db(50, 0, 2), "customer", "customer", "root1");
        let stats = src.db().stats().clone();
        let lazy = src.lazy_with_block(BlockPolicy::Fixed(8));
        let first = lazy.first_child(lazy.root()).unwrap();
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        let _ = lazy.next_sibling(first).unwrap();
        assert_eq!(stats.get(Counter::TuplesShipped), 9);
    }

    #[test]
    fn lazy_view_equals_materialized_view() {
        let src = RelationSource::new(sample_db(), "customer", "customer", "root1");
        let eager = src.materialize().unwrap();
        let lazy = src.lazy();
        // Walk the lazy view to exhaustion, then compare rendering.
        let kids = nav_children(&lazy, lazy.root());
        assert_eq!(kids.len(), 2);
        assert!(lazy.next_sibling(*kids.last().unwrap()).is_none());
        let lt = mix_xml::print::render_tree(&lazy, lazy.root());
        let et = mix_xml::print::render_tree(&eager, eager.root());
        assert_eq!(lt, et);
    }

    #[test]
    fn exhausted_cursor_stays_exhausted() {
        let lazy = lazy_customers();
        let kids = nav_children(&lazy, lazy.root());
        let last = *kids.last().unwrap();
        assert!(lazy.next_sibling(last).is_none());
        assert!(lazy.next_sibling(last).is_none());
        assert_eq!(lazy.fetched(), 2);
    }

    #[test]
    fn empty_relation_has_no_children() {
        let mut db = sample_db();
        db.create_table(
            "empty",
            mix_relational::Schema::new(
                vec![mix_relational::Column::new(
                    "k",
                    mix_relational::ColumnType::Int,
                )],
                &["k"],
            )
            .unwrap(),
        )
        .unwrap();
        let lazy = RelationSource::new(db, "empty", "e", "root9").lazy();
        assert!(lazy.first_child(lazy.root()).is_none());
    }
}
