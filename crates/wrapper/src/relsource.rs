//! One wrapped relation: configuration + eager materialization.

use crate::lazy::LazyRelationalDoc;
use mix_common::{Name, Result, RetryPolicy};
use mix_relational::{Backend, ColRef, FromItem, SelectItem, SelectStmt};
use mix_xml::{Document, Oid};

/// A relation exported as an XML view.
///
/// `element` is the per-tuple element label (Fig. 2 exports relation
/// `orders` as `order` elements); `root` is the source name clients use
/// in `document(root)` / `source(&root)`.
#[derive(Debug, Clone)]
pub struct RelationSource {
    db: Backend,
    relation: Name,
    element: Name,
    root: Name,
}

impl RelationSource {
    /// Configure a wrapped relation. The backend may be a plain
    /// [`mix_relational::Database`] or a sharded federation
    /// ([`mix_relational::ShardedDatabase`]) — both convert into
    /// [`Backend`].
    pub fn new(
        db: impl Into<Backend>,
        relation: impl Into<Name>,
        element: impl Into<Name>,
        root: impl Into<Name>,
    ) -> RelationSource {
        RelationSource {
            db: db.into(),
            relation: relation.into(),
            element: element.into(),
            root: root.into(),
        }
    }

    /// The backing database (shared handle).
    pub fn db(&self) -> &Backend {
        &self.db
    }

    /// The wrapped relation's name.
    pub fn relation(&self) -> &Name {
        &self.relation
    }

    /// The per-tuple element label.
    pub fn element(&self) -> &Name {
        &self.element
    }

    /// The exported source/root name.
    pub fn root(&self) -> &Name {
        &self.root
    }

    /// Column names of the wrapped relation, in order.
    pub fn columns(&self) -> Result<Vec<Name>> {
        Ok(self
            .db
            .table(self.relation.as_str())?
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect())
    }

    /// Primary-key column names.
    pub fn key_columns(&self) -> Result<Vec<Name>> {
        let t = self.db.table(self.relation.as_str())?;
        Ok(t.schema()
            .key()
            .iter()
            .map(|&i| t.schema().columns()[i].name.clone())
            .collect())
    }

    /// The `SELECT * FROM relation ORDER BY key` scan that backs both
    /// access modes. Ordering by key makes tuple order deterministic
    /// across repeated cursors (node ids must stay stable while the
    /// client navigates).
    pub fn scan_stmt(&self) -> Result<SelectStmt> {
        let t = self.db.table(self.relation.as_str())?;
        let order_by = t
            .schema()
            .key()
            .iter()
            .map(|&i| ColRef::bare(t.schema().columns()[i].name.clone()))
            .collect();
        Ok(SelectStmt {
            distinct: false,
            items: vec![],
            from: vec![FromItem {
                table: self.relation.clone(),
                alias: None,
            }],
            preds: vec![],
            order_by,
        })
    }

    /// SELECT items projecting every column of the relation (used by
    /// the rewriter when it builds pushdown SQL).
    pub fn all_select_items(&self, alias: &Name) -> Result<Vec<SelectItem>> {
        Ok(self
            .columns()?
            .into_iter()
            .map(|c| SelectItem {
                col: ColRef::qualified(alias.clone(), c),
                alias: None,
            })
            .collect())
    }

    /// Eagerly materialize the full XML view (the conventional-mediator
    /// baseline). Every tuple ships through the cursor and is counted.
    /// Transient backend faults are retried under the default
    /// [`RetryPolicy`]; see [`RelationSource::materialize_with_retry`].
    pub fn materialize(&self) -> Result<Document> {
        self.materialize_with_retry(&RetryPolicy::default())
    }

    /// Eagerly materialize with an explicit retry policy for the drain.
    pub fn materialize_with_retry(&self, retry: &RetryPolicy) -> Result<Document> {
        let mut doc = Document::new(self.root.clone(), "list");
        let root = doc.root_ref();
        let table = self.db.table(self.relation.as_str())?;
        let schema = table.schema().clone();
        let cols = self.columns()?;
        let mut cur = self.db.execute(&self.scan_stmt()?)?;
        let mut rows = Vec::new();
        cur.drain_retrying(&mut rows, retry)?;
        for row in rows {
            let key = schema.key_text(&row);
            let tuple = doc.add_elem_with_oid(root, self.element.clone(), Oid::key(key.clone()));
            for (c, v) in cols.iter().zip(row) {
                // Field oids are semantic too (`&KEY.col`), matching the
                // elements `rQ` reconstructs from SQL results.
                let field = doc.add_elem_with_oid(tuple, c.clone(), Oid::key(format!("{key}.{c}")));
                doc.add_text_with_oid(field, v.clone(), Oid::lit(v));
            }
        }
        Ok(doc)
    }

    /// The lazy navigable view (default block policy).
    pub fn lazy(&self) -> LazyRelationalDoc {
        LazyRelationalDoc::new(self.clone())
    }

    /// The lazy navigable view with an explicit block-fetch policy.
    pub fn lazy_with_block(&self, block: mix_common::BlockPolicy) -> LazyRelationalDoc {
        LazyRelationalDoc::with_block(self.clone(), block)
    }

    /// The lazy navigable view with explicit block and retry policies.
    pub fn lazy_with_opts(
        &self,
        block: mix_common::BlockPolicy,
        retry: RetryPolicy,
    ) -> LazyRelationalDoc {
        LazyRelationalDoc::with_opts(self.clone(), block, retry)
    }

    /// The lazy navigable view with explicit block, retry and prefetch
    /// policies (see [`LazyRelationalDoc::with_policies`]).
    pub fn lazy_with_policies(
        &self,
        block: mix_common::BlockPolicy,
        retry: RetryPolicy,
        prefetch: mix_common::PrefetchPolicy,
    ) -> LazyRelationalDoc {
        LazyRelationalDoc::with_policies(self.clone(), block, retry, prefetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::Value;
    use mix_relational::fixtures::sample_db;
    use mix_xml::{print, NavDoc};

    fn customers() -> RelationSource {
        RelationSource::new(sample_db(), "customer", "customer", "root1")
    }

    #[test]
    fn materialized_view_matches_fig2_shape() {
        let doc = customers().materialize().unwrap();
        let rendered = print::render_tree(&doc, doc.root());
        // Fig. 2: &root1 list → &XYZ123 customer → id/addr/name fields.
        assert!(rendered.starts_with("&root1 list\n"), "{rendered}");
        assert!(rendered.contains("&DEF345 customer"), "{rendered}");
        assert!(rendered.contains("id = XYZ123"), "{rendered}");
        assert!(rendered.contains("addr = LosAngeles"), "{rendered}");
        assert!(rendered.contains("name = XYZInc."), "{rendered}");
    }

    #[test]
    fn tuples_exported_in_key_order() {
        let doc = customers().materialize().unwrap();
        let ids: Vec<String> = doc
            .children(doc.root())
            .map(|c| doc.oid(c).to_string())
            .collect();
        // DEF345 < XYZ123 lexicographically.
        assert_eq!(ids, vec!["&DEF345", "&XYZ123"]);
    }

    #[test]
    fn orders_view_uses_element_label() {
        let src = RelationSource::new(sample_db(), "orders", "order", "root2");
        let doc = src.materialize().unwrap();
        let first = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.label(first).unwrap().as_str(), "order");
        assert_eq!(doc.oid(first).to_string(), "&28904");
        let value_field = doc.children(first).nth(2).unwrap();
        assert_eq!(doc.label(value_field).unwrap().as_str(), "value");
        assert_eq!(
            doc.value(doc.first_child(value_field).unwrap()),
            Some(Value::Int(2400))
        );
    }

    #[test]
    fn schema_accessors() {
        let src = customers();
        let cols: Vec<String> = src
            .columns()
            .unwrap()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(cols, vec!["id", "addr", "name"]);
        let keys: Vec<String> = src
            .key_columns()
            .unwrap()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(keys, vec!["id"]);
        assert_eq!(
            src.scan_stmt().unwrap().to_string(),
            "SELECT * FROM customer ORDER BY id"
        );
    }
}
