//! The source catalog: names → wrapped sources.
//!
//! `mksrc_{&srcid,$X}` and XQuery's `document("src")` refer to sources
//! by root name. The catalog resolves those names and tells the
//! rewriter which sources are relational (and with what schema), which
//! is what makes SQL pushdown possible.

use crate::lazy::LazyRelationalDoc;
use crate::relsource::RelationSource;
use mix_common::{MixError, Name, Result};
use mix_relational::Backend;
use mix_xml::{Document, NavDoc};
use std::collections::HashMap;
use std::sync::Arc;

/// One registered source.
#[derive(Clone)]
pub enum Source {
    /// An XML file source (already materialized; the paper notes the
    /// opportunities for lazy QDOM evaluation on file sources are
    /// limited, so they are fetched whole).
    Xml(Arc<Document>),
    /// A wrapped relation.
    Relation(RelationSource),
    /// Any navigable view — in particular another mediator's (virtual)
    /// query result: "a MIX mediator can be such a source to another
    /// MIX mediator \[and\] client navigations are translated into r and
    /// d commands sent to the source" (Section 4).
    Nav(Arc<dyn NavDoc>),
}

/// Named sources available to the mediator.
#[derive(Clone, Default)]
pub struct Catalog {
    sources: HashMap<Name, Source>,
    databases: HashMap<Name, Backend>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register an XML document under its own name.
    pub fn register_xml(&mut self, doc: Document) {
        self.sources
            .insert(doc.name().clone(), Source::Xml(Arc::new(doc)));
    }

    /// Register an arbitrary navigable view (e.g. another mediator's
    /// virtual result) under `name`. Navigation commands on this source
    /// propagate straight into the view — if it is lazy, the whole
    /// stack stays lazy.
    pub fn register_nav(&mut self, name: impl Into<Name>, doc: Arc<dyn NavDoc>) {
        self.sources.insert(name.into(), Source::Nav(doc));
    }

    /// Register a wrapped relation under its root name; its database is
    /// also registered under the database's server name (for `rQ`).
    pub fn register_relation(&mut self, src: RelationSource) {
        self.databases
            .insert(src.db().name().clone(), src.db().clone());
        self.sources
            .insert(src.root().clone(), Source::Relation(src));
    }

    /// Look up a source.
    pub fn source(&self, name: &str) -> Result<&Source> {
        self.sources
            .get(name)
            .ok_or_else(|| MixError::unknown("source", name))
    }

    /// Registered source names (sorted, for deterministic output).
    pub fn source_names(&self) -> Vec<Name> {
        let mut v: Vec<Name> = self.sources.keys().cloned().collect();
        v.sort();
        v
    }

    /// The relation info behind a source, if it is relational — the
    /// hook the rewriter's pushdown planner uses.
    pub fn relation_info(&self, name: &str) -> Option<&RelationSource> {
        match self.sources.get(name) {
            Some(Source::Relation(r)) => Some(r),
            _ => None,
        }
    }

    /// A database server by name (the `s` parameter of `rQ`). Servers
    /// may be plain [`mix_relational::Database`]s or sharded
    /// federations; both answer SQL through the same [`Backend`] API.
    pub fn database(&self, server: &str) -> Result<&Backend> {
        self.databases
            .get(server)
            .ok_or_else(|| MixError::unknown("server", server))
    }

    /// All registered database servers — for wiring session-wide state
    /// (tracers) into every source at once.
    pub fn databases(&self) -> impl Iterator<Item = &Backend> {
        self.databases.values()
    }

    /// A fingerprint of the registered backends: (server name, backend
    /// fingerprint) pairs hashed in sorted order. Feeds the shared
    /// plan-cache key, so two mediators over different databases (or
    /// different shard layouts of the same data) never exchange cached
    /// decontextualized plans even when their query texts coincide.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut entries: Vec<(&str, u64)> = self
            .databases
            .iter()
            .map(|(n, b)| (n.as_str(), b.fingerprint()))
            .collect();
        entries.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        entries.hash(&mut h);
        h.finish()
    }

    /// A *materialized* navigable view of the source (the eager
    /// baseline; ships the entire relation).
    pub fn materialized(&self, name: &str) -> Result<Arc<dyn NavDoc>> {
        match self.source(name)? {
            Source::Xml(d) => Ok(Arc::clone(d) as Arc<dyn NavDoc>),
            Source::Relation(r) => Ok(Arc::new(r.materialize()?) as Arc<dyn NavDoc>),
            Source::Nav(d) => {
                // Force the view into a plain document (the eager
                // baseline for federated sources).
                let mut doc = Document::new(
                    Name::new(name),
                    d.label(d.root()).unwrap_or_else(|| Name::new("list")),
                );
                let root = doc.root_ref();
                copy_children(&**d, d.root(), &mut doc, root);
                Ok(Arc::new(doc) as Arc<dyn NavDoc>)
            }
        }
    }

    /// A *lazy* navigable view of the source. XML file sources are
    /// served from memory (per the paper, they are obtained in one
    /// step); relational sources fetch tuples on demand.
    pub fn lazy(&self, name: &str) -> Result<Arc<dyn NavDoc>> {
        self.lazy_with_block(name, mix_common::BlockPolicy::default())
    }

    /// A lazy view with an explicit block-fetch policy (relational
    /// sources only fetch ahead under `Fixed`/`Auto`; XML and nav
    /// sources are unaffected).
    pub fn lazy_with_block(
        &self,
        name: &str,
        block: mix_common::BlockPolicy,
    ) -> Result<Arc<dyn NavDoc>> {
        self.lazy_with_opts(name, block, mix_common::RetryPolicy::default())
    }

    /// A lazy view with explicit block-fetch and retry policies.
    /// Relational sources retry transient backend faults under `retry`;
    /// XML and nav sources never fail and ignore it.
    pub fn lazy_with_opts(
        &self,
        name: &str,
        block: mix_common::BlockPolicy,
        retry: mix_common::RetryPolicy,
    ) -> Result<Arc<dyn NavDoc>> {
        self.lazy_with_policies(name, block, retry, mix_common::PrefetchPolicy::Off)
    }

    /// A lazy view with explicit block, retry and prefetch policies.
    /// Prefetch applies only to relational sources (it pipelines the
    /// backend cursor); XML and nav sources are served as-is.
    pub fn lazy_with_policies(
        &self,
        name: &str,
        block: mix_common::BlockPolicy,
        retry: mix_common::RetryPolicy,
        prefetch: mix_common::PrefetchPolicy,
    ) -> Result<Arc<dyn NavDoc>> {
        match self.source(name)? {
            Source::Xml(d) => Ok(Arc::clone(d) as Arc<dyn NavDoc>),
            Source::Relation(r) => {
                Ok(Arc::new(r.lazy_with_policies(block, retry, prefetch)) as Arc<dyn NavDoc>)
            }
            Source::Nav(d) => Ok(Arc::clone(d) as Arc<dyn NavDoc>),
        }
    }

    /// A lazy view with its concrete type (tests want
    /// [`LazyRelationalDoc::fetched`]).
    pub fn lazy_relational(&self, name: &str) -> Result<LazyRelationalDoc> {
        match self.source(name)? {
            Source::Relation(r) => Ok(r.lazy()),
            _ => Err(MixError::invalid(format!(
                "source {name} is not relational"
            ))),
        }
    }
}

fn copy_children(
    src: &dyn NavDoc,
    from: mix_xml::NodeRef,
    doc: &mut Document,
    to: mix_xml::NodeRef,
) {
    let mut cur = src.first_child(from);
    while let Some(c) = cur {
        if let Some(v) = src.value(c) {
            doc.add_text_with_oid(to, v, src.oid(c));
        } else if let Some(label) = src.label(c) {
            let new = doc.add_elem_with_oid(to, label, src.oid(c));
            copy_children(src, c, doc, new);
        }
        cur = src.next_sibling(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::{Counter, Value};
    use mix_relational::fixtures::sample_db;

    fn catalog() -> Catalog {
        crate::fig2_catalog().0
    }

    #[test]
    fn resolves_sources() {
        let cat = catalog();
        assert!(cat.source("root1").is_ok());
        assert!(cat.source("root2").is_ok());
        assert!(cat.source("root3").is_err());
        let names: Vec<String> = cat.source_names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["root1", "root2"]);
    }

    #[test]
    fn relation_info_exposes_schema() {
        let cat = catalog();
        let info = cat.relation_info("root2").unwrap();
        assert_eq!(info.relation().as_str(), "orders");
        assert_eq!(info.element().as_str(), "order");
        assert!(cat.relation_info("nope").is_none());
    }

    #[test]
    fn xml_sources_serve_both_modes_from_memory() {
        let mut cat = Catalog::new();
        let doc = mix_xml::parse_document("filesrc", "<list><a>1</a></list>").unwrap();
        cat.register_xml(doc);
        let eager = cat.materialized("filesrc").unwrap();
        let lazy = cat.lazy("filesrc").unwrap();
        let e = eager.first_child(eager.root()).unwrap();
        let l = lazy.first_child(lazy.root()).unwrap();
        assert_eq!(eager.label(e), lazy.label(l));
        assert!(cat.lazy_relational("filesrc").is_err());
    }

    #[test]
    fn database_lookup_for_rq() {
        let cat = catalog();
        let db = cat.database("db1").unwrap();
        let rows = db
            .execute_sql("SELECT * FROM orders")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(cat.database("other").is_err());
    }

    #[test]
    fn materialized_relational_ships_everything_lazy_does_not() {
        let db = sample_db();
        let stats = db.stats().clone();
        let cat = crate::wrap_customers_orders(db);
        stats.reset();
        let _ = cat.materialized("root2").unwrap();
        assert_eq!(stats.get(Counter::TuplesShipped), 3);
        stats.reset();
        let lazy = cat.lazy("root2").unwrap();
        let first = lazy.first_child(lazy.root()).unwrap();
        assert_eq!(stats.get(Counter::TuplesShipped), 1);
        // sanity: the tuple really is order 28904
        assert_eq!(lazy.oid(first).to_string(), "&28904");
        let _ = Value::Int(0);
    }
}
