//! The relational→XML wrapper (paper Fig. 2).
//!
//! MIX's "current system accesses XML files and relational database
//! sources, which are wrapped to offer an XML view of themselves". The
//! wrapper exports each relation as a virtual document
//!
//! ```text
//! &root1 list
//!   &XYZ123 customer          ← one element per tuple, oid = & + key
//!     &_0 id = XYZ123         ← one field element per column
//!     &_1 addr = LosAngeles
//!     &_2 name = XYZInc.
//! ```
//!
//! Two access modes:
//!
//! * [`RelationSource::materialize`] — build the whole [`mix_xml::Document`]
//!   (what a conventional, non-lazy mediator would do);
//! * [`RelationSource::lazy`] — a [`LazyRelationalDoc`] implementing
//!   [`NavDoc`] that issues `SELECT * FROM r ORDER BY key` on first
//!   child access and *fetches one tuple per `next_sibling` step*, so
//!   navigation that stops early ships only a prefix of the table
//!   (Section 4: "navigations are translated into either queries or
//!   moves of the cursors").
//!
//! [`Catalog`] names the sources (`root1`, `root2`, …) for `mksrc` and
//! records which are relational, exposing the schema information the
//! rewriter needs to push work into SQL.

pub mod catalog;
pub mod lazy;
pub mod relsource;

pub use catalog::{Catalog, Source};
pub use lazy::LazyRelationalDoc;
pub use relsource::RelationSource;

pub use mix_xml::NavDoc;

use mix_relational::Database;

/// Build the paper's Fig. 2 setup: the [`sample
/// database`](mix_relational::fixtures::sample_db) wrapped as sources
/// `root1` (customer tuples, element `customer`) and `root2` (order
/// tuples, element `order`), registered in a [`Catalog`].
pub fn fig2_catalog() -> (Catalog, Database) {
    let db = mix_relational::fixtures::sample_db();
    let mut cat = Catalog::new();
    cat.register_relation(RelationSource::new(
        db.clone(),
        "customer",
        "customer",
        "root1",
    ));
    cat.register_relation(RelationSource::new(db.clone(), "orders", "order", "root2"));
    (cat, db)
}

/// Wrap an arbitrary customers/orders database (e.g. from
/// [`gen_db`](mix_relational::fixtures::gen_db)) the same way as
/// [`fig2_catalog`].
pub fn wrap_customers_orders(db: Database) -> Catalog {
    let mut cat = Catalog::new();
    cat.register_relation(RelationSource::new(
        db.clone(),
        "customer",
        "customer",
        "root1",
    ));
    cat.register_relation(RelationSource::new(db, "orders", "order", "root2"));
    cat
}

/// Wrap a customers/orders database as a *sharded federation*:
/// `customer` partitioned by `id`, `orders` co-partitioned by `cid`,
/// registered under the same roots as [`wrap_customers_orders`]. The
/// returned [`ShardedDatabase`](mix_relational::ShardedDatabase)
/// handle drives per-shard knobs (fault
/// injection, latency) that the catalog's shared clone observes.
pub fn wrap_customers_orders_sharded(
    db: &Database,
    scheme: mix_relational::ShardScheme,
) -> mix_common::Result<(Catalog, mix_relational::ShardedDatabase)> {
    let spec = mix_relational::ShardSpec::new()
        .with("customer", "id")
        .with("orders", "cid");
    let sharded = mix_relational::ShardedDatabase::partition(db, spec, scheme)?;
    let mut cat = Catalog::new();
    cat.register_relation(RelationSource::new(
        sharded.clone(),
        "customer",
        "customer",
        "root1",
    ));
    cat.register_relation(RelationSource::new(
        sharded.clone(),
        "orders",
        "order",
        "root2",
    ));
    Ok((cat, sharded))
}
